//! The USD as a chemical reaction network (CRN).
//!
//! ```text
//! cargo run --release --example chemical_reactions
//! ```
//!
//! Population protocols are equivalent to stochastically simulated CRNs
//! with unit rates (Soloveichik et al.; Chen et al. built them from DNA
//! strand displacement). The Undecided State Dynamics is the network
//!
//! ```text
//!     Xi + Xj  ->  U + U      (i ≠ j: annihilation to the undecided species)
//!     Xi + U   ->  Xi + Xi    (catalytic conversion)
//! ```
//!
//! over species X1…Xk and U in a well-mixed solution of n molecules.
//! This example runs the Gillespie-equivalent exact simulation (each
//! "interaction" = one reaction event over a uniformly random molecule
//! pair) and prints the species time course — including the undecided
//! species' plateau at n/2 − n/4k that the paper characterizes.

use plurality_consensus::prelude::*;
use sim_stats::timeseries::sparkline;

fn main() {
    let n: u64 = 30_000;
    let k: usize = 4;
    let config = InitialConfigBuilder::new(n, k).figure1();

    println!("CRN: {k} opinion species + undecided, n = {n} molecules");
    println!("reactions: Xi+Xj -> 2U (i != j), Xi+U -> 2Xi");
    println!("initial counts: {:?}", config.opinions());
    println!();

    let mut sim = SkipAheadUsd::new(&config);
    let mut rng = SimRng::new(11);

    // Record each species roughly once per parallel unit of time.
    let mut next_capture = 0u64;
    let mut trajectories: Vec<Vec<f64>> = vec![Vec::new(); k + 1];
    loop {
        if sim.interactions() >= next_capture {
            for (i, traj) in trajectories.iter_mut().enumerate() {
                if i < k {
                    traj.push(sim.opinions()[i] as f64);
                } else {
                    traj.push(sim.undecided() as f64);
                }
            }
            next_capture = sim.interactions() + n;
        }
        if sim.step_effective(&mut rng).is_none() || sim.is_silent() {
            break;
        }
    }

    for (i, traj) in trajectories.iter().enumerate() {
        let name = if i < k {
            format!("X{}", i + 1)
        } else {
            "U ".to_string()
        };
        let last = *traj.last().unwrap() as u64;
        println!("{name} {} final={last}", sparkline(traj));
    }

    let plateau = undecided_plateau(n, k);
    println!();
    println!(
        "undecided plateau predicted at n/2 - n/4k = {:.0}; \
         observed max U = {:.0}",
        plateau,
        trajectories[k].iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "consensus species: X{} after {:.1} parallel time",
        sim.winner().map(|w| w + 1).unwrap_or(0),
        sim.parallel_time()
    );
}
