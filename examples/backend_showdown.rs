//! Backend showdown: one USD instance, every simulation backend.
//!
//! ```text
//! cargo run --release --example backend_showdown [n] [--json [path]]
//! ```
//!
//! Runs the same Figure-1 instance to stabilization on each backend the
//! workspace provides — per-agent, countwise, batch-leaping, the active-edge
//! graphwise engine (on the complete graph, its degenerate topology), and
//! the two USD-specialized engines — and prints interactions, winner, and
//! wall clock per backend. With the default n = 2 000 000 the batch
//! backend's sub-constant-per-interaction leaping is already visible; pass
//! a larger n (it alone handles 10⁸+ comfortably) to watch the gap widen.
//! The graphwise row materializes all C(n, 2) clique edges, so it sits out
//! once that edge list stops being demo-sized (run with n ≤ 20 000 to see
//! it; its real habitat is sparse topologies via `usd-sim run --topology`).

use plurality_consensus::prelude::*;
use usd_core::backend::Backend;
use usd_core::RunSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: u64 = 2_000_000;
    let mut json: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json = Some(match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "BENCH_backends.json".to_string(),
            });
        } else if let Ok(v) = arg.parse() {
            n = v;
        } else {
            eprintln!("usage: backend_showdown [n] [--json [path]]");
            std::process::exit(2);
        }
    }
    let k = 4usize;
    let mut rows: Vec<String> = Vec::new();
    let config = InitialConfigBuilder::new(n, k).figure1();
    println!("instance: {config}");
    println!(
        "{:<8} {:>16} {:>12} {:>12} winner",
        "backend", "interactions", "par. time", "wall"
    );

    for backend in Backend::ALL {
        // The agentwise engine allocates per-agent state; skip it once n
        // makes that silly in a demo. The graphwise engine's degenerate
        // clique instance materializes all C(n, 2) edges — demo-sized
        // populations only.
        if backend.capabilities().topologies
            && backend != Backend::Agent
            && n > usd_core::backend::COMPLETE_GRAPH_MAX_N
        {
            println!("{:<8} {:>16}", backend.name(), "(skipped: O(n^2) edges)");
            continue;
        }
        if backend.per_agent_memory() && n > 20_000_000 {
            println!("{:<8} {:>16}", backend.name(), "(skipped: O(n) memory)");
            continue;
        }
        let mut rng = SimRng::new(7);
        let start = std::time::Instant::now();
        let result = RunSpec::new(&config).backend(backend).run(&mut rng);
        let wall = start.elapsed();
        let winner = match result.outcome {
            ConsensusOutcome::Winner(w) => format!("opinion {}", w + 1),
            ConsensusOutcome::AllUndecided => "all-undecided".to_string(),
            ConsensusOutcome::Frozen => "frozen".to_string(),
            ConsensusOutcome::Timeout => "timeout".to_string(),
        };
        println!(
            "{:<8} {:>16} {:>12.2} {:>12.2?} {}",
            backend.name(),
            result.interactions,
            result.parallel_time(n),
            wall,
            winner
        );
        rows.push(format!(
            "  {{\"backend\":\"{}\",\"topology\":\"clique\",\"n\":{n},\"mode\":\"stabilize\",\
             \"wall_s\":{:.6},\"scheduled\":{},\"scheduled_per_s\":{:.1},\"winner\":\"{winner}\"}}",
            backend.name(),
            wall.as_secs_f64(),
            result.interactions,
            result.interactions as f64 / wall.as_secs_f64(),
        ));
    }
    if let Some(path) = json {
        let doc = format!(
            "{{\n\"workload\": \"backend_showdown\",\n\"rows\": [\n{}\n]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
