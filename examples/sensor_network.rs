//! Sensor-network plurality voting — the motivating scenario of Angluin
//! et al.'s original population-protocol work.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```
//!
//! A swarm of cheap sensors each classifies a phenomenon into one of k
//! classes; readings are noisy, so individual sensors disagree, but the
//! true class gets a plurality of the votes. The sensors are anonymous,
//! have k + 1 states of memory, and communicate only when two of them
//! happen to meet (the random clique scheduler). Running the Undecided
//! State Dynamics makes the whole swarm converge on the plurality reading.
//!
//! This example also demonstrates the *bias threshold*: we sweep the
//! sensor noise level and show that once the plurality's lead drops to
//! O(√n), the swarm may lock in a wrong answer — exactly the
//! approximate-consensus guarantee boundary discussed in the paper.

use plurality_consensus::prelude::*;

/// Simulate noisy sensing: each of `n` sensors observes the true class
/// correctly with probability `accuracy`, otherwise picks a uniformly
/// random wrong class.
fn sense(n: u64, k: usize, true_class: usize, accuracy: f64, rng: &mut SimRng) -> UsdConfig {
    let mut votes = vec![0u64; k];
    for _ in 0..n {
        if rng.bernoulli(accuracy) {
            votes[true_class] += 1;
        } else {
            let mut wrong = rng.index(k - 1);
            if wrong >= true_class {
                wrong += 1;
            }
            votes[wrong] += 1;
        }
    }
    UsdConfig::decided(votes)
}

fn main() {
    let n: u64 = 20_000;
    let k: usize = 5;
    let true_class = 2usize;
    let mut rng = SimRng::new(7);

    println!("sensor swarm: n={n} sensors, k={k} classes, true class = {true_class}");
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>16} {:>10}",
        "accuracy", "lead", "lead/sqrt(n)", "parallel time", "correct?"
    );

    // Accuracy 1/k is pure noise; accuracy 1.0 is perfect sensing.
    for accuracy in [0.22, 0.25, 0.30, 0.40, 0.60] {
        let config = sense(n, k, true_class, accuracy, &mut rng);
        let sorted = config.sorted_desc();
        let lead = sorted[0] - sorted[1];
        let plurality = config.plurality().unwrap();

        let mut sim = SkipAheadUsd::new(&config);
        let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
        let correct = matches!(result.outcome, ConsensusOutcome::Winner(w) if w == true_class);
        println!(
            "{:>10.2} {:>12} {:>12.2} {:>16.1} {:>10}",
            accuracy,
            lead,
            lead as f64 / (n as f64).sqrt(),
            result.parallel_time(n),
            if correct {
                "yes"
            } else if plurality != true_class {
                "no (noisy plurality!)"
            } else {
                "no"
            }
        );
    }

    println!();
    println!(
        "note: the swarm is reliable once the plurality's lead clears the \
         Theta(sqrt(n log n)) threshold (~{} here); near-tied readings are \
         a coin flip — the regime the paper's lower bound lives in.",
        ((n as f64) * (n as f64).ln()).sqrt().round()
    );
}
