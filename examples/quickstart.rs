//! Quickstart: run the Undecided State Dynamics once, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Sets up the paper's canonical scenario — k − 1 equally supported
//! minority opinions plus a majority with an additive √(n ln n) advantage —
//! runs the exact population-protocol simulation to stabilization, and
//! prints what happened.

use plurality_consensus::prelude::*;

fn main() {
    let n: u64 = 50_000;
    let k: usize = 8;

    // The paper's initial family: equal minorities, majority bias √(n ln n).
    let config = InitialConfigBuilder::new(n, k).figure1();
    println!("initial configuration: {config}");
    println!(
        "  bias = {} (≈ sqrt(n ln n)), plurality = opinion {}",
        config.bias(),
        config.plurality().unwrap() + 1
    );

    // Theory reference points for this (n, k).
    let bounds = Bounds::new(n, k);
    println!(
        "  theory: lower bound {:.1}, upper bound O(k ln n) = {:.1} parallel time",
        bounds.lower_bound_parallel(),
        bounds.upper_bound_parallel()
    );

    // Exact simulation with the skip-ahead engine (distribution-identical
    // to per-interaction simulation, but skips no-op meetings).
    let mut sim = SkipAheadUsd::new(&config);
    let mut rng = SimRng::new(2025);
    let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);

    match result.outcome {
        ConsensusOutcome::Winner(w) => {
            println!(
                "stabilized on opinion {} after {:.1} parallel time ({} interactions)",
                w + 1,
                result.parallel_time(n),
                result.interactions
            );
            println!(
                "  plurality won: {} (expected w.h.p. at this bias)",
                result.plurality_won()
            );
        }
        ConsensusOutcome::AllUndecided => {
            println!("degenerate: every agent became undecided (absorbing)");
        }
        ConsensusOutcome::Frozen => {
            unreachable!("clique runs cannot freeze in a mixed configuration")
        }
        ConsensusOutcome::Timeout => println!("budget exhausted before stabilization"),
    }
}
