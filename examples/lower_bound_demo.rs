//! A miniature Figure 1 plus the lower-bound scaling, in the terminal.
//!
//! ```text
//! cargo run --release --example lower_bound_demo
//! ```
//!
//! First renders the Figure 1 (left) trajectories at a reduced n, then
//! sweeps k and prints measured stabilization times against the paper's
//! lower-bound curve (k/25)·ln(√n/(k ln n)) and the Amir et al. upper
//! bound k·ln n — the "almost tight" band.

use plurality_consensus::prelude::*;
use plurality_consensus::usd_experiments::fig1;
use sim_stats::plot::AsciiChart;

fn main() {
    let n: u64 = 50_000;
    let k = plurality_consensus::usd_core::theory::figure1_k(n);

    // Panel 1: the Figure 1 (left) trajectories.
    let run = fig1::simulate_fig1_run(n, k, 1, fig1::default_budget(n, k));
    let ts = fig1::left_panel_series(&run).downsample(100);
    let chart = AsciiChart::new(90, 20)
        .title(format!("Figure 1 (left) at n={n}, k={k}"))
        .x_label("parallel time")
        .y_label("number of nodes");
    print!("{}", chart.render(&ts));
    println!(
        "stabilized after {:.1} parallel time; x1 doubled at {:.1}",
        run.stabilization as f64 / n as f64,
        run.majority_doubling.unwrap_or(run.stabilization) as f64 / n as f64,
    );

    // Panel 2: the scaling band.
    println!();
    println!("lower-bound scaling at n={n} (3 seeds per k):");
    println!(
        "{:>4} {:>14} {:>12} {:>10} {:>12} {:>10}",
        "k", "T parallel", "lower bnd", "T/lower", "upper bnd", "T/upper"
    );
    let mut rng = SimRng::new(9);
    let mut k = 3usize;
    let max_k = ((n as f64).sqrt() / (n as f64).ln()) as usize;
    while k <= max_k {
        let config = InitialConfigBuilder::new(n, k).max_admissible_bias();
        let mut total = 0.0;
        for _ in 0..3 {
            let mut sim = SkipAheadUsd::new(&config);
            let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
            total += result.parallel_time(n);
        }
        let t = total / 3.0;
        let b = Bounds::new(n, k);
        println!(
            "{:>4} {:>14.1} {:>12.1} {:>10.2} {:>12.1} {:>10.3}",
            k,
            t,
            b.lower_bound_parallel(),
            t / b.lower_bound_parallel().max(1e-9),
            b.upper_bound_parallel(),
            t / b.upper_bound_parallel()
        );
        k *= 2;
    }
    println!();
    println!(
        "the measured times sit between the two curves for every k — the \
         paper's 'almost tight' statement, live."
    );
}
