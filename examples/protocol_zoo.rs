//! Protocol zoo: race USD against the baseline consensus protocols.
//!
//! ```text
//! cargo run --release --example protocol_zoo
//! ```
//!
//! Runs every protocol in the workspace on the same two-opinion instance
//! (60/40 split) and on a five-opinion plurality instance, printing how
//! long each takes and whether the initial plurality actually won —
//! a compact tour of the related-work landscape in §1.2 of the paper.

use plurality_consensus::pop_proto::{CountConfig, CountSimulator};
use plurality_consensus::prelude::*;
use plurality_consensus::usd_baselines::{
    FourStateMajority, GossipUsd, SynchronizedUsd, ThreeMajority, VoterDynamics,
};

fn main() {
    let n: u64 = 10_000;
    let mut rng = SimRng::new(3);

    println!("=== two opinions, 60/40 split, n={n} ===");
    println!(
        "{:<24} {:>14} {:>10} {:>18}",
        "protocol", "time", "unit", "plurality won?"
    );
    let config2 = UsdConfig::decided(vec![6 * n / 10, 4 * n / 10]);

    // USD in the population protocol model.
    {
        let mut sim = SkipAheadUsd::new(&config2);
        let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
        row(
            "USD (PP)",
            result.parallel_time(n),
            "parallel",
            result.plurality_won(),
        );
    }
    // Four-state exact majority.
    {
        let init = CountConfig::from_counts(vec![config2.x(0), config2.x(1), 0, 0]);
        let mut sim = CountSimulator::new(FourStateMajority, &init);
        sim.run(&mut rng, u64::MAX / 2, |s| s.is_silent());
        let (a, b) = FourStateMajority::sides(sim.counts());
        row(
            "4-state exact (PP)",
            sim.parallel_time(),
            "parallel",
            a == n && b == 0,
        );
    }
    // Voter dynamics.
    {
        let init = CountConfig::from_counts(config2.opinions().to_vec());
        let mut sim = CountSimulator::new(VoterDynamics::new(2), &init);
        sim.run(&mut rng, u64::MAX / 2, |s| s.is_silent());
        row(
            "Voter (PP)",
            sim.parallel_time(),
            "parallel",
            sim.config().consensus_state() == Some(0),
        );
    }
    // Gossip-model USD.
    {
        let mut sim = GossipUsd::new(&config2);
        let (rounds, _) = sim.run(&mut rng, 1_000_000);
        row(
            "USD (Gossip)",
            rounds as f64,
            "rounds",
            sim.winner() == Some(0),
        );
    }
    // 3-majority.
    {
        let mut sim = ThreeMajority::new(&config2);
        let (rounds, _) = sim.run(&mut rng, 1_000_000);
        row(
            "3-majority (Gossip)",
            rounds as f64,
            "rounds",
            sim.winner() == Some(0),
        );
    }
    // Synchronized USD.
    {
        let mut sim = SynchronizedUsd::new(&config2);
        let (rounds, _) = sim.run(&mut rng, 1_000_000);
        row(
            "Synchronized USD",
            rounds as f64,
            "rounds",
            sim.winner() == Some(0),
        );
    }

    println!();
    println!("=== five opinions, paper bias, n={n} ===");
    println!(
        "{:<24} {:>14} {:>10} {:>18}",
        "protocol", "time", "unit", "plurality won?"
    );
    let config5 = InitialConfigBuilder::new(n, 5).figure1();
    {
        let mut sim = SkipAheadUsd::new(&config5);
        let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
        row(
            "USD (PP)",
            result.parallel_time(n),
            "parallel",
            result.plurality_won(),
        );
    }
    {
        let init = CountConfig::from_counts(config5.opinions().to_vec());
        let mut sim = CountSimulator::new(VoterDynamics::new(5), &init);
        sim.run(&mut rng, u64::MAX / 2, |s| s.is_silent());
        row(
            "Voter (PP)",
            sim.parallel_time(),
            "parallel",
            sim.config().consensus_state() == Some(0),
        );
    }
    {
        let mut sim = GossipUsd::new(&config5);
        let (rounds, _) = sim.run(&mut rng, 1_000_000);
        row(
            "USD (Gossip)",
            rounds as f64,
            "rounds",
            sim.winner() == Some(0),
        );
    }
    {
        let mut sim = ThreeMajority::new(&config5);
        let (rounds, _) = sim.run(&mut rng, 1_000_000);
        row(
            "3-majority (Gossip)",
            rounds as f64,
            "rounds",
            sim.winner() == Some(0),
        );
    }

    println!();
    println!(
        "takeaways: USD is fast and correct given the bias; voter is slow \
         (Theta(n) parallel) and wins only ~proportionally to support; the \
         4-state protocol is always-correct but pays for exactness; one \
         Gossip round costs n interactions, so rounds and parallel time are \
         directly comparable."
    );
}

fn row(name: &str, time: f64, unit: &str, won: bool) {
    println!(
        "{:<24} {:>14.1} {:>10} {:>18}",
        name,
        time,
        unit,
        if won { "yes" } else { "no" }
    );
}
