//! Fault-injection harness for the checkpoint subsystem: randomized
//! bit-flips and truncations of sealed checkpoint files must be rejected
//! with a clean [`CheckpointError`] on every backend (the CRC gate), fuzzed
//! engine payloads must never panic the restore path, and I/O faults
//! injected at every point of the persist sequence must leave a loadable
//! checkpoint on disk (the `.prev` fallback chain). The companion
//! process-kill variant — [`FaultPlan::kill_on_op`] aborts mid-persist —
//! is exercised end-to-end by the CI kill-and-resume smoke job, since an
//! abort cannot run inside a test thread.

use pop_proto::checkpoint::{FaultPlan, SnapshotReader, SnapshotWriter};
use sim_stats::rng::SimRng;
use usd_core::backend::{make_simulator, Backend};
use usd_core::config::UsdConfig;
use usd_core::RunCheckpoint;

/// A mid-flight checkpoint for `backend` on a small dead-heat instance.
fn checkpoint_for(backend: Backend) -> RunCheckpoint {
    let config = UsdConfig::decided(vec![300, 212]);
    let mut sim = make_simulator(backend, &config);
    let mut rng = SimRng::new(0xFA11 ^ backend as u64);
    sim.run_until(&mut rng, 3_000, &mut |_| false);
    let mut w = SnapshotWriter::new();
    sim.snapshot_state(&mut w).expect("snapshot");
    RunCheckpoint {
        backend: backend.name().to_string(),
        n: 512,
        k: 2,
        seed: 0xFA11 ^ backend as u64,
        topology: String::new(),
        rng: rng.state(),
        recorder: None,
        engine: w.into_bytes(),
    }
}

/// Sealed-file corruption on every backend: any single bit flip and any
/// truncation is caught (CRC + length header) and surfaces as `Err`,
/// never a panic. Positions are drawn from the deterministic [`SimRng`]
/// so the property sweep is reproducible.
#[test]
fn sealed_corruption_is_rejected_on_all_seven_backends() {
    let mut rng = SimRng::new(2024);
    for backend in Backend::ALL {
        let bytes = checkpoint_for(backend).to_bytes();
        assert!(RunCheckpoint::from_bytes(&bytes).is_ok());
        for _ in 0..400 {
            let mut bad = bytes.clone();
            let pos = (rng.next() as usize) % bad.len();
            let bit = 1u8 << (rng.next() % 8);
            bad[pos] ^= bit;
            assert!(
                RunCheckpoint::from_bytes(&bad).is_err(),
                "{}: bit flip at byte {pos} (mask {bit:#04x}) accepted",
                backend.name()
            );
        }
        for _ in 0..200 {
            let len = (rng.next() as usize) % bytes.len();
            assert!(
                RunCheckpoint::from_bytes(&bytes[..len]).is_err(),
                "{}: truncation to {len} bytes accepted",
                backend.name()
            );
        }
    }
}

/// Engine-payload fuzzing on every backend: feeding mutated (flipped or
/// truncated) snapshot bytes to a fresh simulator's `restore_state` must
/// never panic — a clean `Err` or a structurally-valid `Ok` are both
/// acceptable (the sealed container's CRC is what guarantees rejection in
/// the real load path; this test pins down the no-panic contract of the
/// layer beneath it). Truncations in particular must always error.
#[test]
fn fuzzed_engine_payload_never_panics_restore() {
    let config = UsdConfig::decided(vec![300, 212]);
    let mut rng = SimRng::new(77);
    for backend in Backend::ALL {
        let good = checkpoint_for(backend).engine;
        {
            let mut sim = make_simulator(backend, &config);
            sim.restore_state(&mut SnapshotReader::new(&good))
                .expect("pristine payload restores");
        }
        for _ in 0..300 {
            let mut bad = good.clone();
            for _ in 0..=(rng.next() % 4) {
                let pos = (rng.next() as usize) % bad.len();
                bad[pos] ^= 1u8 << (rng.next() % 8);
            }
            let mut sim = make_simulator(backend, &config);
            let _ = sim.restore_state(&mut SnapshotReader::new(&bad));
        }
        for _ in 0..100 {
            let len = (rng.next() as usize) % good.len();
            let mut sim = make_simulator(backend, &config);
            assert!(
                sim.restore_state(&mut SnapshotReader::new(&good[..len]))
                    .is_err(),
                "{}: truncated payload ({len} bytes) restored",
                backend.name()
            );
        }
        // A payload written by a *different* backend is rejected by the
        // engine tag, not misinterpreted.
        for other in Backend::ALL {
            if other == backend {
                continue;
            }
            let foreign = checkpoint_for(other).engine;
            let mut sim = make_simulator(backend, &config);
            assert!(
                sim.restore_state(&mut SnapshotReader::new(&foreign))
                    .is_err(),
                "{} accepted a payload from {}",
                backend.name(),
                other.name()
            );
        }
    }
}

/// I/O faults injected at every file operation of the persist sequence:
/// whatever point the write dies at, the chain on disk still loads — the
/// new checkpoint if the rename committed, the previous one otherwise.
/// This is the crash-safety contract `--checkpoint` relies on.
#[test]
fn persist_faults_at_every_op_leave_a_loadable_chain() {
    let dir = std::env::temp_dir().join(format!("usd_fault_chain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");

    let first = checkpoint_for(Backend::Count);
    let mut second = checkpoint_for(Backend::Count);
    second.seed ^= 1; // distinguishable payloads

    // Count the ops a clean persist performs.
    let mut counter = FaultPlan::none();
    first.save_with(&path, &mut counter).unwrap();
    let total_ops = counter.ops_seen();
    assert!(total_ops >= 3, "persist should at least create/sync/rename");

    for op in 1..=total_ops {
        // Reset the chain: `first` is the durable checkpoint.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(pop_proto::checkpoint::prev_path(&path));
        first.save(&path).unwrap();

        let mut plan = FaultPlan::fail_on_op(op);
        let res = second.save_with(&path, &mut plan);
        let (loaded, from) = RunCheckpoint::load(&path)
            .unwrap_or_else(|e| panic!("fault at op {op}: chain unloadable: {e}"));
        match res {
            // The persist claims success: the new checkpoint must be live.
            Ok(()) => assert_eq!(loaded.seed, second.seed, "fault at op {op}"),
            // The persist failed: whichever file validates must be one of
            // the two coherent states, never a torn hybrid.
            Err(_) => assert!(
                loaded.seed == first.seed || loaded.seed == second.seed,
                "fault at op {op}: loaded a torn checkpoint from {}",
                from.display()
            ),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
