//! The bit-parallel replica engine ≡ scalar runs, and the [`RunSpec`]
//! builder ≡ the deprecated free-function entrypoints it replaced.
//!
//! The replica engine packs one state bit (per plane) of up to 64
//! independent replica runs into each machine word and applies the USD
//! update to all lanes of a shared (edge, orientation) draw at once. These
//! tests pin the three claims that make an ensemble run a drop-in
//! replacement for 64 scalar runs:
//!
//! * **lane-0 bit-identity**: under a shared scheduler stream and layout,
//!   lane 0 of a replica run holds exactly the scalar agentwise engine's
//!   states after every draw — the packed update *is* the scalar update;
//! * **per-lane stabilization law**: the 64 lane stabilization times of
//!   one ensemble pass are distributed as 64 independent scalar agentwise
//!   runs (two-sample Kolmogorov–Smirnov at α = 0.01 on the complete
//!   graph, a random 8-regular graph, and the cycle);
//! * **lane retirement**: the live-lane bitmap only ever loses bits, a
//!   retired lane's counts and stabilization clock never change again, and
//!   the aggregate counts stay the exact lane sum throughout.
//!
//! The RunSpec ↔ wrapper tests pin that the builder routes every backend
//! through drive loops whose RNG consumption is identical to the legacy
//! entrypoints' (same seed ⇒ same classified result, bit for bit).

#![allow(deprecated)] // the wrapper-equivalence tests exercise them on purpose

use plurality_consensus::pop_proto::{
    AgentSimulator, CliqueScheduler, ReplicaSimulator, Simulator, TopologyFamily,
};
use plurality_consensus::usd_core::protocol::UndecidedStateDynamics;
use plurality_consensus::usd_core::{EnsembleOutcome, RunSpec};
use sim_stats::ks::{ks_critical_value, ks_statistic};
use sim_stats::rng::SimRng;
use usd_core::backend::{stabilize_on_topology, stabilize_with_backend, Backend};
use usd_core::init::InitialConfigBuilder;

/// `lanes` independent shuffles of the configuration's canonical state
/// block — the same layout family the engine constructors use.
fn usd_layouts(config: &usd_core::UsdConfig, lanes: u32, seed: u64) -> Vec<Vec<usize>> {
    let counts = config.to_count_config();
    let mut rng = SimRng::new(seed);
    (0..lanes)
        .map(|_| {
            let mut layout = Vec::with_capacity(counts.n() as usize);
            for (state, &c) in counts.counts().iter().enumerate() {
                layout.extend(std::iter::repeat_n(state, c as usize));
            }
            rng.shuffle(&mut layout);
            layout
        })
        .collect()
}

/// Lane 0 of a packed USD run holds the scalar agentwise engine's exact
/// states after every shared draw: the ~6-bitwise-op update applied to all
/// lanes is, lane by lane, the scalar `transition_indices` update.
#[test]
fn lane_zero_usd_trajectory_is_bit_identical_to_scalar_agentwise() {
    let n = 120u64;
    let k = 3usize;
    for seed in [2u64, 31, 404] {
        let config = InitialConfigBuilder::new(n, k).figure1();
        let layouts = usd_layouts(&config, 16, seed);
        let proto = UndecidedStateDynamics::new(k);
        let mut replica = ReplicaSimulator::new_clique(proto, n as usize, &layouts);
        let mut scalar = AgentSimulator::new(
            UndecidedStateDynamics::new(k),
            CliqueScheduler::new(n as usize),
            layouts[0].clone(),
        );
        // Same seed, separate streams: each engine draws one (pair) per
        // step, so the streams stay aligned draw for draw.
        let mut rng_r = SimRng::new(seed ^ 0xD1CE);
        let mut rng_s = SimRng::new(seed ^ 0xD1CE);
        let mut lane0_done = false;
        for step in 0..200_000u64 {
            replica.draw_step(&mut rng_r);
            Simulator::step(&mut scalar, &mut rng_s);
            assert_eq!(
                replica.lane_states(0),
                scalar.states(),
                "seed {seed}: lane 0 diverged from the scalar engine at draw {step}"
            );
            assert_eq!(replica.counts_of_lane(0), Simulator::counts(&scalar));
            if Simulator::is_silent(&scalar) && !lane0_done {
                lane0_done = true;
                assert_eq!(
                    replica.stabilized_at(0),
                    Some(Simulator::interactions(&scalar)),
                    "seed {seed}: lane 0 retired at a different clock"
                );
            }
            if replica.is_silent() {
                break;
            }
        }
        assert!(replica.is_silent(), "seed {seed}: ensemble did not finish");
        assert!(lane0_done, "seed {seed}: scalar run did not finish");
    }
}

/// Lane stabilization times pooled over `passes` ensemble passes of
/// `lanes` lanes each, through the public [`RunSpec`] surface (the engine
/// is kept; [`EnsembleOutcome`] reads the per-lane results off it).
fn replica_lane_times(
    family: TopologyFamily,
    n: u64,
    k: usize,
    passes: u64,
    lanes: u32,
    seed: u64,
) -> Vec<f64> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut times = Vec::new();
    for pass in 0..passes {
        let mut rng = SimRng::new(seed + pass);
        let (_, sim) = RunSpec::new(&config)
            .backend(Backend::Replica)
            .topology(family)
            .topo_seed(seed + pass)
            .replicas(lanes)
            .run_keeping(&mut rng);
        let sim = sim.expect("these families always have edges");
        let ens = EnsembleOutcome::from_simulator(sim.as_ref(), k, config.plurality());
        assert!(ens.all_stabilized(), "{family}: a lane failed to stabilize");
        times.extend(ens.stabilization_times());
    }
    times
}

/// Scalar agentwise stabilization times, one seeded run per sample, with
/// per-rep graphs so the samples marginalize over the random families the
/// same way independent replicas would.
fn agent_times(family: TopologyFamily, n: u64, k: usize, reps: u64, seed_base: u64) -> Vec<f64> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    (0..reps)
        .map(|rep| {
            let mut rng = SimRng::new(seed_base + rep);
            let result = RunSpec::new(&config)
                .backend(Backend::Agent)
                .topology(family)
                .topo_seed(seed_base + rep)
                .run(&mut rng);
            assert!(result.stabilized(), "{family}: agent rep {rep} timed out");
            result.interactions as f64
        })
        .collect()
}

/// 64 lane clocks vs 100 scalar agentwise runs by two-sample KS at
/// α = 0.01. The lane clock counts the lane's own scheduled draws —
/// directly comparable to a scalar interaction count.
///
/// Lanes of one pass share a scheduler stream, so each lane's *marginal*
/// law is exactly the scalar law but lanes are correlated, and KS assumes
/// (near-)independent samples. Where stabilization-time variance is
/// layout-dominated (complete, regular — expander-like mixing) a single
/// 64-lane pass is effectively independent; on the cycle the variance is
/// schedule-dominated, so the sample pools lanes from 16 passes instead.
fn assert_lane_law_matches_agentwise(
    family: TopologyFamily,
    n: u64,
    k: usize,
    passes: u64,
    lanes: u32,
) {
    let ensemble = replica_lane_times(family, n, k, passes, lanes, 0xE25);
    assert_eq!(ensemble.len(), 64);
    let scalar = agent_times(family, n, k, 100, 52_000);
    let d = ks_statistic(&ensemble, &scalar);
    let crit = ks_critical_value(ensemble.len(), scalar.len(), 0.01);
    assert!(
        d < crit,
        "{family}: per-lane vs scalar stabilization-time KS {d:.4} >= critical {crit:.4}"
    );
}

#[test]
fn per_lane_stabilization_law_matches_agentwise_on_complete_graph() {
    assert_lane_law_matches_agentwise(TopologyFamily::Complete, 256, 3, 1, 64);
}

#[test]
fn per_lane_stabilization_law_matches_agentwise_on_random_8_regular() {
    assert_lane_law_matches_agentwise(TopologyFamily::Regular { d: 8 }, 512, 2, 1, 64);
}

#[test]
fn per_lane_stabilization_law_matches_agentwise_on_cycle() {
    assert_lane_law_matches_agentwise(TopologyFamily::Cycle, 96, 2, 16, 4);
}

/// Lane-retirement bitmap properties, checked along whole trajectories
/// over several seeds: retirement is monotone, a retired lane is frozen
/// (counts and clock), the aggregate counts are the exact lane sum, and
/// silence is precisely "every lane retired".
#[test]
fn lane_retirement_is_monotone_and_freezes_lanes() {
    let n = 80usize;
    let k = 2usize;
    for seed in [7u64, 19, 83, 641] {
        let config = InitialConfigBuilder::new(n as u64, k).figure1();
        let layouts = usd_layouts(&config, 64, seed);
        let mut sim = ReplicaSimulator::new_clique(UndecidedStateDynamics::new(k), n, &layouts);
        let mut rng = SimRng::new(seed);
        let mut prev_live = sim.live_mask();
        let mut frozen: Vec<Option<(Vec<u64>, u64)>> = vec![None; 64];
        while !sim.is_silent() {
            sim.draw_step(&mut rng);
            let live = sim.live_mask();
            assert_eq!(live & !prev_live, 0, "seed {seed}: a retired lane revived");
            prev_live = live;
            let mut lane_sum = vec![0u64; k + 1];
            for lane in 0..64u32 {
                let counts = sim.counts_of_lane(lane).to_vec();
                assert_eq!(
                    counts.iter().sum::<u64>(),
                    n as u64,
                    "seed {seed}: lane {lane} population not conserved"
                );
                for (s, &c) in counts.iter().enumerate() {
                    lane_sum[s] += c;
                }
                let retired = live & (1 << lane) == 0;
                assert_eq!(
                    sim.stabilized_at(lane).is_some(),
                    retired,
                    "seed {seed}: lane {lane} bitmap and clock disagree"
                );
                if retired {
                    let clock = sim.stabilized_at(lane).unwrap();
                    match &frozen[lane as usize] {
                        None => frozen[lane as usize] = Some((counts, clock)),
                        Some((c0, t0)) => {
                            assert_eq!(&counts, c0, "seed {seed}: retired lane {lane} moved");
                            assert_eq!(clock, *t0, "seed {seed}: retired clock changed");
                        }
                    }
                }
            }
            assert_eq!(
                lane_sum,
                sim.counts(),
                "seed {seed}: aggregate counts are not the lane sum"
            );
        }
        assert_eq!(sim.live_mask(), 0, "seed {seed}: silent with live lanes");
        for lane in 0..64u32 {
            let t = sim.stabilized_at(lane).expect("every lane retired");
            assert!(t <= sim.draws(), "seed {seed}: lane clock past the draws");
        }
    }
}

/// The builder and the deprecated fire-and-forget wrapper classify the
/// same seed identically on every backend — the wrappers are now thin
/// delegations, and this pins that the delegation changed nothing.
#[test]
fn runspec_matches_deprecated_clique_wrapper_on_every_backend() {
    for backend in Backend::ALL {
        let config = InitialConfigBuilder::new(600, 3).figure1();
        let mut rng_legacy = SimRng::new(42);
        let mut rng_spec = SimRng::new(42);
        let legacy = stabilize_with_backend(backend, &config, &mut rng_legacy, u64::MAX / 2);
        let spec = RunSpec::new(&config).backend(backend).run(&mut rng_spec);
        assert_eq!(legacy, spec, "{backend}: builder diverged from wrapper");
        assert!(spec.stabilized(), "{backend}: did not stabilize");
    }
}

/// Same pinning for the topology wrapper, on every topology-capable
/// backend (the agentwise edge-scan path included).
#[test]
fn runspec_matches_deprecated_topology_wrapper() {
    for backend in [
        Backend::Agent,
        Backend::Graph,
        Backend::BatchGraph,
        Backend::Replica,
    ] {
        let config = InitialConfigBuilder::new(256, 2).figure1();
        let family = TopologyFamily::Regular { d: 8 };
        let mut rng_legacy = SimRng::new(5);
        let mut rng_spec = SimRng::new(5);
        let legacy =
            stabilize_on_topology(backend, &config, family, 9, &mut rng_legacy, u64::MAX / 2);
        let spec = RunSpec::new(&config)
            .backend(backend)
            .topology(family)
            .topo_seed(9)
            .run(&mut rng_spec);
        assert_eq!(legacy, spec, "{backend}: builder diverged from wrapper");
    }
}
