//! Cross-crate integration: the generic substrate, the specialized USD
//! engines, the theory module, and the experiment harness must tell one
//! consistent story.

use plurality_consensus::prelude::*;
use plurality_consensus::usd_experiments::{fig1, ExpArgs};
use pop_proto::Protocol;

#[test]
fn usd_config_and_protocol_agree_on_state_space() {
    let proto = UndecidedStateDynamics::new(5);
    let config = InitialConfigBuilder::new(100, 5).balanced();
    let cc = config.to_count_config();
    assert_eq!(cc.num_states(), proto.num_states());
    assert_eq!(cc.n(), 100);
    // The undecided slot is the last index.
    assert_eq!(cc.count(proto.undecided_index()), 0);
}

#[test]
fn theory_bounds_bracket_simulated_time_small_instance() {
    // End-to-end: simulate the paper's configuration and verify the
    // measured time lands in the [lower, C·upper] band the theory module
    // predicts.
    let n = 5_000u64;
    let k = 6usize;
    let bounds = Bounds::new(n, k);
    let config = InitialConfigBuilder::new(n, k).max_admissible_bias();
    let mut total = 0.0;
    let reps = 5;
    for seed in 0..reps {
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(seed);
        let result = stabilize(&mut sim, &mut rng, u64::MAX / 2);
        assert!(result.stabilized());
        total += result.parallel_time(n);
    }
    let mean = total / reps as f64;
    assert!(
        mean >= bounds.lower_bound_parallel(),
        "measured {mean} below the lower bound {}",
        bounds.lower_bound_parallel()
    );
    assert!(
        mean <= 5.0 * bounds.upper_bound_parallel(),
        "measured {mean} far above the upper bound {}",
        bounds.upper_bound_parallel()
    );
}

#[test]
fn fig1_run_exhibits_papers_qualitative_shape() {
    // The three §2 observations, checked end-to-end on a real run:
    // (1) u(t) settles near n/2 − n/4k and never substantially exceeds it;
    // (2) reaching 2·x1(0) consumes most of the stabilization time;
    // (3) the majority wins.
    let n = 20_000u64;
    let k = plurality_consensus::usd_core::theory::figure1_k(n);
    let run = fig1::simulate_fig1_run(n, k, 3, fig1::default_budget(n, k));
    assert!(run.stabilized);
    assert_eq!(run.winner, Some(0), "majority must win at the fig1 bias");

    let plateau = undecided_plateau(n, k);
    let slack = 3.0 * ((n as f64) * (n as f64).ln()).sqrt()
        + 10.0 * n as f64 / ((k as f64 - 1.0) * (k as f64 - 1.0));
    assert!(
        (run.max_undecided as f64) <= plateau + slack,
        "u exceeded plateau+slack: {} vs {}",
        run.max_undecided,
        plateau + slack
    );

    let doubling = run.majority_doubling.expect("x1 must double") as f64;
    let frac = doubling / run.stabilization as f64;
    assert!(
        frac > 0.35,
        "doubling consumed only {frac:.2} of the run; paper expects the bulk"
    );
}

#[test]
fn experiment_reports_run_from_the_facade() {
    let args = ExpArgs {
        n: 2_000,
        quick: true,
        seeds: 1,
        ..ExpArgs::default()
    };
    let report = plurality_consensus::usd_experiments::fig1::fig1_left_report(&args);
    let text = report.render();
    assert!(text.contains("Figure 1 (left)"));
    assert!(text.contains("parallel time"));
}

#[test]
fn drift_analysis_lemma_params_match_simulation_probabilities() {
    // Pin the usd_walks adapters against a direct empirical estimate: the
    // probability that one interaction changes x_i, measured by simulation,
    // must match opinion_walk_law's p.
    use plurality_consensus::drift_analysis::usd_walks::opinion_walk_law;
    let config = UsdConfig::new(vec![300, 200, 100], 400);
    let (p, _q) = opinion_walk_law(&config, 0);

    let mut changes = 0u64;
    let trials = 200_000u64;
    let mut rng = SimRng::new(5);
    for _ in 0..trials {
        // One interaction from a fresh copy: exact one-step marginal.
        let mut sim = SequentialUsd::new(&config);
        let before = sim.opinions()[0];
        sim.step_raw(&mut rng);
        if sim.opinions()[0] != before {
            changes += 1;
        }
    }
    let empirical = changes as f64 / trials as f64;
    assert!(
        (empirical - p).abs() < 0.005,
        "empirical step probability {empirical} vs closed form {p}"
    );
}

/// Small extension trait so the test above can take exactly one raw
/// interaction (including no-ops) through the public API.
trait StepRaw {
    fn step_raw(&mut self, rng: &mut SimRng);
}

impl StepRaw for SequentialUsd {
    fn step_raw(&mut self, rng: &mut SimRng) {
        self.step(rng);
    }
}
