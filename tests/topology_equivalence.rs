//! The graphwise active-edge engine and the batch-graph block-leaping
//! engine simulate exactly the same graph-restricted Markov chain as the
//! agentwise engine driven by a `GraphScheduler` — these tests compare the
//! engines' USD stabilization-time *distributions* by two-sample
//! Kolmogorov–Smirnov at α = 0.01 on the complete graph (the degenerate
//! clique topology), a random 8-regular graph, and the torus, plus
//! winner-rate agreement. Fixed seeds, no flaky assertions: the KS
//! thresholds are distribution-level with 150+ samples per engine.

use plurality_consensus::prelude::*;
use pop_proto::TopologyFamily;
use sim_stats::ks::{ks_critical_value, ks_statistic};
use usd_core::backend::Backend;
use usd_core::RunSpec;

/// Stabilization-time samples (interactions) for one backend on one
/// topology. Each repetition draws its own layout and trajectory from a
/// per-rep generator; the graph is rebuilt per rep from a rep-dependent
/// seed so the samples marginalize over the random families too.
fn samples(
    backend: Backend,
    family: TopologyFamily,
    n: u64,
    k: usize,
    reps: u64,
    seed_base: u64,
) -> Vec<f64> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    (0..reps)
        .map(|rep| {
            let mut rng = SimRng::new(seed_base + rep);
            let result = RunSpec::new(&config)
                .backend(backend)
                .topology(family)
                .topo_seed(0xBEEF ^ rep)
                .run(&mut rng);
            assert!(
                result.stabilized(),
                "{backend} rep {rep} did not stabilize on {family}"
            );
            result.interactions as f64
        })
        .collect()
}

fn assert_ks_equivalent(
    reference: Backend,
    candidate: Backend,
    family: TopologyFamily,
    n: u64,
    k: usize,
    reps: u64,
) {
    let a = samples(reference, family, n, k, reps, 40_000);
    let b = samples(candidate, family, n, k, reps, 80_000);
    let d = ks_statistic(&a, &b);
    let crit = ks_critical_value(a.len(), b.len(), 0.01);
    assert!(
        d < crit,
        "{family}: {candidate} vs {reference} stabilization-time KS {d:.4} >= critical {crit:.4}"
    );
}

/// KS equivalence on the complete graph: the graphwise engine's degenerate
/// clique instance must reproduce the agentwise stabilization-time law.
#[test]
fn graphwise_vs_agentwise_complete_graph_ks() {
    assert_ks_equivalent(
        Backend::Agent,
        Backend::Graph,
        TopologyFamily::Complete,
        400,
        3,
        150,
    );
}

/// KS equivalence on a random 8-regular graph — the issue's headline
/// correctness criterion for the topology subsystem.
#[test]
fn graphwise_vs_agentwise_random_8_regular_ks() {
    assert_ks_equivalent(
        Backend::Agent,
        Backend::Graph,
        TopologyFamily::Regular { d: 8 },
        512,
        2,
        150,
    );
}

/// KS equivalence of the block-leaping engine against the graphwise
/// reference on the complete graph (every draw at n = 400 hits the
/// matching machinery: dense clique states mean collisions and fallbacks
/// fire constantly).
#[test]
fn batchgraph_vs_graphwise_complete_graph_ks() {
    assert_ks_equivalent(
        Backend::Graph,
        Backend::BatchGraph,
        TopologyFamily::Complete,
        400,
        3,
        150,
    );
}

/// KS equivalence of the block-leaping engine on a random 8-regular graph
/// — the effective-dominated regime the engine was built for.
#[test]
fn batchgraph_vs_graphwise_random_8_regular_ks() {
    assert_ks_equivalent(
        Backend::Graph,
        Backend::BatchGraph,
        TopologyFamily::Regular { d: 8 },
        512,
        2,
        150,
    );
}

/// KS equivalence of the block-leaping engine on the torus — the
/// low-conductance family where the run crosses the block ↔ sparse
/// hand-off repeatedly, so the phase hysteresis is what is being tested.
#[test]
fn batchgraph_vs_graphwise_torus_ks() {
    assert_ks_equivalent(
        Backend::Graph,
        Backend::BatchGraph,
        TopologyFamily::Torus,
        441,
        2,
        150,
    );
}

/// KS equivalence of the block-leaping engine on the cycle — the most
/// no-op-dominated family, where the whole run lives in the shared sparse
/// skipper and its sparse blocks apply up to 64 events per advancement
/// (PR 5). This re-pins the sparse-phase batching against the per-event
/// graphwise reference.
#[test]
fn batchgraph_vs_graphwise_cycle_ks() {
    assert_ks_equivalent(
        Backend::Graph,
        Backend::BatchGraph,
        TopologyFamily::Cycle,
        96,
        2,
        150,
    );
}

/// KS equivalence of the graphwise engine against the literal agentwise
/// engine on the torus: with the deferred-update sparse skipper (PR 5)
/// the graphwise sparse phase defers its Fenwick materialization, and
/// this pins that the induced chain — and the skip-accounted interaction
/// clock — still match the engine that simulates every scheduled draw.
#[test]
fn graphwise_vs_agentwise_torus_ks() {
    assert_ks_equivalent(
        Backend::Agent,
        Backend::Graph,
        TopologyFamily::Torus,
        196,
        2,
        120,
    );
}

/// KS equivalence of the graphwise engine against the literal agentwise
/// engine on the **torus endgame** — one minority square patch on an
/// otherwise-converged torus, the benched scenario whose runs live almost
/// entirely in the sparse skipper at a *low* sidecar cancel rate. Re-pins
/// the chain after the adaptive deferral bypass (PR 6): the policy may
/// only change Fenwick bookkeeping, never the sampled trajectory law.
#[test]
fn graphwise_vs_agentwise_torus_endgame_ks() {
    use plurality_consensus::pop_proto::{
        AgentSimulator, GraphScheduler, GraphSimulator, Simulator,
    };
    use plurality_consensus::usd_core::protocol::UndecidedStateDynamics;

    let n = TopologyFamily::Torus.snap_n(196);
    let side = (n as f64).sqrt() as usize;
    let patch = 4usize;
    let reps = 120u64;
    let endgame_states = || {
        let mut states = vec![0usize; n];
        for r in 0..patch {
            for c in 0..patch {
                states[r * side + c] = 1;
            }
        }
        states
    };
    let samples = |graphwise: bool, seed_base: u64| -> Vec<f64> {
        let graph = TopologyFamily::Torus.build(n, 0);
        (0..reps)
            .map(|rep| {
                let mut rng = SimRng::new(seed_base + rep);
                let proto = UndecidedStateDynamics::new(2);
                let mut sim: Box<dyn Simulator> = if graphwise {
                    Box::new(GraphSimulator::new(proto, &graph, endgame_states()))
                } else {
                    Box::new(AgentSimulator::new(
                        proto,
                        GraphScheduler::new(graph.clone()),
                        endgame_states(),
                    ))
                };
                let (interactions, silent) = sim.run_to_silence(&mut rng, u64::MAX / 2);
                assert!(silent, "endgame rep {rep} did not stabilize");
                interactions as f64
            })
            .collect()
    };
    let a = samples(false, 120_000);
    let b = samples(true, 220_000);
    let d = ks_statistic(&a, &b);
    let crit = ks_critical_value(a.len(), b.len(), 0.01);
    assert!(
        d < crit,
        "torus endgame: graph vs agent stabilization-time KS {d:.4} >= critical {crit:.4}"
    );
}

/// Winner distributions agree under a strong bias: both engines elect the
/// plurality at essentially the same high rate on a sparse topology.
#[test]
fn graphwise_and_agentwise_agree_on_winner_rate() {
    let n = 512u64;
    let k = 2usize;
    let reps = 80u64;
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut rates = [0.0f64; 2];
    for (slot, backend) in [Backend::Agent, Backend::Graph].into_iter().enumerate() {
        let mut wins = 0u64;
        for rep in 0..reps {
            let mut rng = SimRng::new(rep + 7_000 * slot as u64);
            let result = RunSpec::new(&config)
                .backend(backend)
                .topology(TopologyFamily::Regular { d: 8 })
                .topo_seed(0xABCD ^ rep)
                .run(&mut rng);
            if result.plurality_won() {
                wins += 1;
            }
        }
        rates[slot] = wins as f64 / reps as f64;
    }
    assert!(rates[0] > 0.85, "agentwise win rate {}", rates[0]);
    assert!(rates[1] > 0.85, "graphwise win rate {}", rates[1]);
    assert!(
        (rates[0] - rates[1]).abs() < 0.12,
        "win rates diverge: {rates:?}"
    );
}

/// The graphwise clock is calibrated: mean stabilization interactions on a
/// no-op-heavy topology (the cycle) match the agentwise engine, which
/// counts every scheduled interaction one by one. This exercises the
/// sparse-phase geometric skip accounting specifically — the cycle spends
/// > 99% of its schedule in skipped no-op runs.
#[test]
fn graphwise_skip_clock_matches_agentwise_on_cycle() {
    let n = 96u64;
    let k = 2usize;
    let reps = 200u64;
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut means = [0.0f64; 2];
    for (slot, backend) in [Backend::Agent, Backend::Graph].into_iter().enumerate() {
        for rep in 0..reps {
            let mut rng = SimRng::new(rep + 11_000 * slot as u64);
            let result = RunSpec::new(&config)
                .backend(backend)
                .topology(TopologyFamily::Cycle)
                .topo_seed(1)
                .run(&mut rng);
            assert!(result.stabilized());
            means[slot] += result.interactions as f64;
        }
        means[slot] /= reps as f64;
    }
    let rel = (means[0] - means[1]).abs() / means[0];
    assert!(
        rel < 0.12,
        "interaction clocks diverge: agent {} vs graph {}",
        means[0],
        means[1]
    );
}
