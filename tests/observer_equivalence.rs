//! Equivalence of the observation layer across backends.
//!
//! Every backend drives a `SimObserver` through
//! `Simulator::advance_observed`; these tests pin the layer's contract:
//!
//! * **self-consistency** (exact, per backend): the observer's accumulated
//!   effective/scheduled deltas must equal the simulator's own counters,
//!   the final observed counts must equal the simulator's counts, and the
//!   population must be conserved at every observation;
//! * **granularity**: the single-event engines report `delta_effective ==
//!   1` at every boundary (exact semantics), the leaping engines report
//!   block checkpoints;
//! * **cross-backend agreement** (distributional): the mean effective-event
//!   count to stabilization and the mean final majority seen *through the
//!   observer* agree between the sequential reference and each leaping
//!   backend (fixed seeds, generous tolerances — no flaky assertions);
//! * **frozen topologies**: all graph-capable backends classify a
//!   disconnected topology as `ConsensusOutcome::Frozen`.

use plurality_consensus::pop_proto::{Observation, TopologyFamily};
use plurality_consensus::sim_stats::rng::SimRng;
use plurality_consensus::usd_core::backend::{make_simulator, Backend};
use plurality_consensus::usd_core::init::InitialConfigBuilder;
use plurality_consensus::usd_core::stabilization::ConsensusOutcome;
use plurality_consensus::usd_core::RunSpec;

/// What one observed run accumulated.
struct ObservedRun {
    observations: u64,
    sum_delta_effective: u64,
    sum_delta_interactions: u64,
    final_counts: Vec<u64>,
    all_exact: bool,
    effective_counter: u64,
    interactions_counter: u64,
}

/// Run `backend` to silence from the Figure-1 configuration, observing the
/// whole trajectory and checking per-observation invariants.
fn observed_run(backend: Backend, n: u64, k: usize, seed: u64) -> ObservedRun {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut sim = make_simulator(backend, &config);
    // Lane-aggregate engines (replica) hold `lanes × n` agents; observation
    // conserves the engine's population, not the per-lane one.
    let population = sim.population();
    let mut rng = SimRng::new(seed);
    let mut out = ObservedRun {
        observations: 0,
        sum_delta_effective: 0,
        sum_delta_interactions: 0,
        final_counts: Vec::new(),
        all_exact: true,
        effective_counter: 0,
        interactions_counter: 0,
    };
    sim.advance_observed(&mut rng, u64::MAX / 2, &mut |obs: &Observation<'_>| {
        assert_eq!(
            obs.counts.iter().sum::<u64>(),
            population,
            "{backend}: population not conserved"
        );
        assert!(obs.delta_effective >= 1, "{backend}: unchanged boundary");
        assert!(obs.delta_interactions >= obs.delta_effective);
        assert!(obs.effective >= obs.delta_effective);
        assert!(obs.interactions >= obs.delta_interactions);
        out.observations += 1;
        out.sum_delta_effective += obs.delta_effective;
        out.sum_delta_interactions += obs.delta_interactions;
        out.all_exact &= obs.is_exact();
        out.final_counts = obs.counts.to_vec();
        out.effective_counter = obs.effective;
        out.interactions_counter = obs.interactions;
        true
    });
    assert!(sim.is_silent(), "{backend}: run did not stabilize");
    // The observer's accumulated deltas are the simulator's counters.
    assert_eq!(
        out.sum_delta_effective,
        sim.effective_interactions(),
        "{backend}: effective deltas drifted from the counter"
    );
    assert_eq!(out.effective_counter, sim.effective_interactions());
    assert_eq!(
        out.sum_delta_interactions,
        sim.interactions(),
        "{backend}: scheduled deltas drifted from the clock"
    );
    assert_eq!(out.interactions_counter, sim.interactions());
    // The last observation *is* the final configuration: silence ends the
    // advancement at the boundary that reached it.
    assert_eq!(
        out.final_counts,
        sim.counts(),
        "{backend}: final observation is not the final state"
    );
    out
}

#[test]
fn observer_counters_are_self_consistent_on_every_backend() {
    for backend in Backend::ALL {
        let run = observed_run(backend, 600, 3, 42);
        assert!(run.observations > 0, "{backend}: no observations");
    }
}

#[test]
fn single_event_backends_are_exact_and_leaping_backends_checkpoint() {
    for backend in [
        Backend::Agent,
        Backend::Count,
        Backend::Sequential,
        Backend::SkipAhead,
        Backend::Graph,
    ] {
        let run = observed_run(backend, 600, 3, 7);
        assert!(run.all_exact, "{backend}: reported a multi-event boundary");
        assert_eq!(
            run.observations, run.sum_delta_effective,
            "{backend}: observations != effective events"
        );
    }
    // The batch engine must actually leap on this instance (otherwise the
    // checkpoint-semantics distinction is vacuous).
    let run = observed_run(Backend::Batch, 600, 3, 7);
    assert!(
        !run.all_exact,
        "batch: never produced a multi-event checkpoint"
    );
    assert!(run.observations < run.sum_delta_effective);
}

#[test]
fn effective_counts_and_final_states_agree_across_backends() {
    // Distributional agreement between the sequential reference and each
    // leaping backend, seen entirely through the observation layer: mean
    // effective events to stabilization and majority win rate.
    let reps = 60u64;
    let stats = |backend: Backend| -> (f64, f64) {
        let mut eff = 0.0;
        let mut wins = 0.0;
        for seed in 0..reps {
            let run = observed_run(backend, 500, 3, 1_000 + seed);
            eff += run.sum_delta_effective as f64;
            // Figure-1 bias: opinion 0 should win; count consensus states.
            let k = 3;
            if run.final_counts[k] == 0
                && run.final_counts[0] == run.final_counts.iter().sum::<u64>()
            {
                wins += 1.0;
            }
        }
        (eff / reps as f64, wins / reps as f64)
    };
    let (eff_seq, wins_seq) = stats(Backend::Sequential);
    assert!(wins_seq >= 0.8, "sequential majority win rate {wins_seq}");
    for backend in [Backend::Batch, Backend::BatchGraph, Backend::SkipAhead] {
        let (eff, wins) = stats(backend);
        let rel = (eff - eff_seq).abs() / eff_seq;
        assert!(
            rel < 0.15,
            "{backend}: mean effective events diverge from sequential: \
             {eff} vs {eff_seq} ({rel:.3})"
        );
        assert!(
            (wins - wins_seq).abs() <= 0.2,
            "{backend}: win rate {wins} vs sequential {wins_seq}"
        );
    }
}

#[test]
fn frozen_outcome_is_reported_identically_by_all_graph_backends() {
    // A very sparse Erdős–Rényi graph strands both opinions in separate
    // components; every topology-capable backend must classify the silent
    // mixed configuration as Frozen (not Winner, not Timeout).
    let config = plurality_consensus::usd_core::UsdConfig::decided(vec![150, 150]);
    let family = TopologyFamily::ErdosRenyi { avg_degree: 0.8 };
    let mut outcomes = Vec::new();
    for backend in [Backend::Agent, Backend::Graph, Backend::BatchGraph] {
        let mut rng = SimRng::new(9);
        let r = RunSpec::new(&config)
            .backend(backend)
            .topology(family)
            .topo_seed(3)
            .run(&mut rng);
        assert!(r.stabilized(), "{backend} did not detect the freeze");
        outcomes.push((backend, r.outcome));
    }
    for (backend, outcome) in &outcomes {
        assert_eq!(
            *outcome,
            ConsensusOutcome::Frozen,
            "{backend} classified the disconnected freeze as {outcome:?}"
        );
    }
}
