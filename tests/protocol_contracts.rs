//! Protocol-level contracts that every consensus protocol in the
//! workspace must satisfy, checked through the shared substrate.

use plurality_consensus::prelude::*;
use pop_proto::{CountConfig, CountSimulator, Protocol};
use usd_baselines::{FourStateMajority, VoterDynamics};

/// Every protocol: the transition function is total and stays in range.
fn check_transition_closure<P: Protocol>(proto: &P) {
    let m = proto.num_states();
    for a in 0..m {
        for b in 0..m {
            let (x, y) = proto.transition_indices(a, b);
            assert!(x < m && y < m, "transition left the state space");
        }
    }
}

#[test]
fn transition_closure_for_all_protocols() {
    check_transition_closure(&UndecidedStateDynamics::new(7));
    check_transition_closure(&FourStateMajority);
    check_transition_closure(&VoterDynamics::new(5));
    check_transition_closure(&pop_proto::OneWayEpidemic);
}

/// Every protocol: population is conserved through the generic simulator.
fn check_conservation<P: Protocol + Clone>(proto: P, counts: Vec<u64>, seed: u64) {
    let n: u64 = counts.iter().sum();
    let mut sim = CountSimulator::new(proto, &CountConfig::from_counts(counts));
    let mut rng = SimRng::new(seed);
    for _ in 0..20_000 {
        sim.step(&mut rng);
        assert_eq!(sim.counts().iter().sum::<u64>(), n);
    }
}

#[test]
fn conservation_for_all_protocols() {
    check_conservation(UndecidedStateDynamics::new(3), vec![40, 30, 30, 0], 1);
    check_conservation(FourStateMajority, vec![30, 30, 20, 20], 2);
    check_conservation(VoterDynamics::new(4), vec![25, 25, 25, 25], 3);
}

/// USD-specific contract: the number of *decided* agents never increases
/// by more than 1 per interaction, and u changes by −1, 0, or +2.
#[test]
fn usd_step_deltas_are_the_papers() {
    let config = UsdConfig::decided(vec![40, 35, 25]);
    let mut sim = SequentialUsd::new(&config);
    let mut rng = SimRng::new(4);
    let mut last_u = sim.undecided() as i64;
    for _ in 0..20_000 {
        sim.step(&mut rng);
        let u = sim.undecided() as i64;
        let du = u - last_u;
        assert!(
            du == 0 || du == -1 || du == 2,
            "u changed by {du}, paper allows -1/0/+2"
        );
        last_u = u;
    }
}

/// Silence is absorbing for every protocol under the generic simulator.
#[test]
fn silent_configurations_are_absorbing() {
    // USD consensus.
    let proto = UndecidedStateDynamics::new(3);
    let mut sim = CountSimulator::new(proto, &CountConfig::from_counts(vec![0, 10, 0, 0]));
    let mut rng = SimRng::new(5);
    for _ in 0..1_000 {
        assert!(!sim.step(&mut rng), "silent configuration changed");
    }
    // Four-state all-weak (post-tie).
    let mut sim = CountSimulator::new(
        FourStateMajority,
        &CountConfig::from_counts(vec![0, 0, 6, 4]),
    );
    for _ in 0..1_000 {
        assert!(!sim.step(&mut rng));
    }
}

/// The four-state protocol's invariant (#StrongA − #StrongB) is conserved
/// along arbitrary trajectories — its exactness mechanism.
#[test]
fn four_state_conserves_signed_token_sum() {
    let init = CountConfig::from_counts(vec![26, 25, 0, 0]);
    let invariant = FourStateMajority::signed_sum(init.counts());
    let mut sim = CountSimulator::new(FourStateMajority, &init);
    let mut rng = SimRng::new(6);
    for _ in 0..50_000 {
        sim.step(&mut rng);
        assert_eq!(FourStateMajority::signed_sum(sim.counts()), invariant);
    }
}

/// Approximate-vs-exact contrast: at margin 1, USD's winner is a coin
/// flip while the four-state protocol is always right.
#[test]
fn exactness_contrast_at_margin_one() {
    let n = 101u64;
    let reps = 60;

    let mut four_correct = 0;
    let mut usd_correct = 0;
    for seed in 0..reps {
        // Four-state, 51 vs 50.
        let init = CountConfig::from_counts(vec![51, 50, 0, 0]);
        let mut sim = CountSimulator::new(FourStateMajority, &init);
        let mut rng = SimRng::new(seed);
        sim.run(&mut rng, 100_000_000, |s| s.is_silent());
        let (a, b) = FourStateMajority::sides(sim.counts());
        if a == n && b == 0 {
            four_correct += 1;
        }

        // USD, 51 vs 50.
        let mut usd = SequentialUsd::new(&UsdConfig::decided(vec![51, 50]));
        let mut rng = SimRng::new(seed + 10_000);
        let result = stabilize(&mut usd, &mut rng, 100_000_000);
        if matches!(result.outcome, ConsensusOutcome::Winner(0)) {
            usd_correct += 1;
        }
    }
    assert_eq!(four_correct, reps, "four-state must never lose a majority");
    // USD at margin 1 is essentially a fair race; anything in (20%, 80%)
    // confirms the qualitative difference without flakiness.
    assert!(
        usd_correct > reps / 5 && usd_correct < reps * 4 / 5,
        "USD at margin 1 won {usd_correct}/{reps}; expected near-chance"
    );
}
