//! Telemetry ≡ observation ≡ engine-counter identities.
//!
//! The telemetry subsystem (`pop_proto::telemetry`) double-books what the
//! engines already count, so these tests pin the identities that make a
//! run report trustworthy:
//!
//! * **clock identity** (exact, all seven backends): `telemetry.scheduled`
//!   equals the engine's `interactions()` equals the observer's cumulative
//!   scheduled counter, and likewise for `effective` — after a full run
//!   and at every observation boundary;
//! * **decomposition** (per engine family): the leaping engines' event
//!   provenance counters (`block_applied`, `fallback_literal`, sparse
//!   events) decompose `effective` without loss or double-count;
//! * **monotonicity and harvest correctness** (property): interleaving
//!   `advance` and `advance_observed` in arbitrary chunk sizes never makes
//!   any counter decrease, and the phase-exit harvests (the sparse
//!   skipper's stats are absorbed on exit) never drop or double-count —
//!   the clock identity holds at every interleaving point, not just at
//!   the end.

use plurality_consensus::pop_proto::telemetry::EngineTelemetry;
use plurality_consensus::pop_proto::{Observation, TopologyFamily};
use plurality_consensus::sim_stats::rng::SimRng;
use plurality_consensus::usd_core::backend::{make_simulator, Backend};
use plurality_consensus::usd_core::init::InitialConfigBuilder;

/// Run `backend` to silence observing the whole trajectory; return the
/// telemetry capture plus the observer's final cumulative counters.
fn observed_telemetry(
    backend: Backend,
    n: u64,
    k: usize,
    seed: u64,
) -> (EngineTelemetry, u64, u64) {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut sim = make_simulator(backend, &config);
    let mut rng = SimRng::new(seed);
    let mut obs_interactions = 0u64;
    let mut obs_effective = 0u64;
    sim.advance_observed(&mut rng, u64::MAX / 2, &mut |obs: &Observation<'_>| {
        obs_interactions = obs.interactions;
        obs_effective = obs.effective;
        true
    });
    assert!(sim.is_silent(), "{backend}: run did not stabilize");
    let telemetry = *sim.telemetry();
    assert_eq!(
        telemetry.scheduled,
        sim.interactions(),
        "{backend}: telemetry scheduled != engine interaction clock"
    );
    assert_eq!(
        telemetry.effective,
        sim.effective_interactions(),
        "{backend}: telemetry effective != engine effective counter"
    );
    (telemetry, obs_interactions, obs_effective)
}

#[test]
fn telemetry_clocks_match_observer_and_engine_on_every_backend() {
    for backend in Backend::ALL {
        let (telemetry, obs_interactions, obs_effective) = observed_telemetry(backend, 600, 3, 42);
        assert_eq!(
            telemetry.scheduled, obs_interactions,
            "{backend}: telemetry scheduled != observer cumulative"
        );
        assert_eq!(
            telemetry.effective, obs_effective,
            "{backend}: telemetry effective != observer cumulative"
        );
        assert!(telemetry.scheduled > 0, "{backend}: dead telemetry");
        assert!(telemetry.effective > 0, "{backend}: no effective events");
        let frac = telemetry.effective_fraction();
        assert!(
            frac > 0.0 && frac <= 1.0,
            "{backend}: effective fraction {frac}"
        );
    }
}

#[test]
fn leaping_engines_decompose_effective_by_provenance() {
    // The batch-graph engine accounts every effective event to exactly one
    // source: a block-applied matching draw, a literal dirty-fallback
    // step, or a sparse-phase event.
    let (t, _, _) = observed_telemetry(Backend::BatchGraph, 600, 3, 11);
    assert_eq!(
        t.block_applied + t.fallback_literal + t.sparse.events,
        t.effective,
        "batchgraph: provenance counters do not decompose effective: {t:?}"
    );
    // The clique batch engine's block/fallback counters bound effective
    // from below (its geometric skip phase steps some events outside the
    // block machinery).
    let (t, _, _) = observed_telemetry(Backend::Batch, 600, 3, 11);
    assert!(t.blocks > 0, "batch: no blocks on a dense clique run");
    assert!(
        t.block_applied + t.fallback_literal <= t.effective,
        "batch: block counters overshoot effective: {t:?}"
    );
    // The graph engine on a no-op-dominated configuration (cycle
    // frontier: two opinion domains, only the boundaries active) actually
    // enters the sparse phase and harvests its sidecar stats into the
    // telemetry — without breaking the clock identity.
    use plurality_consensus::pop_proto::{GraphSimulator, Simulator};
    use plurality_consensus::usd_core::protocol::UndecidedStateDynamics;
    let n = 2048usize;
    let graph = TopologyFamily::Cycle.build(n, 0);
    let mut states = vec![0usize; n];
    for s in states.iter_mut().skip(n / 2) {
        *s = 1;
    }
    let mut sim = GraphSimulator::new(UndecidedStateDynamics::new(2), &graph, states);
    let mut rng = SimRng::new(17);
    let (_, silent) = sim.run_to_silence(&mut rng, u64::MAX / 2);
    assert!(silent, "cycle frontier did not stabilize");
    let t = *sim.telemetry();
    assert!(t.sparse_enters > 0, "graph: frontier run never went sparse");
    assert!(
        t.sparse.events > 0,
        "graph: sparse phase reported no events"
    );
    assert!(
        t.sparse.events <= t.effective,
        "graph: sparse events exceed effective: {t:?}"
    );
    assert_eq!(t.scheduled, sim.interactions());
    assert_eq!(t.effective, sim.effective_interactions());
}

/// Every counter the telemetry struct carries, as a flat vector — for the
/// monotonicity property below. Order is irrelevant; completeness is what
/// matters (a counter that silently decreased would escape a spot check).
fn counter_vector(t: &EngineTelemetry) -> Vec<u64> {
    vec![
        t.scheduled,
        t.effective,
        t.dense_steps,
        t.blocks,
        t.block_draws,
        t.block_applied,
        t.fallback_literal,
        t.sparse_enters,
        t.sparse_exits,
        t.pair_draws,
        t.skip_draws,
        t.table_draws,
        t.sparse.events,
        t.sparse.skip_draws,
        t.sparse.event_draws,
        t.sparse.flushes,
        t.sparse.updates_deferred,
        t.sparse.updates_immediate,
        t.sparse.entries_applied,
        t.sparse.entries_cancelled,
        t.sparse.log_cache_hits,
        t.sparse.log_cache_misses,
        t.sparse.bypass_enters,
        t.sparse.bypass_exits,
    ]
}

#[test]
fn counters_are_monotone_across_advance_interleavings() {
    // Drive each backend with an arbitrary-looking but deterministic
    // interleaving of plain `advance` and `advance_observed` in varying
    // chunk sizes. At every boundary the full counter vector must be
    // monotone non-decreasing and the clock identity must hold — which is
    // exactly what fails if a phase-exit harvest drops or double-counts
    // the sparse sidecar's running stats.
    for backend in Backend::ALL {
        let config = InitialConfigBuilder::new(400, 3).figure1();
        let mut sim = make_simulator(backend, &config);
        let mut rng = SimRng::new(97);
        let mut prev = counter_vector(sim.telemetry());
        assert!(prev.iter().all(|&c| c == 0), "{backend}: non-zero at birth");
        let chunks = [3u64, 1, 257, 64, 1023, 12, 4096, 7, 65_536, 100_000];
        for (round, &chunk) in chunks.iter().cycle().take(40).enumerate() {
            let advanced = if round % 3 == 0 {
                let mut hits = 0u64;
                sim.advance_observed(&mut rng, chunk, &mut |_: &Observation<'_>| {
                    hits += 1;
                    true
                });
                hits
            } else {
                sim.advance(&mut rng, chunk)
            };
            let t = sim.telemetry();
            assert_eq!(
                t.scheduled,
                sim.interactions(),
                "{backend}: clock identity broken mid-run (round {round})"
            );
            assert_eq!(
                t.effective,
                sim.effective_interactions(),
                "{backend}: effective identity broken mid-run (round {round})"
            );
            let cur = counter_vector(t);
            for (i, (&was, &now)) in prev.iter().zip(cur.iter()).enumerate() {
                assert!(
                    now >= was,
                    "{backend}: counter #{i} decreased {was} -> {now} (round {round})"
                );
            }
            prev = cur;
            if advanced == 0 && sim.is_silent() {
                break;
            }
        }
        assert!(prev[0] > 0, "{backend}: interleaving drove nothing");
    }
}
