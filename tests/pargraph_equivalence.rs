//! The sharded multi-core graph engine ≡ the scalar graphwise engine,
//! through the public `RunSpec` stack.
//!
//! `pargraph` advances position-derived draw blocks across spatial domains
//! on the persistent worker pool and replays cross-domain conflicts in
//! schedule order. These tests pin the four claims that make it a drop-in
//! topology backend:
//!
//! * **thread-count bit-identity**: a `RunSpec` pargraph run produces the
//!   same trajectory — counts, clocks, classified outcome — for any
//!   `.threads(t)`, pinned at t ∈ {1, 2, 8};
//! * **law equivalence**: pargraph's USD stabilization-time distribution
//!   matches the scalar graphwise engine's by two-sample
//!   Kolmogorov–Smirnov at α = 0.01 on the complete graph, a random
//!   8-regular graph, the torus, and the cycle;
//! * **boundary-conflict replay**: on randomized multi-domain graphs whose
//!   domain cuts are actually crossed, the parallel application with
//!   deferral + schedule-order replay reproduces the inline (threads = 1)
//!   application exactly, with counts conserved at every boundary;
//! * **kill + resume byte-identity**: a pargraph run snapshotted at a
//!   chunk boundary and resumed into a *freshly built* engine — under a
//!   different thread count — ends in a byte-identical snapshot.

use plurality_consensus::pop_proto::checkpoint::{SnapshotReader, SnapshotWriter};
use plurality_consensus::pop_proto::{Graph, ParGraphSimulator, Simulator, TopologyFamily};
use plurality_consensus::usd_core::protocol::UndecidedStateDynamics;
use sim_stats::ks::{ks_critical_value, ks_statistic};
use sim_stats::rng::SimRng;
use usd_core::backend::Backend;
use usd_core::init::InitialConfigBuilder;
use usd_core::RunSpec;

/// Drive a budgeted pargraph run through the builder and return the full
/// observable surface: counts, both clocks, and the classified outcome.
fn budgeted_run(
    threads: usize,
    family: TopologyFamily,
    n: u64,
    seed: u64,
    budget: u64,
) -> (Vec<u64>, u64, u64, String) {
    let config = InitialConfigBuilder::new(n, 2).figure1();
    let mut rng = SimRng::new(seed);
    let (result, sim) = RunSpec::new(&config)
        .backend(Backend::ParGraph)
        .topology(family)
        .topo_seed(3)
        .threads(threads)
        .budget(budget)
        .run_keeping(&mut rng);
    let sim = sim.expect("sweep families always have edges");
    (
        sim.counts().to_vec(),
        sim.interactions(),
        sim.effective_interactions(),
        format!("{:?}", result.outcome),
    )
}

/// Bit-identity across thread counts, through the public stack: the
/// flag-facing `.threads(t)` knob must change wall-clock only, never the
/// trajectory. The torus instance spans multiple spatial domains, so the
/// parallel interior phases and the boundary replay are genuinely
/// exercised at t > 1.
#[test]
fn pargraph_runspec_trajectories_bit_identical_for_threads_1_2_8() {
    for (family, n) in [
        (
            TopologyFamily::Torus,
            TopologyFamily::Torus.snap_n(9216) as u64,
        ),
        (TopologyFamily::Cycle, 9000u64),
    ] {
        let reference = budgeted_run(1, family, n, 99, 3_000_000);
        for threads in [2usize, 8] {
            let run = budgeted_run(threads, family, n, 99, 3_000_000);
            assert_eq!(
                run, reference,
                "{family}: threads={threads} diverged from threads=1"
            );
        }
    }
}

/// Stabilization-time samples (interactions) for one backend on one
/// topology; per-rep graphs and layouts, as in `topology_equivalence`.
fn samples(
    backend: Backend,
    family: TopologyFamily,
    n: u64,
    k: usize,
    reps: u64,
    seed_base: u64,
) -> Vec<f64> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    (0..reps)
        .map(|rep| {
            let mut rng = SimRng::new(seed_base + rep);
            let result = RunSpec::new(&config)
                .backend(backend)
                .topology(family)
                .topo_seed(0xBEEF ^ rep)
                .run(&mut rng);
            assert!(
                result.stabilized(),
                "{backend} rep {rep} did not stabilize on {family}"
            );
            result.interactions as f64
        })
        .collect()
}

fn assert_ks_equivalent(family: TopologyFamily, n: u64, k: usize, reps: u64) {
    let a = samples(Backend::Graph, family, n, k, reps, 40_000);
    let b = samples(Backend::ParGraph, family, n, k, reps, 80_000);
    let d = ks_statistic(&a, &b);
    let crit = ks_critical_value(a.len(), b.len(), 0.01);
    assert!(
        d < crit,
        "{family}: pargraph vs graph stabilization-time KS {d:.4} >= critical {crit:.4}"
    );
}

/// KS equivalence on the complete graph (the degenerate clique instance).
#[test]
fn pargraph_vs_graphwise_complete_graph_ks() {
    assert_ks_equivalent(TopologyFamily::Complete, 400, 3, 150);
}

/// KS equivalence on a random 8-regular graph — the expander case, where
/// nearly every block draw crosses a domain cut and the engine lives in
/// its schedule-order replay path.
#[test]
fn pargraph_vs_graphwise_regular8_ks() {
    assert_ks_equivalent(TopologyFamily::Regular { d: 8 }, 400, 2, 150);
}

/// KS equivalence on the torus — the decomposition-friendly family the
/// engine targets, crossing the dense ↔ sparse hand-off repeatedly.
#[test]
fn pargraph_vs_graphwise_torus_ks() {
    assert_ks_equivalent(TopologyFamily::Torus, 441, 2, 150);
}

/// KS equivalence on the cycle — the no-op-dominated family whose runs
/// live almost entirely in the shared sparse skipper.
#[test]
fn pargraph_vs_graphwise_cycle_ks() {
    assert_ks_equivalent(TopologyFamily::Cycle, 96, 2, 150);
}

/// Boundary-conflict replay property: over randomized sparse graphs large
/// enough for several spatial domains, the parallel application (t = 8,
/// concurrent interior phases + deferral) is bit-identical to the inline
/// one (t = 1) at every advancement boundary, population is conserved
/// throughout, and the engine's sparse-phase invariants hold. The
/// boundary-edge assertion guards the property against silently testing a
/// single-domain instance.
#[test]
fn boundary_conflict_replay_matches_inline_application() {
    let n = 9000usize;
    for graph_seed in [5u64, 17, 23] {
        let mut gr = SimRng::new(graph_seed);
        let graph = Graph::erdos_renyi(n, 4.0 / (n - 1) as f64, &mut gr);
        let config = InitialConfigBuilder::new(n as u64, 2)
            .figure1()
            .to_count_config();
        let build = |threads: usize| {
            let mut layout_rng = SimRng::new(graph_seed ^ 0xA5);
            ParGraphSimulator::from_config_shuffled(
                UndecidedStateDynamics::new(2),
                &graph,
                &config,
                &mut layout_rng,
                threads,
            )
        };
        let mut inline = build(1);
        let mut parallel = build(8);
        assert!(
            parallel.boundary_edges() > 0,
            "graph seed {graph_seed}: no domain cuts crossed — property not exercised"
        );
        let mut rng_a = SimRng::new(graph_seed + 1);
        let mut rng_b = SimRng::new(graph_seed + 1);
        for step in 0..40 {
            inline.advance_changed(&mut rng_a, 50_000);
            parallel.advance_changed(&mut rng_b, 50_000);
            assert_eq!(
                parallel.counts(),
                inline.counts(),
                "graph seed {graph_seed}, step {step}: replayed trajectory diverged"
            );
            assert_eq!(parallel.interactions(), inline.interactions());
            assert_eq!(
                parallel.effective_interactions(),
                inline.effective_interactions()
            );
            assert_eq!(
                parallel.counts().iter().sum::<u64>(),
                n as u64,
                "population not conserved at step {step}"
            );
            parallel
                .validate_sparse_invariants()
                .expect("sparse invariants violated");
            if parallel.is_silent() {
                break;
            }
        }
    }
}

/// Snapshot an engine's full state as bytes.
fn snapshot_bytes(sim: &dyn Simulator) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    sim.snapshot_state(&mut w).expect("snapshot_state failed");
    w.into_bytes()
}

/// Kill + resume byte-identity through the builder: advance a pargraph
/// run in fixed chunks (the checkpointed-drive discipline — boundaries
/// are a pure function of the interaction clock), kill it at a boundary,
/// rebuild a fresh engine from the same spec under a *different* thread
/// count, restore, and finish. The final snapshots must match byte for
/// byte: the snapshot format is thread-invariant, so a checkpoint taken
/// at `--threads 2` resumes under `--threads 8`.
#[test]
fn pargraph_checkpoint_kill_resume_is_byte_identical() {
    let n = TopologyFamily::Torus.snap_n(9216) as u64;
    let config = InitialConfigBuilder::new(n, 2).figure1();
    let chunk = 400_000u64;
    let chunks_before_kill = 3usize;
    let chunks_total = 7usize;
    let spec = |threads: usize| {
        RunSpec::new(&config)
            .backend(Backend::ParGraph)
            .topology(TopologyFamily::Torus)
            .topo_seed(11)
            .threads(threads)
    };

    // Uninterrupted reference at threads = 2.
    let mut rng = SimRng::new(2024);
    let mut sim = spec(2).build_simulator(&mut rng);
    for _ in 0..chunks_total {
        sim.run_to_silence(&mut rng, chunk);
    }
    let reference = snapshot_bytes(sim.as_ref());

    // Interrupted twin: same construction stream, killed mid-run.
    let mut rng = SimRng::new(2024);
    let mut sim = spec(2).build_simulator(&mut rng);
    for _ in 0..chunks_before_kill {
        sim.run_to_silence(&mut rng, chunk);
    }
    let mid = snapshot_bytes(sim.as_ref());
    let saved_rng = rng.state();
    drop(sim);

    // Resume: fresh engine from the same spec at threads = 8, restored
    // from the mid-run snapshot (the constructor's RNG draws are
    // discarded exactly as the CLI's --resume path discards them).
    let mut construction_rng = SimRng::new(2024);
    let mut resumed = spec(8).build_simulator(&mut construction_rng);
    resumed
        .restore_state(&mut SnapshotReader::new(&mid))
        .expect("restore_state failed");
    let mut rng = SimRng::from_state(saved_rng).expect("non-degenerate RNG state");
    for _ in 0..(chunks_total - chunks_before_kill) {
        resumed.run_to_silence(&mut rng, chunk);
    }
    assert_eq!(
        snapshot_bytes(resumed.as_ref()),
        reference,
        "resumed run diverged from the uninterrupted reference"
    );
}
