//! Flight-recorder ≡ telemetry ≡ observer identities.
//!
//! The timeline recorder (`pop_proto::telemetry::timeline`) is a third
//! view of the same clocks the engines and the observation layer already
//! keep, so these tests pin the identities that make a recorded timeline
//! trustworthy on **every backend**:
//!
//! * **delta completeness**: the windowed deltas of every sample sum to
//!   the engine's final cumulative telemetry — no window is dropped,
//!   truncated, or double-counted, including the partial window that
//!   `finish` flushes;
//! * **clock agreement**: each sample's cumulative `scheduled`/`effective`
//!   equal the running delta sums up to that sample, and the last sample
//!   agrees with the engine clock and the observer's cumulative counters;
//! * **cadence determinism**: every non-final sample lands exactly on a
//!   cadence mark of the *scheduled* clock (never wall time), which is
//!   what makes a timeline bit-reproducible — pinned below by running
//!   the same seed twice and comparing the rendered JSONL byte for byte.

use plurality_consensus::pop_proto::{Observation, TimelineRecorder};
use plurality_consensus::sim_stats::rng::SimRng;
use plurality_consensus::usd_core::backend::{make_simulator, Backend};
use plurality_consensus::usd_core::init::InitialConfigBuilder;

/// Run `backend` to silence under a recorder at `cadence`, observing the
/// whole trajectory; return the recorder plus the observer's final
/// cumulative (scheduled, effective) counters.
fn recorded_run(
    backend: Backend,
    n: u64,
    k: usize,
    seed: u64,
    cadence: u64,
) -> (TimelineRecorder, u64, u64) {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut sim = make_simulator(backend, &config);
    let mut rng = SimRng::new(seed);
    let mut rec = TimelineRecorder::new(cadence);
    let mut obs_interactions = 0u64;
    let mut obs_effective = 0u64;
    while !sim.is_silent() {
        // The recorder's horizon caps each chunk so no advance overshoots
        // a cadence mark — the same contract the CLI drivers follow.
        let horizon = rec.horizon(sim.interactions());
        sim.advance_observed(&mut rng, horizon, &mut |obs: &Observation<'_>| {
            obs_interactions = obs.interactions;
            obs_effective = obs.effective;
            true
        });
        rec.record_if_due(sim.as_ref());
    }
    rec.finish(sim.as_ref());
    let t = sim.telemetry();
    assert_eq!(
        (t.scheduled, t.effective),
        (sim.interactions(), sim.effective_interactions()),
        "{backend}: telemetry clock identity broken"
    );
    assert_eq!(
        rec.last_sampled(),
        t,
        "{backend}: finish left telemetry unsampled"
    );
    (rec, obs_interactions, obs_effective)
}

#[test]
fn timeline_deltas_sum_to_cumulative_clocks_on_every_backend() {
    for backend in Backend::ALL {
        let (rec, obs_interactions, obs_effective) = recorded_run(backend, 600, 3, 42, 1_000);
        let samples = rec.samples();
        assert!(
            samples.len() > 1,
            "{backend}: cadence 1000 run produced {} sample(s)",
            samples.len()
        );
        // Delta completeness and per-sample clock agreement: cumulative
        // clocks are exactly the running sums of the windowed deltas.
        let (mut sum_scheduled, mut sum_effective) = (0u64, 0u64);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.index, i as u64, "{backend}: sample index");
            sum_scheduled += s.delta.scheduled;
            sum_effective += s.delta.effective;
            assert_eq!(
                (s.scheduled, s.effective),
                (sum_scheduled, sum_effective),
                "{backend}: sample {i} cumulative clocks != running delta sums"
            );
            assert!(
                s.phase == "dense" || s.phase == "sparse",
                "{backend}: sample {i} phase {:?}",
                s.phase
            );
        }
        // The final cumulative clocks agree with the engine (checked in
        // the helper) and with the observation layer.
        let last = samples.last().unwrap();
        assert_eq!(
            (last.scheduled, last.effective),
            (obs_interactions, obs_effective),
            "{backend}: timeline and observer disagree on the final clocks"
        );
        // The full counter delta also sums: spot-check the phase and
        // provenance counters against the recorder's cumulative capture.
        let t = rec.last_sampled();
        for (name, total, summed) in [
            (
                "dense_steps",
                t.dense_steps,
                samples.iter().map(|s| s.delta.dense_steps).sum::<u64>(),
            ),
            (
                "sparse.events",
                t.sparse.events,
                samples.iter().map(|s| s.delta.sparse.events).sum::<u64>(),
            ),
            (
                "block_applied",
                t.block_applied,
                samples.iter().map(|s| s.delta.block_applied).sum::<u64>(),
            ),
            (
                "fallback_literal",
                t.fallback_literal,
                samples
                    .iter()
                    .map(|s| s.delta.fallback_literal)
                    .sum::<u64>(),
            ),
        ] {
            assert_eq!(summed, total, "{backend}: {name} deltas do not sum");
        }
    }
}

#[test]
fn samples_land_exactly_on_scheduled_cadence_marks() {
    for backend in Backend::ALL {
        let cadence = 1_000u64;
        let (rec, _, _) = recorded_run(backend, 600, 3, 7, cadence);
        let samples = rec.samples();
        // The replica engine advances the aggregate scheduled clock by
        // popcount(live) ≤ 64 per shared draw, so a horizon-bounded chunk
        // stops at most 63 past its mark; every other backend truncates
        // exactly on the grid.
        let slack = if backend == Backend::Replica { 63 } else { 0 };
        for s in &samples[..samples.len() - 1] {
            assert!(
                s.scheduled % cadence <= slack,
                "{backend}: non-final sample off the cadence grid at {}",
                s.scheduled
            );
        }
        // Consecutive marks are distinct and increasing (horizon-bounded
        // driving can never skip past a mark without sampling it).
        for w in samples.windows(2) {
            assert!(
                w[1].scheduled > w[0].scheduled,
                "{backend}: non-increasing sample clocks"
            );
            if slack == 0 && w[1].scheduled % cadence == 0 {
                assert_eq!(
                    w[1].scheduled - w[0].scheduled,
                    cadence,
                    "{backend}: a cadence mark was skipped between samples"
                );
            }
        }
        if slack > 0 {
            // Overshoot never skips a whole mark: consecutive non-final
            // samples stay one cadence window apart (± the overshoot).
            for w in samples[..samples.len() - 1].windows(2) {
                let diff = w[1].scheduled - w[0].scheduled;
                assert!(
                    diff >= cadence - slack && diff <= cadence + slack,
                    "{backend}: consecutive samples {} and {} not one mark apart",
                    w[0].scheduled,
                    w[1].scheduled
                );
            }
        }
    }
}

#[test]
fn timelines_are_bit_reproducible_under_a_fixed_seed() {
    // The recorder samples on the scheduled clock, so two identical runs
    // must render byte-identical JSONL — the property the `usd-sim run
    // --timeline` surface documents. One dense-dominated clique backend
    // and the two leaping engines cover the distinct driver paths.
    for backend in [Backend::Agent, Backend::Batch, Backend::SkipAhead] {
        let (a, _, _) = recorded_run(backend, 500, 3, 1234, 2_048);
        let (b, _, _) = recorded_run(backend, 500, 3, 1234, 2_048);
        assert_eq!(
            a.to_jsonl(),
            b.to_jsonl(),
            "{backend}: same seed, different timeline"
        );
        // And a different seed genuinely changes the recording (guards
        // against the comparison passing vacuously on empty output).
        let (c, _, _) = recorded_run(backend, 500, 3, 4321, 2_048);
        assert_ne!(
            a.to_jsonl(),
            c.to_jsonl(),
            "{backend}: seed does not reach the timeline"
        );
        assert!(!a.to_jsonl().is_empty(), "{backend}: empty timeline");
    }
}
