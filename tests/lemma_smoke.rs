//! Small-n smoke runs of the lemma-verification experiments: every bound
//! the paper proves must hold on these concrete instances.

use plurality_consensus::usd_core::backend::Backend;
use plurality_consensus::usd_experiments::lemmas;

#[test]
fn lemma31_bound_holds_at_small_n() {
    for &k in &[4usize, 8] {
        let cell = lemmas::lemma31_cell(Backend::SkipAhead, 5_000, k, 3, 17);
        assert!(
            cell.within_bound,
            "Lemma 3.1 ceiling violated at k={k}: {cell:?}"
        );
        // The plateau must be a meaningful fraction of n/2.
        assert!(cell.plateau > 1_000.0);
        assert!(cell.max_u_worst >= cell.plateau * 0.8);
    }
}

#[test]
fn lemma33_bound_holds_at_small_n() {
    let cell = lemmas::lemma33_cell(Backend::SkipAhead, 5_000, 5, 4, 18);
    assert!(cell.crossings > 0, "winner never crossed the levels");
    assert!(
        cell.min_tau_over_kn >= 1.0 / 25.0,
        "Lemma 3.3 violated: min tau/kn = {}",
        cell.min_tau_over_kn
    );
}

#[test]
fn lemma34_bound_holds_at_small_n() {
    let cell = lemmas::lemma34_cell(Backend::SkipAhead, 5_000, 5, 4, 19);
    if cell.min_doubling_kn.is_finite() {
        assert!(
            cell.min_doubling_kn >= 1.0 / 24.0,
            "Lemma 3.4 violated: min doubling/kn = {}",
            cell.min_doubling_kn
        );
    }
}

#[test]
fn lemma_bounds_hold_through_the_leaping_backends() {
    // The observation layer's promise: the same lemma probes run on the
    // block-leaping engines, where observations are block checkpoints
    // rather than per-event — the paper's kn-scale bounds must still hold.
    for backend in [Backend::Batch, Backend::BatchGraph] {
        let cell = lemmas::lemma31_cell(backend, 2_000, 4, 2, 21);
        assert!(cell.within_bound, "{backend}: {cell:?}");
        // Crossing instants resolve to the ~√n block boundary on these
        // engines, so allow the bound a one-block slack.
        let c33 = lemmas::lemma33_cell(backend, 2_000, 4, 2, 22);
        let slack = (2_000f64).sqrt() / (4.0 * 2_000.0);
        assert!(
            c33.crossings == 0 || c33.min_tau_over_kn >= 1.0 / 25.0 - slack,
            "{backend}: Lemma 3.3 violated: {}",
            c33.min_tau_over_kn
        );
    }
}

#[test]
fn oliveto_witt_instantiation_is_valid_for_paper_sizes() {
    use plurality_consensus::drift_analysis::NegativeDriftParams;
    // The Lemma 3.1 proof's Theorem A.1 instantiation must satisfy the
    // theorem's arithmetic hypothesis at the paper's n = 10^6 (and at the
    // reduced sizes our experiments use).
    for &n in &[100_000u64, 1_000_000] {
        let report = NegativeDriftParams::lemma31(n).report();
        assert!(report.condition_holds, "n={n}: {report:?}");
        assert!(report.horizon > (n as f64).powi(4), "horizon too small");
    }
}

#[test]
fn lemma32_constants_satisfy_the_lemma_hypothesis_in_regime() {
    use plurality_consensus::drift_analysis::bernstein::lemma32_condition_holds;
    // Lemma 3.3 applies Lemma 3.2 with p = 5/k, q = 6.25/k², T = n/(2k)
    // and requires T ≥ 32(p−q²)/(2q) + 2/3)·ln n — which the paper shows
    // holds when k = o(√n/log n). Verify at the paper's parameters.
    let n = 1_000_000f64;
    for &k in &[16f64, 27.0, 50.0] {
        let p = 5.0 / k;
        let q = 6.25 / (k * k);
        let t = n / (2.0 * k);
        assert!(
            lemma32_condition_holds(t, p, q, n),
            "hypothesis fails at k={k}"
        );
    }
}
