//! Checkpoint bit-identity: run-to-T equals run-to-T/2 + snapshot +
//! restore + run-to-T, byte-for-byte, on every backend — final engine
//! snapshot (state, clocks, telemetry, histograms), counts, and the
//! `--timeline` flight-recorder JSONL. The split run round-trips through
//! the sealed [`RunCheckpoint`] container bytes, exactly what the CLI
//! persists to disk, and rebuilds a *fresh* simulator before restoring —
//! the same path an interrupted process takes on `--resume`.

use pop_proto::checkpoint::{SnapshotReader, SnapshotWriter};
use pop_proto::topology::TopologyFamily;
use pop_proto::{Simulator, TimelineRecorder};
use sim_stats::rng::SimRng;
use usd_core::backend::{make_simulator, make_topology_simulator, Backend};
use usd_core::config::UsdConfig;
use usd_core::RunCheckpoint;

fn snapshot_bytes(sim: &dyn Simulator) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    sim.snapshot_state(&mut w).expect("snapshot_state failed");
    w.into_bytes()
}

/// Drive `sim` to the absolute interaction clock `target` in fixed chunks,
/// sampling the flight recorder at its cadence — the same loop shape as
/// the CLI drivers. Chunk boundaries are a pure function of the absolute
/// clock, which is what makes a resumed trajectory align with the
/// uninterrupted one.
fn drive(
    sim: &mut dyn Simulator,
    rng: &mut SimRng,
    rec: &mut TimelineRecorder,
    target: u64,
    chunk: u64,
) {
    while sim.interactions() < target && !sim.is_silent() {
        let done = sim.interactions();
        let step = chunk.min(target - done).min(rec.horizon(done)).max(1);
        if sim.run_until(rng, step, &mut |_| false) == 0 {
            break;
        }
        rec.record_if_due(sim);
    }
}

/// Everything a run observably produces; two runs are equivalent iff all
/// fields are equal (the snapshot bytes cover engine state, telemetry
/// counters, and histogram buckets; the JSONL is the `--timeline` output).
#[derive(PartialEq, Eq)]
struct RunOutput {
    snapshot: Vec<u8>,
    counts: Vec<u64>,
    interactions: u64,
    effective: u64,
    jsonl: String,
}

/// One run at `seed`: dead-heat USD (k = 2, no bias) so stabilization sits
/// far beyond the driving budget and the mid-run snapshot lands on a live
/// trajectory. `split_at = Some(mid)` interrupts at the `mid` chunk
/// boundary, packages a [`RunCheckpoint`], round-trips its sealed bytes,
/// rebuilds a fresh simulator from the "flags", restores, and continues.
fn run(
    backend: Backend,
    family: Option<TopologyFamily>,
    seed: u64,
    split_at: Option<u64>,
) -> RunOutput {
    // Dead heat at the complete-graph cap: USD resolves even unbiased
    // ties in Θ(n log n) interactions (~10⁵ here), so a 5·10⁴ driving
    // budget keeps the whole window — and the mid-run snapshot — on a
    // live trajectory for every backend.
    let n = 10_000u64;
    let config = UsdConfig::decided(vec![n / 2, n / 2]);
    let chunk = 4 * 1024u64;
    let total = chunk * 12;
    let make = |rng: &mut SimRng| -> Box<dyn Simulator> {
        match family {
            Some(f) => make_topology_simulator(backend, &config, f, seed ^ 0xA5A5, rng),
            None => make_simulator(backend, &config),
        }
    };
    let mut rng = SimRng::new(seed);
    let mut sim = make(&mut rng);
    sim.set_histograms(true);
    let mut rec = TimelineRecorder::with_default_cadence(n);

    if let Some(mid) = split_at {
        drive(sim.as_mut(), &mut rng, &mut rec, mid, chunk);
        assert!(
            !sim.is_silent(),
            "{}: trajectory went silent before the split — test lost its teeth",
            backend.name()
        );
        let ckpt = RunCheckpoint {
            backend: backend.name().to_string(),
            n,
            k: 2,
            seed,
            topology: family.map(|f| f.name()).unwrap_or_default(),
            rng: rng.state(),
            recorder: Some(rec.clone()),
            engine: snapshot_bytes(sim.as_ref()),
        };
        let back = RunCheckpoint::from_bytes(&ckpt.to_bytes()).expect("sealed bytes round-trip");
        back.check_identity(backend.name(), n, 2, seed, &ckpt.topology)
            .expect("identity echo");
        // A fresh process: rebuild exactly as the original did (same RNG
        // draws in the constructor), then restore and reposition.
        let mut rng2 = SimRng::new(seed);
        let mut sim2 = make(&mut rng2);
        sim2.set_histograms(true);
        sim2.restore_state(&mut SnapshotReader::new(&back.engine))
            .expect("restore_state failed");
        rng = SimRng::from_state(back.rng).expect("non-degenerate RNG state");
        rec = back.recorder.expect("checkpoint carries the recorder");
        sim = sim2;
    }

    drive(sim.as_mut(), &mut rng, &mut rec, total, chunk);
    rec.finish(sim.as_ref());
    RunOutput {
        snapshot: snapshot_bytes(sim.as_ref()),
        counts: sim.counts().to_vec(),
        interactions: sim.interactions(),
        effective: sim.effective_interactions(),
        jsonl: rec.to_jsonl(),
    }
}

fn assert_equivalent(backend: Backend, family: Option<TopologyFamily>, seed: u64) {
    let reference = run(backend, family, seed, None);
    let resumed = run(backend, family, seed, Some(6 * 4 * 1024));
    let label = family.map_or_else(
        || backend.name().to_string(),
        |f| format!("{} on {}", backend.name(), f.name()),
    );
    assert_eq!(
        reference.interactions, resumed.interactions,
        "{label}: interaction clocks diverged"
    );
    assert_eq!(
        reference.effective, resumed.effective,
        "{label}: effective clocks diverged"
    );
    assert_eq!(reference.counts, resumed.counts, "{label}: counts diverged");
    assert_eq!(
        reference.jsonl, resumed.jsonl,
        "{label}: timeline JSONL diverged"
    );
    assert!(
        reference.snapshot == resumed.snapshot,
        "{label}: final engine snapshots are not byte-identical"
    );
    assert!(
        !reference.jsonl.is_empty(),
        "{label}: timeline never sampled — cadence misconfigured"
    );
}

#[test]
fn clique_resume_is_bit_identical_on_all_seven_backends() {
    for backend in Backend::ALL {
        assert_equivalent(backend, None, 0xC0FFEE ^ backend as u64);
    }
}

#[test]
fn topology_resume_is_bit_identical_on_the_graph_backends() {
    for backend in [Backend::Agent, Backend::Graph, Backend::BatchGraph] {
        for family in [TopologyFamily::Cycle, TopologyFamily::Regular { d: 8 }] {
            assert_equivalent(backend, Some(family), 0xBEEF ^ backend as u64);
        }
    }
}

#[test]
fn restored_state_continues_from_the_exact_interaction_clock() {
    // Sanity on the weakest observable: restoring alone (no further
    // driving) reproduces the snapshot point exactly.
    let config = UsdConfig::decided(vec![300, 212]);
    for backend in Backend::ALL {
        let mut sim = make_simulator(backend, &config);
        let mut rng = SimRng::new(7);
        sim.run_until(&mut rng, 2_000, &mut |_| false);
        let bytes = snapshot_bytes(sim.as_ref());
        let mut fresh = make_simulator(backend, &config);
        fresh
            .restore_state(&mut SnapshotReader::new(&bytes))
            .expect("restore");
        assert_eq!(fresh.interactions(), sim.interactions(), "{backend:?}");
        assert_eq!(fresh.counts(), sim.counts(), "{backend:?}");
        assert_eq!(snapshot_bytes(fresh.as_ref()), bytes, "{backend:?}");
    }
}
