//! The exact USD engines — agentwise (via the generic substrate),
//! countwise generic, batch-leaping generic, and the two specialized
//! engines — simulate the same Markov chain. These tests compare their
//! *distributions* (fixed seeds, generous tolerances; no flaky
//! assertions), including two-sample Kolmogorov–Smirnov equivalence of the
//! batch backend's stabilization-time law against the countwise reference.

use plurality_consensus::prelude::*;
use pop_proto::{
    AgentSimulator, BatchSimulator, CliqueScheduler, CountSimulator, OneWayEpidemic, Simulator,
};
use sim_stats::ks::{ks_critical_value, ks_statistic};

fn usd_silent_counts(counts: &[u64], k: usize) -> bool {
    let n: u64 = counts.iter().sum();
    counts[k] == n || (counts[k] == 0 && counts[..k].iter().filter(|&&c| c > 0).count() <= 1)
}

/// Mean stabilization interactions for each engine on the same instance.
fn engine_means(n: u64, k: usize, reps: u64) -> [f64; 4] {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut means = [0.0f64; 4];

    for seed in 0..reps {
        // Engine 0: per-agent simulation (the literal model).
        {
            let proto = UndecidedStateDynamics::new(k);
            let mut sim = AgentSimulator::from_config(
                proto,
                CliqueScheduler::new(n as usize),
                &config.to_count_config(),
            );
            let mut rng = SimRng::new(seed * 4);
            while !usd_silent_counts(sim.counts(), k) {
                sim.step(&mut rng);
            }
            means[0] += sim.interactions() as f64;
        }
        // Engine 1: generic count simulator.
        {
            let proto = UndecidedStateDynamics::new(k);
            let mut sim = CountSimulator::new(proto, &config.to_count_config());
            let mut rng = SimRng::new(seed * 4 + 1);
            sim.run(&mut rng, u64::MAX / 2, |s| usd_silent_counts(s.counts(), k));
            means[1] += sim.interactions() as f64;
        }
        // Engine 2: SequentialUsd.
        {
            let mut sim = SequentialUsd::new(&config);
            let mut rng = SimRng::new(seed * 4 + 2);
            let (t, stable) = run_until_stable(&mut sim, &mut rng, u64::MAX / 2, |_, _| {});
            assert!(stable);
            means[2] += t as f64;
        }
        // Engine 3: SkipAheadUsd.
        {
            let mut sim = SkipAheadUsd::new(&config);
            let mut rng = SimRng::new(seed * 4 + 3);
            let (t, stable) = run_until_stable(&mut sim, &mut rng, u64::MAX / 2, |_, _| {});
            assert!(stable);
            means[3] += t as f64;
        }
    }
    for m in &mut means {
        *m /= reps as f64;
    }
    means
}

#[test]
fn all_four_engines_agree_on_mean_stabilization_time() {
    let means = engine_means(400, 3, 120);
    let max = means.iter().cloned().fold(f64::MIN, f64::max);
    let min = means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.12,
        "engines diverge beyond tolerance: {means:?}"
    );
}

#[test]
fn engines_agree_on_winner_distribution() {
    // With a strong bias every engine must elect the plurality at
    // essentially the same (high) rate.
    let n = 500u64;
    let k = 3usize;
    let config = InitialConfigBuilder::new(n, k).figure1();
    let reps = 60u64;

    let mut wins = [0u64; 2];
    for seed in 0..reps {
        let mut seq = SequentialUsd::new(&config);
        let mut rng = SimRng::new(seed);
        let r = stabilize(&mut seq, &mut rng, u64::MAX / 2);
        if r.plurality_won() {
            wins[0] += 1;
        }
        let mut skip = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(seed + 1_000_000);
        let r = stabilize(&mut skip, &mut rng, u64::MAX / 2);
        if r.plurality_won() {
            wins[1] += 1;
        }
    }
    let rate0 = wins[0] as f64 / reps as f64;
    let rate1 = wins[1] as f64 / reps as f64;
    assert!(rate0 > 0.8, "sequential win rate {rate0}");
    assert!(rate1 > 0.8, "skip-ahead win rate {rate1}");
    assert!((rate0 - rate1).abs() < 0.15, "{rate0} vs {rate1}");
}

/// Stabilization-time samples (in interactions) for a generic-substrate
/// simulator on the USD instance `(n, k)` with the Figure-1 bias.
fn usd_stabilization_samples<S, F>(n: u64, k: usize, reps: u64, seed_base: u64, make: F) -> Vec<f64>
where
    S: Simulator,
    F: Fn(&pop_proto::CountConfig) -> S,
{
    let config = InitialConfigBuilder::new(n, k).figure1().to_count_config();
    (0..reps)
        .map(|seed| {
            let mut sim = make(&config);
            let mut rng = SimRng::new(seed_base + seed);
            let (t, stable) = sim.run_to_silence(&mut rng, u64::MAX / 2);
            assert!(stable, "run {seed} did not stabilize");
            t as f64
        })
        .collect()
}

/// KS-equivalence of the batch backend against the countwise reference on
/// the USD stabilization-time distribution, k = 2 and k = 3, n = 10⁴,
/// α = 0.01, 200 runs per backend — the batch simulator's headline
/// correctness criterion.
#[test]
fn batch_vs_count_usd_stabilization_ks() {
    let n = 10_000u64;
    let reps = 200u64;
    for k in [2usize, 3] {
        let count = usd_stabilization_samples(n, k, reps, 10_000, |cfg| {
            CountSimulator::new(UndecidedStateDynamics::new(k), cfg)
        });
        let batch = usd_stabilization_samples(n, k, reps, 20_000, |cfg| {
            BatchSimulator::new(UndecidedStateDynamics::new(k), cfg)
        });
        let d = ks_statistic(&count, &batch);
        let crit = ks_critical_value(count.len(), batch.len(), 0.01);
        assert!(
            d < crit,
            "k={k}: batch vs count stabilization-time KS {d:.4} >= critical {crit:.4}"
        );
    }
}

/// Same KS criterion on the one-way epidemic (monotone pure-birth chain):
/// completion-time distributions of batch and count backends agree.
#[test]
fn batch_vs_count_epidemic_completion_ks() {
    let n = 10_000u64;
    let reps = 200u64;
    let config = pop_proto::CountConfig::from_counts(vec![1, n - 1]);
    let sample = |seed_base: u64, batch: bool| -> Vec<f64> {
        (0..reps)
            .map(|seed| {
                let mut rng = SimRng::new(seed_base + seed);
                let (t, stable) = if batch {
                    let mut sim = BatchSimulator::new(OneWayEpidemic, &config);
                    sim.run_to_silence(&mut rng, u64::MAX / 2)
                } else {
                    let mut sim = CountSimulator::new(OneWayEpidemic, &config);
                    sim.run_to_silence(&mut rng, u64::MAX / 2)
                };
                assert!(stable);
                t as f64
            })
            .collect()
    };
    let count = sample(40_000, false);
    let batch = sample(50_000, true);
    let d = ks_statistic(&count, &batch);
    let crit = ks_critical_value(count.len(), batch.len(), 0.01);
    assert!(
        d < crit,
        "epidemic completion-time KS {d:.4} >= critical {crit:.4}"
    );
}

/// The batch backend's winner distribution matches the reference under a
/// strong initial bias.
#[test]
fn batch_elects_plurality_at_reference_rate() {
    let n = 2_000u64;
    let k = 3usize;
    let reps = 80u64;
    let mut wins = 0u64;
    for seed in 0..reps {
        let config = InitialConfigBuilder::new(n, k).figure1();
        let mut rng = SimRng::new(seed + 3_000_000);
        let result = usd_core::RunSpec::new(&config)
            .backend(usd_core::Backend::Batch)
            .run(&mut rng);
        assert!(result.stabilized());
        if result.plurality_won() {
            wins += 1;
        }
    }
    let rate = wins as f64 / reps as f64;
    assert!(rate > 0.8, "batch win rate {rate}");
}

#[test]
fn skip_ahead_interaction_clock_is_calibrated() {
    // The skipped-no-op accounting must make the *total interaction count*
    // (not just effective events) agree with the sequential engine — this
    // is what makes parallel-time measurements comparable.
    let config = UsdConfig::new(vec![50, 30], 420); // no-op heavy (84% ⊥)
    let reps = 400u64;
    let mut seq_mean = 0.0;
    let mut skip_mean = 0.0;
    for seed in 0..reps {
        let mut seq = SequentialUsd::new(&config);
        let mut rng = SimRng::new(seed);
        // Run until 40 effective events and note the interaction clock.
        let mut events = 0;
        while events < 40 {
            if seq.step_effective(&mut rng).is_none() {
                break;
            }
            events += 1;
        }
        seq_mean += seq.interactions() as f64;

        let mut skip = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(seed + 55_555);
        let mut events = 0;
        while events < 40 {
            if skip.step_effective(&mut rng).is_none() {
                break;
            }
            events += 1;
        }
        skip_mean += skip.interactions() as f64;
    }
    seq_mean /= reps as f64;
    skip_mean /= reps as f64;
    let rel = (seq_mean - skip_mean).abs() / seq_mean;
    assert!(
        rel < 0.05,
        "interaction clocks disagree: sequential {seq_mean} vs skip {skip_mean}"
    );
}

/// The batch engine's per-batch pairing rows are sampled from
/// position-derived RNG streams, so the worker-thread cap is bit-neutral:
/// identical trajectories for any thread count. This is the regression
/// test guarding the parallel row sampling (k ≥ 16 engages the tree
/// path; the threshold depends only on k, never on the thread count).
#[test]
fn batch_pairing_rows_bit_identical_across_thread_counts() {
    let k = 20usize;
    let config = InitialConfigBuilder::new(200_000, k).figure1();
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut sim =
            BatchSimulator::new(UndecidedStateDynamics::new(k), &config.to_count_config())
                .with_threads(threads);
        let mut rng = SimRng::new(42);
        sim.run(&mut rng, 30_000_000, |_| false);
        runs.push((
            sim.counts().to_vec(),
            sim.interactions(),
            sim.effective_interactions(),
        ));
        assert!(runs[0].2 > 0, "no effective interactions simulated");
    }
    assert_eq!(runs[0], runs[1], "threads=2 diverged from threads=1");
    assert_eq!(runs[0], runs[2], "threads=8 diverged from threads=1");
}
