//! Specialized exact simulators for the Undecided State Dynamics.
//!
//! Both simulators realize **exactly** the chain of §1.1 — uniform random
//! ordered pair of distinct agents, USD transition — but with different
//! cost models:
//!
//! * [`SequentialUsd`] simulates every interaction, O(log k) each, via a
//!   Fenwick sampler over the k + 1 state counts. This is the reference
//!   implementation.
//! * [`SkipAheadUsd`] observes that a (typically constant) fraction of
//!   interactions are no-ops (same opinion, or ⊥ meets ⊥), that no-ops do
//!   not change the configuration, and that the number of consecutive
//!   no-ops before the next *effective* interaction is geometrically
//!   distributed with the exact no-op probability of the current
//!   configuration. It therefore samples the geometric skip length, then
//!   samples the effective interaction from the exact conditional law
//!   (clash with weight Σ_{i<j} xᵢxⱼ, adoption with weight (n−u)·u).
//!   The resulting process is **equal in distribution** to the sequential
//!   chain — verified statistically in this crate's tests and in E12.
//!
//! Both implement [`UsdSimulator`], so detectors and experiment code are
//! generic over the engine.

use crate::config::UsdConfig;
use pop_proto::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use pop_proto::simulator::snapshot_tags;
use pop_proto::telemetry::EngineTelemetry;
use pop_proto::{EventHistograms, FenwickSampler};
use sim_stats::rng::SimRng;

/// An effective USD interaction (no-ops are reported separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsdEvent {
    /// Two agents with (different) opinions `i` and `j` met; both became
    /// undecided.
    Clash {
        /// First opinion involved.
        i: usize,
        /// Second opinion involved (≠ `i`).
        j: usize,
    },
    /// An undecided agent adopted opinion `i`.
    Adopt {
        /// The adopted opinion.
        i: usize,
    },
    /// The interaction changed nothing (reported only by [`SequentialUsd`];
    /// [`SkipAheadUsd`] folds no-ops into the skip count).
    Noop,
}

/// Common interface of the USD simulation engines.
pub trait UsdSimulator {
    /// Number of opinions `k`.
    fn k(&self) -> usize;

    /// Population size `n`.
    fn n(&self) -> u64;

    /// Current opinion counts x₁…x_k (slice of length k).
    fn opinions(&self) -> &[u64];

    /// Current undecided count `u`.
    fn undecided(&self) -> u64;

    /// Interactions simulated so far (including skipped no-ops).
    fn interactions(&self) -> u64;

    /// Advance past the next **effective** interaction, returning the event,
    /// or `None` if the configuration is silent (nothing can ever change).
    ///
    /// For [`SequentialUsd`] this may loop internally over no-op
    /// interactions; for [`SkipAheadUsd`] it samples the skip length.
    /// Either way, [`UsdSimulator::interactions`] advances by the total
    /// number of interactions consumed.
    fn step_effective(&mut self, rng: &mut SimRng) -> Option<UsdEvent>;

    /// Parallel time elapsed.
    fn parallel_time(&self) -> f64 {
        self.interactions() as f64 / self.n() as f64
    }

    /// Snapshot the current configuration.
    fn config(&self) -> UsdConfig {
        UsdConfig::new(self.opinions().to_vec(), self.undecided())
    }

    /// Whether the configuration is silent (consensus or all-undecided).
    fn is_silent(&self) -> bool {
        let n = self.n();
        if self.undecided() == n {
            return true;
        }
        if self.undecided() != 0 {
            return false;
        }
        self.opinions().iter().filter(|&&c| c > 0).count() <= 1
    }

    /// The consensus winner, if stabilized on an opinion.
    fn winner(&self) -> Option<usize> {
        if self.undecided() != 0 {
            return None;
        }
        let mut winner = None;
        for (i, &c) in self.opinions().iter().enumerate() {
            if c > 0 {
                if winner.is_some() {
                    return None;
                }
                winner = Some(i);
            }
        }
        winner
    }
}

// ---------------------------------------------------------------------------
// SequentialUsd
// ---------------------------------------------------------------------------

/// Reference engine: simulates every single interaction.
///
/// State counts (k opinions + ⊥) live in a Fenwick sampler; each interaction
/// samples the ordered pair of distinct agents' states exactly and applies
/// the USD transition.
#[derive(Debug, Clone)]
pub struct SequentialUsd {
    /// Fenwick over k+1 categories; index k = undecided.
    sampler: FenwickSampler,
    k: usize,
    n: u64,
    interactions: u64,
}

impl SequentialUsd {
    /// Start from a configuration (requires n ≥ 2).
    pub fn new(config: &UsdConfig) -> Self {
        assert!(config.n() >= 2, "need at least 2 agents");
        let mut weights = config.opinions().to_vec();
        weights.push(config.u());
        SequentialUsd {
            sampler: FenwickSampler::new(&weights),
            k: config.k(),
            n: config.n(),
            interactions: 0,
        }
    }

    /// Simulate exactly one interaction; returns what happened.
    pub fn step(&mut self, rng: &mut SimRng) -> UsdEvent {
        self.interactions += 1;
        let k = self.k;
        let (a, b) = self.sampler.sample_distinct_pair(rng);
        if a == b || (a == k && b == k) {
            return UsdEvent::Noop;
        }
        if a == k {
            // ⊥ adopts opinion b.
            self.sampler.add(k, -1);
            self.sampler.add(b, 1);
            UsdEvent::Adopt { i: b }
        } else if b == k {
            self.sampler.add(k, -1);
            self.sampler.add(a, 1);
            UsdEvent::Adopt { i: a }
        } else {
            // Different opinions clash.
            self.sampler.add(a, -1);
            self.sampler.add(b, -1);
            self.sampler.add(k, 2);
            UsdEvent::Clash { i: a, j: b }
        }
    }
}

impl UsdSimulator for SequentialUsd {
    fn k(&self) -> usize {
        self.k
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn opinions(&self) -> &[u64] {
        &self.sampler.weights()[..self.k]
    }

    fn undecided(&self) -> u64 {
        self.sampler.weight(self.k)
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn step_effective(&mut self, rng: &mut SimRng) -> Option<UsdEvent> {
        if self.is_silent() {
            return None;
        }
        loop {
            match self.step(rng) {
                UsdEvent::Noop => continue,
                event => return Some(event),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SkipAheadUsd
// ---------------------------------------------------------------------------

/// Skip-ahead engine: geometric jumps over no-op interactions.
///
/// Maintains, incrementally, the decided count D = n − u and
/// S₂ = Σᵢ xᵢ² so that the unordered effective-pair weights
///
/// * clash: C = (D² − S₂)/2   (pairs of agents with different opinions)
/// * adopt: A = D · u         (decided–undecided pairs)
///
/// are available in O(1). One `step_effective` draws the geometric number
/// of no-ops (success probability (C + A)/binom(n,2)), picks clash vs adopt
/// proportionally to (C, A) — exactly, in 128-bit integer arithmetic — and
/// samples the involved opinions ∝ xᵢ (and ∝ xᵢxⱼ via rejection for the
/// clash pair).
#[derive(Debug, Clone)]
pub struct SkipAheadUsd {
    /// Fenwick over the k opinion counts only.
    opinions: FenwickSampler,
    u: u64,
    n: u64,
    /// Σᵢ xᵢ², maintained incrementally.
    sum_sq: u128,
    interactions: u64,
}

impl SkipAheadUsd {
    /// Start from a configuration (requires n ≥ 2).
    pub fn new(config: &UsdConfig) -> Self {
        assert!(config.n() >= 2, "need at least 2 agents");
        let sum_sq = config
            .opinions()
            .iter()
            .map(|&v| (v as u128) * (v as u128))
            .sum();
        SkipAheadUsd {
            opinions: FenwickSampler::new(config.opinions()),
            u: config.u(),
            n: config.n(),
            sum_sq,
            interactions: 0,
        }
    }

    /// Unordered effective-pair weights `(clash, adopt)`.
    #[inline]
    fn effective_weights(&self) -> (u128, u128) {
        let d = self.opinions.total() as u128;
        let clash = (d * d - self.sum_sq) / 2;
        let adopt = d * self.u as u128;
        (clash, adopt)
    }

    /// Record xᵢ → xᵢ + 1 in the squared-sum accumulator.
    #[inline]
    fn sum_sq_inc(&mut self, x_old: u64) {
        self.sum_sq += 2 * x_old as u128 + 1;
    }

    /// Record xᵢ → xᵢ − 1 in the squared-sum accumulator.
    #[inline]
    fn sum_sq_dec(&mut self, x_old: u64) {
        self.sum_sq -= 2 * x_old as u128 - 1;
    }

    /// Sample and apply one effective interaction from the exact
    /// conditional law, given the current `(clash, adopt)` weights (both
    /// must not be zero simultaneously). Does not touch the interaction
    /// clock — callers account for the preceding no-op run themselves.
    fn apply_effective(&mut self, rng: &mut SimRng, clash_w: u128, adopt_w: u128) -> UsdEvent {
        if rng.below_u128(clash_w + adopt_w) < adopt_w {
            // Adoption: pick the opinion ∝ xᵢ.
            let i = self.opinions.sample(rng);
            let x_old = self.opinions.weight(i);
            self.opinions.add(i, 1);
            self.sum_sq_inc(x_old);
            self.u -= 1;
            UsdEvent::Adopt { i }
        } else {
            // Clash: pick (i, j) ∝ xᵢxⱼ over i ≠ j by rejection.
            loop {
                let i = self.opinions.sample(rng);
                let j = self.opinions.sample(rng);
                if i == j {
                    continue;
                }
                let xi_old = self.opinions.weight(i);
                let xj_old = self.opinions.weight(j);
                self.opinions.add(i, -1);
                self.opinions.add(j, -1);
                self.sum_sq_dec(xi_old);
                self.sum_sq_dec(xj_old);
                self.u += 2;
                break UsdEvent::Clash { i, j };
            }
        }
    }

    /// Advance the chain by at most `max` interactions: geometrically skip
    /// the no-op run before the next effective interaction, truncating at
    /// the horizon (the first `max` interactions are then conditionally all
    /// no-ops — still exact). Returns interactions advanced and whether the
    /// configuration changed; `(0, false)` on a silent configuration (the
    /// clock stops, matching the generic engines' convention).
    ///
    /// This is [`SkipAheadUsd::step_effective`] with a horizon, the
    /// primitive that lets the engine sit behind the generic
    /// [`Simulator`](pop_proto::Simulator) trait (see
    /// [`SkipAheadGeneric`]).
    pub fn advance_within(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        if max == 0 {
            return (0, false);
        }
        let (clash_w, adopt_w) = self.effective_weights();
        let effective = clash_w + adopt_w;
        if effective == 0 {
            return (0, false);
        }
        let nf = self.n as f64;
        let total_pairs = nf * (nf - 1.0) / 2.0;
        let p_eff = (effective as f64 / total_pairs).min(1.0);
        let skipped = rng.geometric(p_eff);
        if skipped >= max {
            self.interactions += max;
            return (max, false);
        }
        self.interactions += skipped + 1;
        self.apply_effective(rng, clash_w, adopt_w);
        (skipped + 1, true)
    }
}

impl UsdSimulator for SkipAheadUsd {
    fn k(&self) -> usize {
        self.opinions.len()
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn opinions(&self) -> &[u64] {
        self.opinions.weights()
    }

    fn undecided(&self) -> u64 {
        self.u
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn step_effective(&mut self, rng: &mut SimRng) -> Option<UsdEvent> {
        let (clash_w, adopt_w) = self.effective_weights();
        let effective = clash_w + adopt_w;
        if effective == 0 {
            return None; // silent: consensus or all-undecided
        }
        let nf = self.n as f64;
        let total_pairs = nf * (nf - 1.0) / 2.0;
        let p_eff = (effective as f64 / total_pairs).min(1.0);
        // Geometric number of no-op interactions before the effective one.
        let skipped = rng.geometric(p_eff);
        self.interactions += skipped + 1;
        Some(self.apply_effective(rng, clash_w, adopt_w))
    }
}

// ---------------------------------------------------------------------------
// SequentialGeneric
// ---------------------------------------------------------------------------

/// [`SequentialUsd`] behind the generic [`Simulator`](pop_proto::Simulator)
/// trait: the USD reference engine as a thin wrapper, exactly like
/// [`SkipAheadGeneric`] wraps the skip-ahead engine. Every backend —
/// including the sequential reference — is thereby a generic-substrate
/// engine, so observer-driven experiments (lemma probes, traces, crossing
/// detectors) run on all of them through one entry point.
///
/// Observation granularity
/// ([`advance_observed`](pop_proto::Simulator::advance_observed)):
/// **exact** — every advancement is one literal interaction.
#[derive(Debug, Clone)]
pub struct SequentialGeneric {
    inner: SequentialUsd,
    effective: u64,
    /// Engine telemetry. A per-event engine: `scheduled`/`effective`
    /// mirror the clocks, `dense_steps`/`pair_draws` count the literal
    /// interactions. No phases, no spans.
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): the literally-counted no-op run
    /// before each effective interaction lands in `skip_len`.
    hist: Option<Box<EventHistograms>>,
    /// Consecutive no-op interactions (histogram recording only).
    noop_run: u64,
}

impl SequentialGeneric {
    /// Start from a configuration (requires n ≥ 2).
    pub fn new(config: &UsdConfig) -> Self {
        SequentialGeneric {
            inner: SequentialUsd::new(config),
            effective: 0,
            telemetry: EngineTelemetry::new(),
            hist: None,
            noop_run: 0,
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &SequentialUsd {
        &self.inner
    }
}

impl pop_proto::Simulator for SequentialGeneric {
    fn population(&self) -> u64 {
        self.inner.n()
    }

    fn num_states(&self) -> usize {
        self.inner.k() + 1
    }

    fn counts(&self) -> &[u64] {
        // The Fenwick sampler's weight vector is already the dense count
        // layout the trait promises: opinions 0..k, then ⊥ at index k.
        self.inner.sampler.weights()
    }

    fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    fn effective_interactions(&self) -> u64 {
        self.effective
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let changed = !matches!(self.inner.step(rng), UsdEvent::Noop);
        if changed {
            self.effective += 1;
            self.telemetry.effective += 1;
            if let Some(h) = &mut self.hist {
                // The completed no-op run before this effective event —
                // the quantity the skip-ahead engine samples geometrically.
                h.skip_len.add_u64(self.noop_run);
            }
            self.noop_run = 0;
        } else if self.hist.is_some() {
            self.noop_run += 1;
        }
        changed
    }

    fn is_silent(&self) -> bool {
        UsdSimulator::is_silent(&self.inner)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        self.noop_run = 0;
    }

    fn histograms(&self) -> Option<EventHistograms> {
        self.hist.as_deref().cloned()
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        w.put_u8(snapshot_tags::USD_SEQ);
        snapshot_tags::write_config(w, self.inner.n(), self.inner.k() + 1);
        w.put_u64_slice(self.inner.sampler.weights());
        w.put_u64(self.inner.interactions);
        w.put_u64(self.effective);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.noop_run);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::USD_SEQ, "seq")?;
        snapshot_tags::expect_config(r, self.inner.n(), self.inner.k() + 1)?;
        let weights = r.get_u64_vec()?;
        if weights.len() != self.inner.k() + 1 {
            return Err(CheckpointError::Corrupt(format!(
                "seq snapshot has {} states (engine has {})",
                weights.len(),
                self.inner.k() + 1
            )));
        }
        if weights.iter().sum::<u64>() != self.inner.n() {
            return Err(CheckpointError::Corrupt(
                "seq snapshot does not sum to the population".into(),
            ));
        }
        let interactions = r.get_u64()?;
        let effective = r.get_u64()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        let noop_run = r.get_u64()?;
        self.inner.sampler = FenwickSampler::new(&weights);
        self.inner.interactions = interactions;
        self.effective = effective;
        self.telemetry = telemetry;
        self.hist = hist;
        self.noop_run = noop_run;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SkipAheadGeneric
// ---------------------------------------------------------------------------

/// [`SkipAheadUsd`] behind the generic [`Simulator`](pop_proto::Simulator)
/// trait: the USD-specialized engine as a thin wrapper, so observer-driven
/// experiments (Figure 1, the lemma probes) can select it interchangeably
/// with the generic backends. The wrapper maintains the dense count vector
/// (k opinions then ⊥ at index k — the same layout as
/// [`UsdConfig::to_count_config`](crate::config::UsdConfig)) and the
/// effective-interaction counter the trait exposes; all dynamics delegate
/// to [`SkipAheadUsd::advance_within`].
#[derive(Debug, Clone)]
pub struct SkipAheadGeneric {
    inner: SkipAheadUsd,
    /// Dense counts: opinions 0..k, undecided at index k.
    counts: Vec<u64>,
    effective: u64,
    /// Engine telemetry: `scheduled`/`effective` mirror the clocks,
    /// `skip_draws` counts the geometric no-op skips and `pair_draws` the
    /// effective-event draws. No phases, no spans.
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): each completed geometric no-op run
    /// (`advanced − 1` on a changing advancement) lands in `skip_len`.
    hist: Option<Box<EventHistograms>>,
}

impl SkipAheadGeneric {
    /// Start from a configuration (requires n ≥ 2).
    pub fn new(config: &UsdConfig) -> Self {
        let mut counts = config.opinions().to_vec();
        counts.push(config.u());
        SkipAheadGeneric {
            inner: SkipAheadUsd::new(config),
            counts,
            effective: 0,
            telemetry: EngineTelemetry::new(),
            hist: None,
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &SkipAheadUsd {
        &self.inner
    }

    fn sync_counts(&mut self) {
        let k = self.inner.k();
        self.counts[..k].copy_from_slice(self.inner.opinions());
        self.counts[k] = self.inner.undecided();
    }
}

impl pop_proto::Simulator for SkipAheadGeneric {
    fn population(&self) -> u64 {
        self.inner.n()
    }

    fn num_states(&self) -> usize {
        self.inner.k() + 1
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    fn effective_interactions(&self) -> u64 {
        self.effective
    }

    /// One interaction via a horizon-1 advancement (an effective draw with
    /// the exact single-step probability, else a no-op). On an
    /// already-silent configuration the clock stays put — the skip engine's
    /// silence convention.
    fn step(&mut self, rng: &mut SimRng) -> bool {
        self.advance_changed(rng, 1).1
    }

    fn advance_changed(&mut self, rng: &mut SimRng, max: u64) -> (u64, bool) {
        let (advanced, changed) = self.inner.advance_within(rng, max);
        self.telemetry.scheduled += advanced;
        if advanced > 0 {
            // One geometric draw per advancement (truncated or not).
            self.telemetry.skip_draws += 1;
        }
        if changed {
            self.effective += 1;
            self.telemetry.effective += 1;
            self.telemetry.pair_draws += 1;
            if let Some(h) = &mut self.hist {
                // The geometric no-op run that preceded this effective
                // event. Horizon-truncated advancements are not recorded —
                // only completed runs, matching the per-event engines.
                h.skip_len.add_u64(advanced - 1);
            }
            self.sync_counts();
        }
        (advanced, changed)
    }

    fn is_silent(&self) -> bool {
        self.inner.is_silent()
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
    }

    fn histograms(&self) -> Option<EventHistograms> {
        self.hist.as_deref().cloned()
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        w.put_u8(snapshot_tags::USD_SKIP);
        snapshot_tags::write_config(w, self.inner.n(), self.inner.k() + 1);
        w.put_u64_slice(self.inner.opinions.weights());
        w.put_u64(self.inner.u);
        w.put_u64(self.inner.interactions);
        w.put_u64(self.effective);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::USD_SKIP, "skip")?;
        snapshot_tags::expect_config(r, self.inner.n(), self.inner.k() + 1)?;
        let opinions = r.get_u64_vec()?;
        if opinions.len() != self.inner.k() {
            return Err(CheckpointError::Corrupt(format!(
                "skip snapshot has {} opinions (engine has {})",
                opinions.len(),
                self.inner.k()
            )));
        }
        let u = r.get_u64()?;
        if opinions.iter().sum::<u64>() + u != self.inner.n() {
            return Err(CheckpointError::Corrupt(
                "skip snapshot does not sum to the population".into(),
            ));
        }
        let interactions = r.get_u64()?;
        let effective = r.get_u64()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        // Σ xᵢ² is derived state — recomputed exactly in integer arithmetic.
        let sum_sq = opinions.iter().map(|&v| (v as u128) * (v as u128)).sum();
        self.inner.opinions = FenwickSampler::new(&opinions);
        self.inner.u = u;
        self.inner.sum_sq = sum_sq;
        self.inner.interactions = interactions;
        self.effective = effective;
        self.telemetry = telemetry;
        self.hist = hist;
        self.sync_counts();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Run drivers
// ---------------------------------------------------------------------------

/// Run `sim` until it stabilizes or `budget` interactions have elapsed;
/// invokes `observer` after every effective event. Returns the interaction
/// count at the stopping point and whether the run stabilized.
pub fn run_until_stable<S: UsdSimulator>(
    sim: &mut S,
    rng: &mut SimRng,
    budget: u64,
    mut observer: impl FnMut(&S, UsdEvent),
) -> (u64, bool) {
    while sim.interactions() < budget {
        match sim.step_effective(rng) {
            Some(event) => observer(&*sim, event),
            None => return (sim.interactions(), true),
        }
        // After the event the configuration may have just become silent;
        // step_effective would detect it next call, but checking here makes
        // the returned interaction count exact.
        if sim.is_silent() {
            return (sim.interactions(), true);
        }
    }
    (sim.interactions(), sim.is_silent())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> UsdConfig {
        UsdConfig::decided(vec![40, 30, 30])
    }

    #[test]
    fn sequential_conserves_population() {
        let mut sim = SequentialUsd::new(&small_config());
        let mut rng = SimRng::new(1);
        for _ in 0..5_000 {
            sim.step(&mut rng);
            let total: u64 = sim.opinions().iter().sum::<u64>() + sim.undecided();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn skip_ahead_conserves_population_and_sum_sq() {
        let mut sim = SkipAheadUsd::new(&small_config());
        let mut rng = SimRng::new(2);
        for _ in 0..2_000 {
            if sim.step_effective(&mut rng).is_none() {
                break;
            }
            let total: u64 = sim.opinions().iter().sum::<u64>() + sim.undecided();
            assert_eq!(total, 100);
            let s2: u128 = sim
                .opinions()
                .iter()
                .map(|&v| (v as u128) * (v as u128))
                .sum();
            assert_eq!(s2, sim.sum_sq, "sum of squares out of sync");
        }
    }

    #[test]
    fn both_engines_stabilize_k2_quickly() {
        // k=2 with a clear bias: stabilization in O(n log n) interactions
        // w.h.p. (Clementi et al.), majority wins.
        for seed in 0..5 {
            let config = UsdConfig::decided(vec![700, 300]);
            let mut seq = SequentialUsd::new(&config);
            let mut rng = SimRng::new(seed);
            let (t_seq, stable) = run_until_stable(&mut seq, &mut rng, 10_000_000, |_, _| {});
            assert!(stable, "sequential did not stabilize");
            assert_eq!(seq.winner(), Some(0));
            assert!(t_seq < 1_000_000);

            let mut skip = SkipAheadUsd::new(&config);
            let mut rng = SimRng::new(seed + 100);
            let (t_skip, stable) = run_until_stable(&mut skip, &mut rng, 10_000_000, |_, _| {});
            assert!(stable, "skip-ahead did not stabilize");
            assert_eq!(skip.winner(), Some(0));
            assert!(t_skip < 1_000_000);
        }
    }

    #[test]
    fn engines_agree_in_distribution_on_stabilization_time() {
        // The skip-ahead chain must be distributionally identical to the
        // sequential chain; compare mean stabilization interactions for a
        // small instance across many seeds. Tolerance is generous but the
        // test would catch systematic skipping errors (e.g. off-by-one in
        // the geometric, wrong conditional weights).
        let config = UsdConfig::decided(vec![60, 40]);
        let reps = 300u64;
        let mut seq_mean = 0.0;
        let mut skip_mean = 0.0;
        for seed in 0..reps {
            let mut seq = SequentialUsd::new(&config);
            let mut rng = SimRng::new(seed);
            let (t, s) = run_until_stable(&mut seq, &mut rng, 100_000_000, |_, _| {});
            assert!(s);
            seq_mean += t as f64;

            let mut skip = SkipAheadUsd::new(&config);
            let mut rng = SimRng::new(seed + 77_777);
            let (t, s) = run_until_stable(&mut skip, &mut rng, 100_000_000, |_, _| {});
            assert!(s);
            skip_mean += t as f64;
        }
        seq_mean /= reps as f64;
        skip_mean /= reps as f64;
        let rel = (seq_mean - skip_mean).abs() / seq_mean;
        assert!(
            rel < 0.10,
            "engines disagree: sequential {seq_mean} vs skip-ahead {skip_mean} ({rel})"
        );
    }

    #[test]
    fn skip_ahead_advances_interactions_past_noops() {
        // With a huge undecided mass and one tiny opinion, no-ops dominate;
        // skip counts must push `interactions` up much faster than the
        // number of effective events.
        let config = UsdConfig::new(vec![1, 0], 999);
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(3);
        let mut events = 0u64;
        while sim.undecided() > 0 && events < 10_000 {
            sim.step_effective(&mut rng).unwrap();
            events += 1;
        }
        assert!(sim.interactions() > events, "no skipping happened");
        assert_eq!(sim.winner(), Some(0));
    }

    #[test]
    fn all_undecided_is_absorbing_for_both_engines() {
        let config = UsdConfig::new(vec![0, 0], 50);
        let mut seq = SequentialUsd::new(&config);
        let mut rng = SimRng::new(4);
        assert!(seq.step_effective(&mut rng).is_none());
        assert!(seq.is_silent());

        let mut skip = SkipAheadUsd::new(&config);
        assert!(skip.step_effective(&mut rng).is_none());
        assert!(skip.is_silent());
        assert_eq!(skip.winner(), None);
    }

    #[test]
    fn two_singleton_opinions_annihilate() {
        // x = (1, 1), u = 0: the only effective interaction is the clash,
        // after which everything is undecided and absorbing.
        let config = UsdConfig::decided(vec![1, 1]);
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(5);
        let event = sim.step_effective(&mut rng).unwrap();
        assert!(matches!(event, UsdEvent::Clash { .. }));
        assert_eq!(sim.undecided(), 2);
        assert!(sim.step_effective(&mut rng).is_none());
    }

    #[test]
    fn winner_and_silence_semantics() {
        let consensus = SequentialUsd::new(&UsdConfig::decided(vec![10, 0]));
        assert!(consensus.is_silent());
        assert_eq!(consensus.winner(), Some(0));

        let running = SequentialUsd::new(&UsdConfig::new(vec![9, 0], 1));
        assert!(!running.is_silent());
        assert_eq!(running.winner(), None);
    }

    #[test]
    fn sequential_events_match_state_changes() {
        let mut sim = SequentialUsd::new(&small_config());
        let mut rng = SimRng::new(6);
        for _ in 0..2_000 {
            let before_u = sim.undecided();
            let before_x: Vec<u64> = sim.opinions().to_vec();
            match sim.step(&mut rng) {
                UsdEvent::Clash { i, j } => {
                    assert_ne!(i, j);
                    assert_eq!(sim.undecided(), before_u + 2);
                    assert_eq!(sim.opinions()[i], before_x[i] - 1);
                    assert_eq!(sim.opinions()[j], before_x[j] - 1);
                }
                UsdEvent::Adopt { i } => {
                    assert_eq!(sim.undecided(), before_u - 1);
                    assert_eq!(sim.opinions()[i], before_x[i] + 1);
                }
                UsdEvent::Noop => {
                    assert_eq!(sim.undecided(), before_u);
                    assert_eq!(sim.opinions(), before_x.as_slice());
                }
            }
        }
    }

    #[test]
    fn run_until_stable_respects_budget() {
        let config = UsdConfig::decided(vec![500, 500]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(7);
        let (t, stable) = run_until_stable(&mut sim, &mut rng, 1_000, |_, _| {});
        assert!(t >= 1_000 || stable);
        // A dead-heat k=2 instance will not stabilize in 1000 interactions.
        assert!(!stable);
    }

    #[test]
    fn observer_sees_every_effective_event() {
        let config = UsdConfig::decided(vec![30, 20]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(8);
        let mut events = 0u64;
        run_until_stable(&mut sim, &mut rng, 10_000_000, |_, _| events += 1);
        // Effective events tracked separately must match the observer count.
        assert!(events > 0);
        // Each event changed the configuration; at stabilization all 50
        // agents agree. The minimal event count is ≥ number of agents that
        // changed state at least once; just sanity-check non-triviality.
        assert!(events >= 20);
    }
}
