//! The paper's closed-form bound curves and parameter predicates.
//!
//! Everything here is a direct transcription of formulas from the paper,
//! used by the experiment harness to print "paper bound vs measured" tables:
//!
//! * Theorem 3.5 lower bound: stabilization requires at least
//!   (k/25) · ln(√n / (k ln n)) parallel time — equivalently the induction
//!   runs for ln(n^¾ / (k^½ · √(n ln n) · f(n))) groups of kn/25
//!   interactions, with f(n) = (√n / (k ln n))^¼;
//! * Amir et al. (PODC '23) upper bound: O(k ln n) parallel time for
//!   k = O(√n / ln² n);
//! * the trivial Ω(ln n) lower bound (coupon collection);
//! * admissible-bias and valid-k predicates.
//!
//! All logarithms are natural. The paper's asymptotic statements of course
//! have unspecified constants; where the paper fixes a constant (the 25 in
//! kn/25, the 24 in Lemma 3.4's kn/24) we use it verbatim.

/// √(n ln n), the canonical bias unit in the approximate-majority
/// literature, rounded to the nearest integer.
pub fn sqrt_n_log_n(n: u64) -> u64 {
    let nf = n as f64;
    (nf * nf.ln()).sqrt().round() as u64
}

/// The paper's f(n) = (√n / (k ln n))^¼ scaling factor (Theorem 3.5).
pub fn f_scaling(n: u64, k: usize) -> f64 {
    let nf = n as f64;
    (nf.sqrt() / (k as f64 * nf.ln())).powf(0.25)
}

/// Maximum admissible initial bias for the lower bound:
/// f(n) · √(n ln n) = (√n/(k ln n))^¼ · √(n ln n), rounded down.
pub fn max_admissible_bias(n: u64, k: usize) -> u64 {
    (f_scaling(n, k) * sqrt_n_log_n(n) as f64).floor() as u64
}

/// The Figure 1 choice of k: ⌊√n / (ln n · ln ln n)⌋, clamped to ≥ 2.
pub fn figure1_k(n: u64) -> usize {
    let nf = n as f64;
    let k = nf.sqrt() / (nf.ln() * nf.ln().ln());
    (k.floor() as usize).max(2)
}

/// Whether `k` satisfies the theorem's constraint k ≤ √n / ln n (the
/// finite-n stand-in for k = o(√n / log n)).
pub fn k_is_admissible(n: u64, k: usize) -> bool {
    let nf = n as f64;
    (k as f64) <= nf.sqrt() / nf.ln()
}

/// Collected bound curves for a given (n, k).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
}

impl Bounds {
    /// Bounds object for `(n, k)`.
    pub fn new(n: u64, k: usize) -> Self {
        assert!(n >= 2 && k >= 1);
        Bounds { n, k }
    }

    /// Theorem 3.5: the system w.h.p. does **not** stabilize within
    /// (k/25) · ln(√n / (k ln n)) parallel time (0 when the log is
    /// non-positive, i.e. outside the theorem's regime).
    pub fn lower_bound_parallel(&self) -> f64 {
        let nf = self.n as f64;
        let arg = nf.sqrt() / (self.k as f64 * nf.ln());
        if arg <= 1.0 {
            0.0
        } else {
            self.k as f64 / 25.0 * arg.ln()
        }
    }

    /// Theorem 3.5 in interactions: n × the parallel-time bound.
    pub fn lower_bound_interactions(&self) -> f64 {
        self.lower_bound_parallel() * self.n as f64
    }

    /// The number of induction iterations in the proof of Theorem 3.5:
    /// ln(n^¾ / (k^½ · √(n ln n) · f(n))), floored at 0.
    pub fn induction_iterations(&self) -> f64 {
        let nf = self.n as f64;
        let numerator = nf.powf(0.75);
        let denominator =
            (self.k as f64).sqrt() * (nf * nf.ln()).sqrt() * f_scaling(self.n, self.k);
        let arg = numerator / denominator;
        if arg <= 1.0 {
            0.0
        } else {
            arg.ln()
        }
    }

    /// Amir et al. (PODC '23) upper bound: stabilization w.h.p. within
    /// O(k ln n) parallel time. Returned with constant 1 — callers compare
    /// *ratios*, not absolute values.
    pub fn upper_bound_parallel(&self) -> f64 {
        self.k as f64 * (self.n as f64).ln()
    }

    /// Upper bound in interactions.
    pub fn upper_bound_interactions(&self) -> f64 {
        self.upper_bound_parallel() * self.n as f64
    }

    /// The trivial Ω(ln n) parallel-time lower bound (in o(log n) parallel
    /// time some agents have w.h.p. not interacted at all).
    pub fn trivial_lower_bound_parallel(&self) -> f64 {
        (self.n as f64).ln()
    }

    /// Lemma 3.1's high-probability ceiling on the undecided count:
    /// n/2 − n/4k + 10n/(k−1)² + (20·13² + 1)·√(n ln n).
    /// (For k = 1 the 10n/(k−1)² term is vacuous; we return n, as u ≤ n.)
    pub fn undecided_ceiling(&self) -> f64 {
        if self.k <= 1 {
            return self.n as f64;
        }
        let nf = self.n as f64;
        let kf = self.k as f64;
        let plateau = nf / 2.0 - nf / (4.0 * kf);
        let slack_poly = 10.0 * nf / ((kf - 1.0) * (kf - 1.0));
        let slack_sqrt = (20.0 * 169.0 + 1.0) * (nf * nf.ln()).sqrt();
        (plateau + slack_poly + slack_sqrt).min(nf)
    }

    /// Lemma 3.3's claim: an opinion at ≤ 3n/2k needs at least kn/25
    /// interactions to reach 2n/k. Returns kn/25.
    pub fn opinion_growth_time(&self) -> f64 {
        self.k as f64 * self.n as f64 / 25.0
    }

    /// Lemma 3.4's claim: the max pairwise gap needs at least kn/24
    /// interactions to double. Returns kn/24.
    pub fn gap_doubling_time(&self) -> f64 {
        self.k as f64 * self.n as f64 / 24.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_n_log_n_value() {
        // n = 10^6: √(10^6 · ln 10^6) = √(13.8155·10^6) ≈ 3716.9
        let v = sqrt_n_log_n(1_000_000);
        assert!((3_600..3_800).contains(&v), "{v}");
    }

    #[test]
    fn figure1_k_matches_paper() {
        assert_eq!(figure1_k(1_000_000), 27);
        // Small n clamps to 2.
        assert_eq!(figure1_k(100), 2);
    }

    #[test]
    fn f_scaling_monotone_in_k() {
        let f8 = f_scaling(1_000_000, 8);
        let f64_ = f_scaling(1_000_000, 64);
        assert!(f8 > f64_, "f must decrease with k");
        assert!(f8 > 1.0);
    }

    #[test]
    fn admissible_bias_exceeds_sqrt_n_log_n_in_regime() {
        // For k well below √n/ln n, f(n) > 1, so the admissible bias is
        // strictly larger than the usual √(n ln n) threshold — the
        // headline strength of the result.
        let n = 1_000_000;
        let k = 27;
        assert!(max_admissible_bias(n, k) > sqrt_n_log_n(n));
    }

    #[test]
    fn k_admissibility() {
        // √(10^6)/ln(10^6) ≈ 72.4.
        assert!(k_is_admissible(1_000_000, 27));
        assert!(k_is_admissible(1_000_000, 72));
        assert!(!k_is_admissible(1_000_000, 73));
    }

    #[test]
    fn lower_bound_positive_in_regime_zero_outside() {
        let b = Bounds::new(1_000_000, 27);
        assert!(b.lower_bound_parallel() > 0.0);
        // k far beyond √n/ln n: bound degenerates to 0.
        let huge_k = Bounds::new(10_000, 5_000);
        assert_eq!(huge_k.lower_bound_parallel(), 0.0);
    }

    #[test]
    fn lower_bound_grows_with_k_in_regime() {
        let n = 1_000_000;
        let b8 = Bounds::new(n, 8).lower_bound_parallel();
        let b16 = Bounds::new(n, 16).lower_bound_parallel();
        let b32 = Bounds::new(n, 32).lower_bound_parallel();
        assert!(b8 < b16 && b16 < b32, "{b8} {b16} {b32}");
    }

    #[test]
    fn upper_bound_dominates_lower_bound() {
        // Tightness: lower ≤ upper for all admissible (n, k); the gap is
        // the inner log factor.
        for &n in &[10_000u64, 100_000, 1_000_000] {
            for &k in &[4usize, 8, 16, 27] {
                let b = Bounds::new(n, k);
                assert!(
                    b.lower_bound_parallel() <= b.upper_bound_parallel(),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn interactions_are_parallel_times_n() {
        let b = Bounds::new(10_000, 8);
        assert!((b.lower_bound_interactions() - b.lower_bound_parallel() * 10_000.0).abs() < 1e-6);
        assert!((b.upper_bound_interactions() - b.upper_bound_parallel() * 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn undecided_ceiling_between_plateau_and_n() {
        let b = Bounds::new(1_000_000, 27);
        let nf = 1_000_000.0f64;
        let plateau = nf / 2.0 - nf / (4.0 * 27.0);
        let c = b.undecided_ceiling();
        assert!(c > plateau);
        assert!(c <= nf);
        // k = 1 degenerate case.
        assert_eq!(Bounds::new(100, 1).undecided_ceiling(), 100.0);
    }

    #[test]
    fn lemma_constants() {
        let b = Bounds::new(1000, 10);
        assert!((b.opinion_growth_time() - 400.0).abs() < 1e-9); // 10*1000/25
        assert!((b.gap_doubling_time() - 416.666).abs() < 0.01); // 10*1000/24
    }

    #[test]
    fn induction_iterations_positive_in_regime() {
        let b = Bounds::new(1_000_000, 27);
        assert!(b.induction_iterations() > 0.0);
    }
}
