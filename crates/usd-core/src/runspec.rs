//! The unified run entrypoint: [`RunSpec`].
//!
//! Historically every way of driving a USD run had its own free function in
//! [`crate::backend`] — clique vs topology, fire-and-forget vs keeping the
//! engine, with vs without a progress ticker — six near-duplicate
//! entrypoints whose signatures grew in lockstep. [`RunSpec`] collapses
//! them into one builder:
//!
//! ```
//! use sim_stats::rng::SimRng;
//! use usd_core::{Backend, RunSpec, UsdConfig};
//!
//! let config = UsdConfig::decided(vec![800, 200]);
//! let mut rng = SimRng::new(11);
//! let result = RunSpec::new(&config)
//!     .backend(Backend::SkipAhead)
//!     .budget(u64::MAX / 2)
//!     .run(&mut rng);
//! assert!(result.stabilized());
//! ```
//!
//! Optional knobs compose instead of multiplying entrypoints:
//! [`topology`](RunSpec::topology) switches the run to a
//! [`TopologyFamily`] graph, [`replicas`](RunSpec::replicas) packs r ≤ 64
//! independent lanes into one [`ReplicaSimulator`] pass
//! ([`Backend::Replica`] only — see
//! [`Backend::capabilities`]), [`threads`](RunSpec::threads) caps the
//! worker threads of the thread-capable engines (resolved **once** at
//! builder construction from the process-wide override > the
//! `USD_THREADS` environment variable > available parallelism, then
//! carried as plain data — engines never consult the environment),
//! [`ticker`](RunSpec::ticker) attaches a chunk-boundary
//! [`RunTicker`] (heartbeats, flight recorders, checkpoint hooks), and
//! [`observer`](RunSpec::observer) streams count-change
//! [`Observation`]s to a
//! [`SimObserver`]. [`run`](RunSpec::run) returns the classified
//! [`StabilizationResult`]; [`run_keeping`](RunSpec::run_keeping) also
//! hands back the engine so telemetry, histograms, and — for replica runs
//! — the per-lane outcome survive the drive
//! ([`EnsembleOutcome::from_simulator`] reads them off the kept engine).
//!
//! Construction without driving is [`RunSpec::build_simulator`] — the one
//! place every backend (including [`Backend::Replica`]) registers; the
//! legacy [`make_simulator`](crate::backend::make_simulator) /
//! [`make_topology_simulator`](crate::backend::make_topology_simulator)
//! helpers delegate here. Resumed runs (engine restored from a
//! [`RunCheckpoint`](crate::checkpoint::RunCheckpoint), clock mid-flight)
//! re-enter the identical chunked drive loops through
//! [`RunSpec::drive`] / [`RunSpec::drive_agent_graph`].
//!
//! # Drive-loop equivalence with the legacy entrypoints
//!
//! The builder routes to the same three loops the legacy functions were:
//! a clique run with no ticker and no observer is a single
//! `run_to_silence` call (bit-identical to `stabilize_with_backend`);
//! attaching a ticker or observer switches to the `~max(4n, 2¹⁶)`-chunked
//! loop (`stabilize_simulator_ticking`); topology runs always drive
//! chunked, with [`Backend::Agent`] additionally interleaving the exact
//! O(m) frozen-configuration edge scan (`stabilize_agent_graph_ticking`).
//! `tests/replica_equivalence.rs` pins builder ↔ wrapper equivalence on
//! every backend.

use crate::backend::{classify_counts, Backend, RunTicker, COMPLETE_GRAPH_MAX_N};
use crate::config::UsdConfig;
use crate::dynamics::{SequentialGeneric, SkipAheadGeneric};
use crate::protocol::UndecidedStateDynamics;
use crate::stabilization::StabilizationResult;
use pop_proto::simulator::{shuffled_layout, MAX_LANES};
use pop_proto::{
    AgentSimulator, BatchGraphSimulator, BatchSimulator, CliqueScheduler, CountSimulator, Graph,
    GraphScheduler, GraphSimulator, Observation, ParGraphSimulator, Protocol, ReplicaSimulator,
    SimObserver, Simulator, StateWord, TopologyFamily, WideBatchGraphSimulator,
};
use sim_stats::rng::SimRng;
use sim_stats::threads::resolve_threads;

/// Lane count a [`Backend::Replica`] run packs when
/// [`RunSpec::replicas`] is not called: one full machine word.
pub const DEFAULT_REPLICAS: u32 = 64;

/// Seed of the *internal* RNG that lays out replica lanes on the clique.
///
/// Clique replica construction must not draw from the caller's RNG so that
/// `make_simulator(backend, config)` — which has no RNG parameter — works
/// uniformly across `Backend::ALL`. Lanes still need *distinct* layouts
/// (lanes sharing one schedule from identical states would evolve
/// identically), so they come from a fixed-seed internal stream: lane
/// layouts are deterministic in `(config, lanes)` alone. On the clique the
/// stabilization law is layout-independent (agents are exchangeable), so
/// this costs no statistical generality; lane 0 keeps the canonical block
/// layout shuffled first, matching what a scalar run under the same
/// scheduler stream would hold.
const REPLICA_CLIQUE_LAYOUT_SEED: u64 = 0x5EED_1A9E_C0DE_D001;

/// A declarative description of one USD run: configuration, engine,
/// optional topology, optional replica lanes, budget, and attached
/// instrumentation. See the [module docs](self) for the routing rules.
///
/// The builder is consumed by [`run`](RunSpec::run) /
/// [`run_keeping`](RunSpec::run_keeping) /
/// [`drive`](RunSpec::drive) (the mutable ticker/observer borrows end with
/// the run); [`build_simulator`](RunSpec::build_simulator) borrows it.
pub struct RunSpec<'a> {
    config: &'a UsdConfig,
    backend: Backend,
    topology: Option<TopologyFamily>,
    topo_seed: u64,
    replicas: Option<u32>,
    threads: usize,
    budget: u64,
    span_timing: bool,
    histograms: bool,
    ticker: Option<&'a mut dyn RunTicker>,
    observer: Option<&'a mut dyn SimObserver>,
}

impl<'a> RunSpec<'a> {
    /// A run of `config` on the default engine ([`Backend::SkipAhead`],
    /// the fast USD-specialized clique engine) with an effectively
    /// unbounded budget and no instrumentation.
    pub fn new(config: &'a UsdConfig) -> Self {
        RunSpec {
            config,
            backend: Backend::SkipAhead,
            topology: None,
            topo_seed: 0,
            replicas: None,
            threads: resolve_threads(),
            budget: u64::MAX / 2,
            span_timing: false,
            histograms: false,
            ticker: None,
            observer: None,
        }
    }

    /// Select the engine (default [`Backend::SkipAhead`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Run on a [`TopologyFamily`] graph instead of the clique. The graph
    /// is deterministic in `(family, n, topo_seed)`; the initial layout is
    /// placed uniformly at random on its vertices (drawing from the run
    /// RNG). Only topology-capable backends are accepted
    /// ([`Backend::capabilities`]).
    pub fn topology(mut self, family: TopologyFamily) -> Self {
        self.topology = Some(family);
        self
    }

    /// Seed for the topology generator (default 0; ignored on the clique).
    pub fn topo_seed(mut self, seed: u64) -> Self {
        self.topo_seed = seed;
        self
    }

    /// Pack `replicas` independent lanes of the same configuration into
    /// one engine pass (1 ≤ r ≤ 64). Only [`Backend::Replica`] packs
    /// lanes (`capabilities().replicas`); every other backend accepts
    /// exactly 1. Defaults to [`DEFAULT_REPLICAS`] for the replica
    /// backend and 1 otherwise.
    pub fn replicas(mut self, replicas: u32) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Cap the worker threads of the thread-capable engines
    /// (`capabilities().threads`: the clique batch engine's
    /// hypergeometric-stream fan-out and the pargraph engine's domain
    /// shards). Defaults to the process-wide resolution at builder
    /// construction — override > `USD_THREADS` > available parallelism —
    /// so engines receive the value as plain data and never read the
    /// environment themselves. Thread count is **bit-neutral** on every
    /// engine: any value produces identical trajectories; only wall-clock
    /// changes. Values are clamped to ≥ 1; thread-incapable backends
    /// ignore it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The resolved worker-thread cap this spec will hand to
    /// thread-capable engines.
    pub fn resolved_threads(&self) -> usize {
        self.threads
    }

    /// Interaction budget: the run ends at silence or once the scheduled
    /// interaction clock reaches this (default `u64::MAX / 2`). Replica
    /// runs advance the aggregate clock by `popcount(live)` per draw and
    /// may overshoot by at most `lanes - 1`.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Turn the engine's span clock on before the run (no-op unless the
    /// `span-timing` feature is compiled in).
    pub fn span_timing(mut self, on: bool) -> Self {
        self.span_timing = on;
        self
    }

    /// Turn the engine's per-event histograms on before the run.
    pub fn histograms(mut self, on: bool) -> Self {
        self.histograms = on;
        self
    }

    /// Attach a chunk-boundary [`RunTicker`] (heartbeat / flight-recorder
    /// / checkpoint hook). Forces the chunked drive loop.
    pub fn ticker(mut self, ticker: &'a mut dyn RunTicker) -> Self {
        self.ticker = Some(ticker);
        self
    }

    /// Attach a count-change [`SimObserver`]: the run drives through
    /// [`Simulator::advance_observed`], so the observer sees every
    /// counts-changing boundary at its chosen stride. An observer that
    /// returns `false` ends the run at the next chunk boundary; if the
    /// engine is not silent there, the result classifies as a timeout at
    /// the stopping clock.
    pub fn observer(mut self, observer: &'a mut dyn SimObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The resolved lane count: [`replicas`](RunSpec::replicas) if set
    /// (validated against the backend's `capabilities().replicas`
    /// ceiling), else [`DEFAULT_REPLICAS`] for [`Backend::Replica`] and 1
    /// otherwise.
    pub fn lanes(&self) -> u32 {
        match self.replicas {
            None => {
                if self.backend == Backend::Replica {
                    DEFAULT_REPLICAS
                } else {
                    1
                }
            }
            Some(r) => {
                assert!(r >= 1, "a run needs at least one replica lane");
                assert!(
                    r as usize <= MAX_LANES as usize,
                    "{r} replica lanes exceed the {MAX_LANES}-lane word width"
                );
                let ceiling = self.backend.capabilities().replicas;
                assert!(
                    r <= ceiling,
                    "{} cannot pack {r} replica lanes into one engine pass \
                     (its capabilities().replicas ceiling is {ceiling})",
                    self.backend
                );
                r
            }
        }
    }

    /// Construct the engine this spec describes, without driving it — the
    /// single registration point for every backend, clique or topology,
    /// scalar or replica. Clique construction draws nothing from `rng`
    /// (replica lane layouts come from an internal fixed-seed stream, see
    /// `REPLICA_CLIQUE_LAYOUT_SEED`'s docs); topology construction
    /// draws the shuffled initial layout(s) — lane 0 first for replica
    /// runs, so a scalar run from the same stream starts identically.
    pub fn build_simulator(&self, rng: &mut SimRng) -> Box<dyn Simulator> {
        match self.topology {
            None => self.build_clique(),
            Some(family) => {
                assert!(
                    self.backend.capabilities().topologies,
                    "{} cannot run graph topologies (use agent or graph)",
                    self.backend
                );
                let graph = family.build(self.config.n() as usize, self.topo_seed);
                self.build_on_graph(graph, rng)
            }
        }
    }

    fn build_clique(&self) -> Box<dyn Simulator> {
        let lanes = self.lanes();
        let proto = UndecidedStateDynamics::new(self.config.k());
        let counts = self.config.to_count_config();
        match self.backend {
            Backend::Agent => Box::new(AgentSimulator::from_config(
                proto,
                CliqueScheduler::new(self.config.n() as usize),
                &counts,
            )),
            Backend::Count => Box::new(CountSimulator::new(proto, &counts)),
            Backend::Batch => {
                Box::new(BatchSimulator::new(proto, &counts).with_threads(self.threads))
            }
            Backend::Graph | Backend::BatchGraph | Backend::ParGraph => {
                // Degenerate clique instance: the complete graph,
                // materialized as a Θ(n²) edge list — demo/ablation
                // territory. Refuse sizes whose edge list would silently
                // eat gigabytes; sparse topologies at large n go through
                // `RunSpec::topology`.
                assert!(
                    self.config.n() <= COMPLETE_GRAPH_MAX_N,
                    "backend '{}' on the complete graph materializes n(n-1)/2 edges; \
                     n = {} exceeds the {COMPLETE_GRAPH_MAX_N} cap (use --topology for \
                     sparse graphs, or agent/count/batch for the clique)",
                    self.backend,
                    self.config.n()
                );
                let graph = TopologyFamily::Complete.build(self.config.n() as usize, 0);
                if self.backend == Backend::Graph {
                    Box::new(GraphSimulator::from_config(proto, &graph, &counts))
                } else if self.backend == Backend::ParGraph {
                    // Canonical block layout, like the scalar graph
                    // engine's `from_config` — clique construction stays
                    // RNG-free.
                    let mut states = Vec::with_capacity(counts.n() as usize);
                    for (idx, &c) in counts.counts().iter().enumerate() {
                        states.extend(std::iter::repeat_n(idx, c as usize));
                    }
                    Box::new(ParGraphSimulator::new(proto, &graph, states, self.threads))
                } else if proto.num_states() <= <u8 as StateWord>::LIMIT {
                    Box::new(BatchGraphSimulator::from_config(proto, &graph, &counts))
                } else {
                    // u16 state-packing fallback for k > 256.
                    let mut states = Vec::with_capacity(counts.n() as usize);
                    for (idx, &c) in counts.counts().iter().enumerate() {
                        states.extend(std::iter::repeat_n(idx, c as usize));
                    }
                    Box::new(WideBatchGraphSimulator::with_states(proto, &graph, states))
                }
            }
            Backend::Sequential => Box::new(SequentialGeneric::new(self.config)),
            Backend::SkipAhead => Box::new(SkipAheadGeneric::new(self.config)),
            Backend::Replica => {
                let mut layout_rng = SimRng::new(REPLICA_CLIQUE_LAYOUT_SEED);
                let layouts: Vec<Vec<usize>> = (0..lanes)
                    .map(|_| shuffled_layout(&counts, &mut layout_rng))
                    .collect();
                Box::new(ReplicaSimulator::new_clique(
                    proto,
                    self.config.n() as usize,
                    &layouts,
                ))
            }
        }
    }

    fn build_on_graph(&self, graph: Graph, rng: &mut SimRng) -> Box<dyn Simulator> {
        let lanes = self.lanes();
        let proto = UndecidedStateDynamics::new(self.config.k());
        let counts = self.config.to_count_config();
        match self.backend {
            Backend::Agent => Box::new(AgentSimulator::new(
                proto,
                GraphScheduler::new(graph),
                shuffled_layout(&counts, rng),
            )),
            Backend::Graph => {
                let states = shuffled_layout(&counts, rng);
                Box::new(GraphSimulator::new(proto, &graph, states))
            }
            // USD with k opinions has k + 1 states; alphabets past one
            // byte route to the u16 state-packing fallback instead of
            // being rejected (twice the state-array footprint, same
            // engine).
            Backend::BatchGraph if proto.num_states() <= <u8 as StateWord>::LIMIT => {
                let states = shuffled_layout(&counts, rng);
                Box::new(BatchGraphSimulator::new(proto, &graph, states))
            }
            Backend::BatchGraph => {
                let states = shuffled_layout(&counts, rng);
                Box::new(WideBatchGraphSimulator::with_states(proto, &graph, states))
            }
            Backend::ParGraph => Box::new(ParGraphSimulator::from_config_shuffled(
                proto,
                &graph,
                &counts,
                rng,
                self.threads,
            )),
            Backend::Replica => {
                let layouts: Vec<Vec<usize>> =
                    (0..lanes).map(|_| shuffled_layout(&counts, rng)).collect();
                Box::new(ReplicaSimulator::new_graph(proto, graph, &layouts))
            }
            _ => unreachable!("capabilities().topologies admitted {}", self.backend),
        }
    }

    /// Build the engine, drive it to stabilization, classify, and drop it.
    pub fn run(self, rng: &mut SimRng) -> StabilizationResult {
        self.run_keeping(rng).0
    }

    /// [`run`](RunSpec::run), returning the engine too, so per-engine
    /// state — telemetry, histograms, per-lane outcomes — survives the
    /// drive. The engine slot is `None` only for an edgeless topology
    /// graph (very sparse `er`): trivially silent, nothing to construct.
    pub fn run_keeping(
        mut self,
        rng: &mut SimRng,
    ) -> (StabilizationResult, Option<Box<dyn Simulator>>) {
        let k = self.config.k();
        let plurality = self.config.plurality();
        let budget = self.budget;
        let mut ticker = self.ticker.take();
        let mut observer = self.observer.take();
        match self.topology {
            Some(family) => {
                assert!(
                    self.backend.capabilities().topologies,
                    "{} cannot run graph topologies (use agent or graph)",
                    self.backend
                );
                let graph = family.build(self.config.n() as usize, self.topo_seed);
                if graph.num_edges() == 0 {
                    // Edgeless graph: nothing can ever interact.
                    let counts = self.config.to_count_config();
                    let result = classify_counts(counts.counts(), k, 0, true, plurality);
                    return (result, None);
                }
                if self.backend == Backend::Agent {
                    // The agentwise engine needs its concrete type kept
                    // through the drive: the count-level silence criterion
                    // inside `run_to_silence` misses frozen configurations
                    // on disconnected graphs, so its loop interleaves the
                    // exact O(m) edge scan over its states.
                    let proto = UndecidedStateDynamics::new(k);
                    let counts = self.config.to_count_config();
                    let states = shuffled_layout(&counts, rng);
                    let mut sim = AgentSimulator::new(proto, GraphScheduler::new(graph), states);
                    if self.span_timing {
                        Simulator::set_span_timing(&mut sim, true);
                    }
                    if self.histograms {
                        Simulator::set_histograms(&mut sim, true);
                    }
                    let result = drive_agent_graph_chunked(
                        &mut sim,
                        k,
                        rng,
                        budget,
                        plurality,
                        ticker.as_deref_mut(),
                        observer.as_deref_mut(),
                    );
                    return (result, Some(Box::new(sim)));
                }
                let mut sim = self.build_on_graph(graph, rng);
                if self.span_timing {
                    sim.set_span_timing(true);
                }
                if self.histograms {
                    sim.set_histograms(true);
                }
                // The graph engines (the replica engine included — its
                // periodic frozen-lane scan retires stranded lanes) detect
                // graph silence natively, so the generic chunked driver is
                // exact.
                let result = drive_chunked(
                    sim.as_mut(),
                    k,
                    rng,
                    budget,
                    plurality,
                    ticker.as_deref_mut(),
                    observer.as_deref_mut(),
                );
                (result, Some(sim))
            }
            None => {
                let mut sim = self.build_clique();
                if self.span_timing {
                    sim.set_span_timing(true);
                }
                if self.histograms {
                    sim.set_histograms(true);
                }
                let result = if ticker.is_some() || observer.is_some() {
                    drive_chunked(sim.as_mut(), k, rng, budget, plurality, ticker, observer)
                } else {
                    // No instrumentation: a single uninterrupted
                    // `run_to_silence`, bit-identical to the legacy
                    // fire-and-forget path (chunk boundaries can truncate
                    // the leaping backends' geometric skip draws, so this
                    // distinction is observable).
                    drive_plain(sim.as_mut(), k, rng, budget, plurality)
                };
                (result, Some(sim))
            }
        }
    }

    /// Drive an *already-constructed* engine through the chunked loop this
    /// spec describes — the resume path: restore a simulator from a
    /// checkpoint, rebuild the spec, and drive. Chunk boundaries are a
    /// pure function of the absolute interaction clock, so a resumed drive
    /// re-enters the identical loop; the budget compares against the
    /// absolute clock.
    pub fn drive(mut self, sim: &mut dyn Simulator, rng: &mut SimRng) -> StabilizationResult {
        let k = self.config.k();
        let plurality = self.config.plurality();
        let ticker = self.ticker.take();
        let observer = self.observer.take();
        drive_chunked(sim, k, rng, self.budget, plurality, ticker, observer)
    }

    /// [`drive`](RunSpec::drive) for the concrete agentwise engine on an
    /// interaction graph, interleaving the exact frozen-configuration edge
    /// scan the generic loop cannot perform through the trait object.
    pub fn drive_agent_graph(
        mut self,
        sim: &mut AgentSimulator<UndecidedStateDynamics, GraphScheduler>,
        rng: &mut SimRng,
    ) -> StabilizationResult {
        let k = self.config.k();
        let plurality = self.config.plurality();
        let ticker = self.ticker.take();
        let observer = self.observer.take();
        drive_agent_graph_chunked(sim, k, rng, self.budget, plurality, ticker, observer)
    }
}

/// Records whether the wrapped observer asked to end the run, so the
/// chunked drivers can break instead of re-offering boundaries forever.
struct StopWatch<'o, 'p> {
    inner: &'o mut (dyn SimObserver + 'p),
    stopped: bool,
}

impl SimObserver for StopWatch<'_, '_> {
    fn observe(&mut self, obs: &Observation<'_>) -> bool {
        let keep = self.inner.observe(obs);
        if !keep {
            self.stopped = true;
        }
        keep
    }

    fn max_stride(&self) -> Option<u64> {
        self.inner.max_stride()
    }
}

/// Single uninterrupted `run_to_silence` + classification — the legacy
/// `stabilize_simulator` body.
pub(crate) fn drive_plain(
    sim: &mut dyn Simulator,
    k: usize,
    rng: &mut SimRng,
    budget: u64,
    initial_plurality: Option<usize>,
) -> StabilizationResult {
    let (interactions, stabilized) = sim.run_to_silence(rng, budget);
    classify_counts(sim.counts(), k, interactions, stabilized, initial_plurality)
}

/// The `~max(4n, 2¹⁶)`-chunked drive loop — the legacy
/// `stabilize_simulator_ticking` body, generalized to optional ticker and
/// observer. With `observer: None` and `ticker: Some(_)` the loop (and its
/// RNG stream) is identical to the legacy function.
pub(crate) fn drive_chunked(
    sim: &mut dyn Simulator,
    k: usize,
    rng: &mut SimRng,
    budget: u64,
    initial_plurality: Option<usize>,
    mut ticker: Option<&mut (dyn RunTicker + '_)>,
    mut observer: Option<&mut (dyn SimObserver + '_)>,
) -> StabilizationResult {
    let chunk = (4 * sim.population()).max(1 << 16);
    let mut stopped = false;
    let (interactions, stabilized) = loop {
        let done = sim.interactions();
        if sim.is_silent() {
            break (done, true);
        }
        if done >= budget || stopped {
            break (done, false);
        }
        let horizon = ticker.as_deref().map_or(u64::MAX, |t| t.horizon(done));
        let step = chunk.min(budget - done).min(horizon).max(1);
        match observer.as_deref_mut() {
            Some(obs) => {
                let mut watch = StopWatch {
                    inner: obs,
                    stopped: false,
                };
                sim.advance_observed(rng, step, &mut watch);
                stopped = watch.stopped;
            }
            None => {
                sim.run_to_silence(rng, step);
            }
        }
        if let Some(t) = ticker.as_deref_mut() {
            t.tick(sim);
            t.checkpoint_tick(sim, rng);
        }
    };
    classify_counts(sim.counts(), k, interactions, stabilized, initial_plurality)
}

/// Whether no edge of `graph` can change any state under `proto` — the
/// exact graph-silence criterion, from explicit per-agent states.
pub(crate) fn graph_silent(
    proto: &UndecidedStateDynamics,
    graph: &Graph,
    states: &[usize],
) -> bool {
    graph.edges().iter().all(|&(a, b)| {
        let (sa, sb) = (states[a as usize], states[b as usize]);
        proto.is_noop(sa, sb) && proto.is_noop(sb, sa)
    })
}

/// Chunked drive of the concrete agentwise engine on an interaction graph
/// — the legacy `stabilize_agent_graph_ticking` body, generalized to
/// optional ticker and observer. The count-level silence criterion inside
/// `run_to_silence` misses frozen configurations on disconnected graphs,
/// so chunk boundaries interleave the exact O(m) edge scan.
pub(crate) fn drive_agent_graph_chunked(
    sim: &mut AgentSimulator<UndecidedStateDynamics, GraphScheduler>,
    k: usize,
    rng: &mut SimRng,
    budget: u64,
    initial_plurality: Option<usize>,
    mut ticker: Option<&mut (dyn RunTicker + '_)>,
    mut observer: Option<&mut (dyn SimObserver + '_)>,
) -> StabilizationResult {
    let chunk = (4 * Simulator::population(sim)).max(1 << 16);
    let mut stopped = false;
    let (interactions, stabilized) = loop {
        let done = Simulator::interactions(sim);
        if Simulator::is_silent(sim)
            || graph_silent(sim.protocol(), sim.scheduler().graph(), sim.states())
        {
            break (done, true);
        }
        if done >= budget || stopped {
            break (done, false);
        }
        let horizon = ticker.as_deref().map_or(u64::MAX, |t| t.horizon(done));
        let step = chunk.min(budget - done).min(horizon).max(1);
        match observer.as_deref_mut() {
            Some(obs) => {
                let mut watch = StopWatch {
                    inner: obs,
                    stopped: false,
                };
                Simulator::advance_observed(sim, rng, step, &mut watch);
                stopped = watch.stopped;
            }
            None => {
                sim.run_to_silence(rng, step);
            }
        }
        if let Some(t) = ticker.as_deref_mut() {
            t.tick(sim);
            t.checkpoint_tick(sim, rng);
        }
    };
    classify_counts(
        Simulator::counts(sim),
        k,
        interactions,
        stabilized,
        initial_plurality,
    )
}

/// The outcome of one replica lane, classified exactly as a scalar run
/// would be: counts at the end of the drive, stabilization clock in the
/// lane's *private* interaction clock (the shared draw clock — directly
/// comparable to a scalar run's interaction count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneOutcome {
    /// The lane index (bit position in the packed words).
    pub lane: u32,
    /// The lane's classified result. For a lane still running at the end
    /// of the drive the outcome is a timeout at the current draw clock.
    pub result: StabilizationResult,
}

/// Per-lane results of a replica ensemble run, read off a kept engine.
///
/// The *aggregate* [`StabilizationResult`] a replica drive returns
/// classifies the lane-summed counts: it is consensus only when every lane
/// elected the *same* winner, and otherwise reports a frozen mixture even
/// though each individual lane stabilized cleanly. This type recovers what
/// the ensemble actually measured — one classified outcome per lane —
/// which is what the statistical consumers (KS suites, `topology_sweep`
/// cells, `sim_stats` summaries) want.
///
/// Built generically from the [`Simulator`] lane accessors, so it also
/// works on scalar engines (a 1-lane ensemble).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleOutcome {
    /// One classified outcome per lane, in lane order.
    pub lanes: Vec<LaneOutcome>,
}

impl EnsembleOutcome {
    /// Read the per-lane outcomes off a driven engine. `k` is the opinion
    /// count; `initial_plurality` feeds each lane's plurality bookkeeping
    /// (every lane starts from a permutation of the same configuration, so
    /// one value serves all lanes).
    pub fn from_simulator(
        sim: &dyn Simulator,
        k: usize,
        initial_plurality: Option<usize>,
    ) -> EnsembleOutcome {
        let lanes = (0..sim.lanes())
            .map(|lane| {
                let counts = sim.lane_counts(lane);
                let stabilized_at = sim.lane_stabilized_at(lane);
                let clock = stabilized_at.unwrap_or_else(|| sim.lane_clock());
                LaneOutcome {
                    lane,
                    result: classify_counts(
                        &counts,
                        k,
                        clock,
                        stabilized_at.is_some(),
                        initial_plurality,
                    ),
                }
            })
            .collect();
        EnsembleOutcome { lanes }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the ensemble has no lanes (it never does when read off an
    /// engine, but `Vec`-like types carry the pair).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// How many lanes stabilized within the budget.
    pub fn stabilized_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| l.result.stabilized()).count()
    }

    /// Whether every lane stabilized within the budget.
    pub fn all_stabilized(&self) -> bool {
        self.stabilized_lanes() == self.lanes.len()
    }

    /// The stabilization clocks of the lanes that stabilized, in lane
    /// order, as `f64` — the sample the `sim_stats` summaries and KS
    /// comparisons consume.
    pub fn stabilization_times(&self) -> Vec<f64> {
        self.lanes
            .iter()
            .filter(|l| l.result.stabilized())
            .map(|l| l.result.interactions as f64)
            .collect()
    }

    /// How many lanes elected `opinion`.
    pub fn wins_for(&self, opinion: usize) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.result.outcome == crate::stabilization::ConsensusOutcome::Winner(opinion))
            .count()
    }

    /// How many lanes the initial plurality opinion won.
    pub fn plurality_wins(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.result.plurality_won())
            .count()
    }
}
