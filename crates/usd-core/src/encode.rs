//! Compact binary encoding of USD trajectories.
//!
//! A Figure-1 run at n = 10⁶ records ~100 snapshots of 28 counts; sweeps
//! record far more. This module provides a small, versioned, little-endian
//! binary format (built on the `bytes` crate) so experiment binaries can
//! persist raw traces cheaply and reload them for re-plotting without
//! re-simulating.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  u32  = 0x5553_4454  ("USDT")
//! version u16 = 1
//! k      u16
//! n      u64
//! count  u64                 — number of snapshots
//! count × { t u64, x[0..k] u64 ×k, u u64 }
//! ```

use crate::config::UsdConfig;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x5553_4454;
const VERSION: u16 = 1;

/// A recorded trajectory: interaction stamps plus configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    /// Population size (redundant with snapshots; kept for validation).
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// `(interaction, configuration)` snapshots in increasing order.
    pub snapshots: Vec<(u64, UsdConfig)>,
}

/// Errors from decoding a trajectory blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic number did not match.
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer ended before the declared content.
    Truncated,
    /// A snapshot's counts did not sum to the declared n.
    InconsistentPopulation {
        /// Index of the offending snapshot.
        snapshot: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08X}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "truncated trajectory blob"),
            DecodeError::InconsistentPopulation { snapshot } => {
                write!(f, "snapshot {snapshot} does not sum to n")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Trajectory {
    /// Create an empty trajectory for a `(n, k)` system.
    pub fn new(n: u64, k: usize) -> Self {
        assert!(k >= 1);
        Trajectory {
            n,
            k,
            snapshots: Vec::new(),
        }
    }

    /// Append a snapshot. Panics if the configuration shape mismatches.
    pub fn push(&mut self, interactions: u64, config: UsdConfig) {
        assert_eq!(config.k(), self.k, "k mismatch");
        assert_eq!(config.n(), self.n, "n mismatch");
        if let Some(&(last, _)) = self.snapshots.last() {
            assert!(interactions >= last, "snapshots must be ordered");
        }
        self.snapshots.push((interactions, config));
    }

    /// Encode into a binary blob.
    pub fn encode(&self) -> Bytes {
        let per = 8 + 8 * (self.k + 1);
        let mut buf = BytesMut::with_capacity(4 + 2 + 2 + 8 + 8 + self.snapshots.len() * per);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(self.k as u16);
        buf.put_u64_le(self.n);
        buf.put_u64_le(self.snapshots.len() as u64);
        for (t, cfg) in &self.snapshots {
            buf.put_u64_le(*t);
            for &x in cfg.opinions() {
                buf.put_u64_le(x);
            }
            buf.put_u64_le(cfg.u());
        }
        buf.freeze()
    }

    /// Decode from a binary blob.
    pub fn decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < 24 {
            return Err(DecodeError::Truncated);
        }
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let k = buf.get_u16_le() as usize;
        let n = buf.get_u64_le();
        let count = buf.get_u64_le() as usize;
        let per = 8 + 8 * (k + 1);
        if buf.remaining() < count * per {
            return Err(DecodeError::Truncated);
        }
        let mut snapshots = Vec::with_capacity(count);
        for idx in 0..count {
            let t = buf.get_u64_le();
            let mut x = Vec::with_capacity(k);
            for _ in 0..k {
                x.push(buf.get_u64_le());
            }
            let u = buf.get_u64_le();
            let cfg = UsdConfig::new(x, u);
            if cfg.n() != n {
                return Err(DecodeError::InconsistentPopulation { snapshot: idx });
            }
            snapshots.push((t, cfg));
        }
        Ok(Trajectory { n, k, snapshots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trajectory {
        let mut t = Trajectory::new(100, 3);
        t.push(0, UsdConfig::decided(vec![40, 30, 30]));
        t.push(50, UsdConfig::new(vec![30, 20, 20], 30));
        t.push(500, UsdConfig::new(vec![100, 0, 0], 0));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let blob = t.encode();
        let back = Trajectory::decode(blob).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trajectory_roundtrips() {
        let t = Trajectory::new(10, 2);
        let back = Trajectory::decode(t.encode()).unwrap();
        assert_eq!(back, t);
        assert!(back.snapshots.is_empty());
    }

    #[test]
    fn bad_magic_detected() {
        let mut blob = BytesMut::from(&sample().encode()[..]);
        blob[0] ^= 0xFF;
        match Trajectory::decode(blob.freeze()) {
            Err(DecodeError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_detected() {
        let mut blob = BytesMut::from(&sample().encode()[..]);
        blob[4] = 99;
        assert_eq!(
            Trajectory::decode(blob.freeze()),
            Err(DecodeError::BadVersion(99))
        );
    }

    #[test]
    fn truncation_detected() {
        let blob = sample().encode();
        let cut = blob.slice(..blob.len() - 5);
        assert_eq!(Trajectory::decode(cut), Err(DecodeError::Truncated));
        // Header-only truncation too.
        assert_eq!(
            Trajectory::decode(Bytes::from_static(&[1, 2, 3])),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn inconsistent_population_detected() {
        // Hand-craft a blob whose snapshot counts do not sum to n.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(2); // k
        buf.put_u64_le(10); // n
        buf.put_u64_le(1); // one snapshot
        buf.put_u64_le(0); // t
        buf.put_u64_le(3); // x0
        buf.put_u64_le(3); // x1
        buf.put_u64_le(3); // u  → total 9 ≠ 10
        assert_eq!(
            Trajectory::decode(buf.freeze()),
            Err(DecodeError::InconsistentPopulation { snapshot: 0 })
        );
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn out_of_order_push_panics() {
        let mut t = Trajectory::new(10, 2);
        t.push(5, UsdConfig::new(vec![5, 5], 0));
        t.push(4, UsdConfig::new(vec![5, 5], 0));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DecodeError::BadMagic(0xDEAD_BEEF).to_string(),
            "bad magic 0xDEADBEEF"
        );
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
    }
}
