//! Undecided State Dynamics (USD) for plurality consensus — the object of
//! study of El-Hayek, Elsässer & Schmid, *"An Almost Tight Lower Bound for
//! Plurality Consensus with Undecided State Dynamics in the Population
//! Protocol Model"* (PODC 2025).
//!
//! # The protocol
//!
//! Each of `n` agents holds one of `k` opinions or the undecided state ⊥
//! (k + 1 states total). When the uniform random scheduler brings two agents
//! together:
//!
//! * two **different opinions** clash: both agents become undecided;
//! * a **decided** agent meets an **undecided** one: the undecided agent
//!   adopts the opinion;
//! * anything else (same opinion, or two undecided agents) changes nothing.
//!
//! The system *stabilizes* when every agent holds the same opinion (or, in
//! the degenerate absorbing case, when every agent is undecided).
//!
//! # What this crate provides
//!
//! * [`protocol::UndecidedStateDynamics`] — the protocol as a
//!   [`pop_proto::Protocol`], so the generic substrate simulators run it;
//! * [`config::UsdConfig`] — the paper's configuration vector
//!   x = (x₁, …, x_k, u) with invariants, orderings, and gap accessors;
//! * [`init`] — initial-configuration families, including the paper's
//!   lower-bound family (equal minorities, majority bias
//!   β = O((√n/(k log n))^¼ · √(n log n))) and the Figure 1 family;
//! * [`dynamics`] — two specialized exact simulators:
//!   [`dynamics::SequentialUsd`] (O(log k) per interaction) and
//!   [`dynamics::SkipAheadUsd`] (geometric skipping over no-op
//!   interactions, exact in distribution, for large-n sweeps);
//! * [`backend`] — uniform selection among those engines and the three
//!   generic `pop-proto` backends (`agent`, `count`, and the batch-leaping
//!   `batch` for n ≥ 10⁸), one entry point for experiments and the CLI;
//! * [`analysis`] — every quantity the proof manipulates: the plateau
//!   n/2 − n/4k, the per-opinion threshold uᵢ = (n − xᵢ)/2, closed-form
//!   one-step drifts of u(t) and Δᵢⱼ(t), the maximum pairwise gap, and the
//!   monochromatic distance of Becchetti et al.;
//! * [`stabilization`] — consensus detection and the doubling-time
//!   detectors used by Lemmas 3.3/3.4 and Figure 1 (right);
//! * [`theory`] — the paper's bound curves (Theorem 3.5 lower bound,
//!   Amir et al. upper bound, admissible-bias and valid-k predicates);
//! * [`phases`] — segmentation of a run into the ramp / plateau / endgame
//!   phases discussed in §2;
//! * [`encode`] — compact binary trace encoding for large experiment runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod backend;
pub mod checkpoint;
pub mod config;
pub mod dynamics;
pub mod encode;
pub mod init;
pub mod mean_field;
pub mod phases;
pub mod protocol;
pub mod recording;
pub mod runspec;
pub mod stabilization;
pub mod theory;

pub use analysis::{
    expected_gap_drift, expected_undecided_drift, max_gap, monochromatic_distance,
    opinion_threshold, undecided_plateau,
};
pub use backend::{
    make_simulator, make_topology_simulator, Backend, Capabilities, ObservationGranularity,
};
#[allow(deprecated)]
pub use backend::{stabilize_on_topology, stabilize_with_backend};
pub use checkpoint::{RunCheckpoint, RunIdentity};
pub use config::UsdConfig;
pub use dynamics::{
    SequentialGeneric, SequentialUsd, SkipAheadGeneric, SkipAheadUsd, UsdEvent, UsdSimulator,
};
pub use init::InitialConfigBuilder;
pub use protocol::{UndecidedStateDynamics, UsdState};
pub use recording::record_run;
pub use runspec::{EnsembleOutcome, LaneOutcome, RunSpec, DEFAULT_REPLICAS};
pub use stabilization::{ConsensusOutcome, DoublingDetector, StabilizationResult};
pub use theory::Bounds;
