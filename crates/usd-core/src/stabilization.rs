//! Stabilization and doubling-time detection.
//!
//! * [`StabilizationResult`] — outcome of running a configuration to
//!   silence: winner, interaction count, and whether the plurality won
//!   (the correctness criterion of approximate plurality consensus).
//! * [`DoublingDetector`] — watches a scalar trajectory and records the
//!   first time it crosses a target. The lemma experiments instantiate it
//!   for the three quantities the paper tracks: x₁ doubling (Figure 1
//!   right), a single opinion growing from 3n/2k to 2n/k (Lemma 3.3), and
//!   the maximum gap doubling from α/2 to α (Lemma 3.4).

use crate::config::UsdConfig;
use crate::dynamics::{run_until_stable, UsdSimulator};
use sim_stats::rng::SimRng;

/// How a stabilization run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusOutcome {
    /// Consensus on the given opinion (0-based).
    Winner(usize),
    /// The degenerate all-undecided absorbing state.
    AllUndecided,
    /// Silent without consensus: the dynamics froze in a mixed
    /// configuration. Impossible under the clique scheduler (and on any
    /// connected interaction graph), but disconnected topologies can
    /// strand opinions in separate components.
    Frozen,
    /// The interaction budget ran out first.
    Timeout,
}

/// Result of running an initial configuration to stabilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizationResult {
    /// Outcome of the run.
    pub outcome: ConsensusOutcome,
    /// Interactions at the stopping point.
    pub interactions: u64,
    /// The initial plurality opinion (for correctness accounting).
    pub initial_plurality: Option<usize>,
}

impl StabilizationResult {
    /// Whether the run reached a silent configuration (consensus,
    /// all-undecided, or a disconnected-topology freeze).
    pub fn stabilized(&self) -> bool {
        !matches!(self.outcome, ConsensusOutcome::Timeout)
    }

    /// Whether the initial plurality opinion won.
    pub fn plurality_won(&self) -> bool {
        match (self.outcome, self.initial_plurality) {
            (ConsensusOutcome::Winner(w), Some(p)) => w == p,
            _ => false,
        }
    }

    /// Parallel time at the stopping point.
    pub fn parallel_time(&self, n: u64) -> f64 {
        self.interactions as f64 / n as f64
    }
}

/// Run a simulator to stabilization (or budget exhaustion).
pub fn stabilize<S: UsdSimulator>(
    sim: &mut S,
    rng: &mut SimRng,
    budget: u64,
) -> StabilizationResult {
    let initial_plurality = {
        let cfg = sim.config();
        cfg.plurality()
    };
    let (interactions, stable) = run_until_stable(sim, rng, budget, |_, _| {});
    let outcome = if !stable {
        ConsensusOutcome::Timeout
    } else if let Some(w) = sim.winner() {
        ConsensusOutcome::Winner(w)
    } else {
        ConsensusOutcome::AllUndecided
    };
    StabilizationResult {
        outcome,
        interactions,
        initial_plurality,
    }
}

/// First-crossing detector for a scalar trajectory.
///
/// Feed it `(interactions, value)` observations in increasing interaction
/// order; it records the first observation at which `value >= target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoublingDetector {
    target: f64,
    hit_at: Option<u64>,
}

impl DoublingDetector {
    /// Detector firing when the observed value first reaches `target`.
    pub fn new(target: f64) -> Self {
        DoublingDetector {
            target,
            hit_at: None,
        }
    }

    /// The target value.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Offer an observation; returns `true` the first time the target is
    /// reached.
    pub fn offer(&mut self, interactions: u64, value: f64) -> bool {
        if self.hit_at.is_none() && value >= self.target {
            self.hit_at = Some(interactions);
            return true;
        }
        false
    }

    /// The interaction count at first crossing, if it happened.
    pub fn hit_at(&self) -> Option<u64> {
        self.hit_at
    }
}

/// Measurement harness for the three doubling quantities: runs `sim` until
/// either the watched value crosses its target or the budget/stabilization
/// ends the run. Returns the crossing interaction count if reached.
///
/// `watch` extracts the watched scalar from the simulator after every
/// effective event (no-ops cannot change it).
pub fn first_crossing<S: UsdSimulator>(
    sim: &mut S,
    rng: &mut SimRng,
    budget: u64,
    target: f64,
    mut watch: impl FnMut(&S) -> f64,
) -> Option<u64> {
    if watch(sim) >= target {
        return Some(sim.interactions());
    }
    let mut detector = DoublingDetector::new(target);
    while sim.interactions() < budget {
        sim.step_effective(rng)?;
        if detector.offer(sim.interactions(), watch(sim)) {
            return detector.hit_at();
        }
    }
    None
}

/// Convenience: the watched scalar for Lemma 3.4 — the maximum pairwise gap.
pub fn watch_max_gap<S: UsdSimulator>(sim: &S) -> f64 {
    let xs = sim.opinions();
    let max = xs.iter().max().copied().unwrap_or(0);
    let min = xs.iter().min().copied().unwrap_or(0);
    (max - min) as f64
}

/// Convenience: the watched scalar for Lemma 3.3 / Figure 1 (right) — a
/// single opinion's support.
pub fn watch_opinion<S: UsdSimulator>(i: usize) -> impl Fn(&S) -> f64 {
    move |sim| sim.opinions()[i] as f64
}

/// Convenience: the watched scalar for Lemma 3.1 — the undecided count.
pub fn watch_undecided<S: UsdSimulator>(sim: &S) -> f64 {
    sim.undecided() as f64
}

/// Classify whether `result` solved approximate plurality consensus for the
/// given initial configuration (plurality won, given sufficient bias).
pub fn correct_for(config: &UsdConfig, result: &StabilizationResult) -> bool {
    match result.outcome {
        ConsensusOutcome::Winner(w) => config.plurality() == Some(w),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{SequentialUsd, SkipAheadUsd};

    #[test]
    fn stabilize_reports_winner_and_correctness() {
        let config = UsdConfig::decided(vec![800, 200]);
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(1);
        let result = stabilize(&mut sim, &mut rng, 100_000_000);
        assert!(result.stabilized());
        assert_eq!(result.outcome, ConsensusOutcome::Winner(0));
        assert!(result.plurality_won());
        assert!(correct_for(&config, &result));
        assert!(result.interactions > 0);
    }

    #[test]
    fn stabilize_timeout() {
        let config = UsdConfig::decided(vec![500, 500]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(2);
        let result = stabilize(&mut sim, &mut rng, 100);
        assert_eq!(result.outcome, ConsensusOutcome::Timeout);
        assert!(!result.stabilized());
        assert!(!result.plurality_won());
    }

    #[test]
    fn stabilize_all_undecided() {
        let config = UsdConfig::decided(vec![1, 1]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(3);
        let result = stabilize(&mut sim, &mut rng, 10_000);
        assert_eq!(result.outcome, ConsensusOutcome::AllUndecided);
        assert!(result.stabilized());
        assert!(!correct_for(&config, &result));
    }

    #[test]
    fn doubling_detector_first_crossing_only() {
        let mut d = DoublingDetector::new(10.0);
        assert!(!d.offer(1, 5.0));
        assert!(d.offer(2, 10.0));
        assert!(!d.offer(3, 20.0), "fires only once");
        assert_eq!(d.hit_at(), Some(2));
    }

    #[test]
    fn first_crossing_immediate_when_already_past_target() {
        let config = UsdConfig::decided(vec![50, 50]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(4);
        let hit = first_crossing(&mut sim, &mut rng, 1000, 40.0, watch_opinion(0));
        assert_eq!(hit, Some(0));
    }

    #[test]
    fn first_crossing_detects_undecided_ramp() {
        // From an all-decided balanced start, u ramps up quickly; the
        // crossing of u >= n/4 must happen well before n log n interactions.
        let n = 1_000u64;
        let config = UsdConfig::decided(vec![500, 500]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(5);
        let hit = first_crossing(&mut sim, &mut rng, 100_000, 250.0, watch_undecided);
        let t = hit.expect("u must reach n/4");
        assert!(t < 10 * n, "took too long: {t}");
    }

    #[test]
    fn first_crossing_none_when_silent_first() {
        // (1,1) annihilates to all-undecided; opinion 0 can never reach 2.
        let config = UsdConfig::decided(vec![1, 1]);
        let mut sim = SequentialUsd::new(&config);
        let mut rng = SimRng::new(6);
        let hit = first_crossing(&mut sim, &mut rng, 100_000, 2.0, watch_opinion(0));
        assert_eq!(hit, None);
    }

    #[test]
    fn watch_max_gap_computes_spread() {
        let sim = SequentialUsd::new(&UsdConfig::decided(vec![30, 12, 8]));
        assert_eq!(watch_max_gap(&sim), 22.0);
    }

    #[test]
    fn parallel_time_conversion() {
        let r = StabilizationResult {
            outcome: ConsensusOutcome::Winner(0),
            interactions: 5_000,
            initial_plurality: Some(0),
        };
        assert!((r.parallel_time(1_000) - 5.0).abs() < 1e-12);
    }
}
