//! Mean-field (fluid-limit) approximation of the Undecided State Dynamics.
//!
//! Dividing the exact one-step drifts of [`crate::analysis`] by n and
//! rescaling time so one unit = n interactions (parallel time) yields the
//! ODE system over opinion fractions aᵢ = xᵢ/n and the undecided fraction
//! υ = u/n:
//!
//! ```text
//! daᵢ/dt = 2aᵢ(2υ − 1 + aᵢ)
//! dυ/dt  = 2((1 − υ)² − Σⱼaⱼ²) − 2υ(1 − υ)
//! ```
//!
//! This is the deterministic skeleton behind the paper's §2 intuition:
//! the plateau, the per-opinion thresholds, and the endgame collapse are
//! all visible in the flow. The module integrates the system with a
//! classical RK4 stepper and is tested against both conservation laws and
//! the stochastic simulation at large n (where the fluid limit is tight).
//!
//! Note what the ODE *cannot* show — and why the paper needs probability:
//! with exactly equal minorities the flow keeps them equal forever, while
//! the stochastic system breaks the tie by random drift. The lower bound
//! is precisely about how slowly that stochastic tie-breaking compounds.

/// Mean-field state: opinion fractions plus the undecided fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanFieldState {
    /// Opinion fractions a₁…a_k.
    pub a: Vec<f64>,
    /// Undecided fraction υ.
    pub u: f64,
}

impl MeanFieldState {
    /// Build from a concrete configuration.
    pub fn from_config(config: &crate::config::UsdConfig) -> Self {
        let n = config.n() as f64;
        MeanFieldState {
            a: config.opinions().iter().map(|&x| x as f64 / n).collect(),
            u: config.u() as f64 / n,
        }
    }

    /// Total mass (must stay 1 under the flow).
    pub fn total(&self) -> f64 {
        self.a.iter().sum::<f64>() + self.u
    }

    /// The right-hand side of the ODE system.
    pub fn derivative(&self) -> MeanFieldState {
        let sum_sq: f64 = self.a.iter().map(|&x| x * x).sum();
        let decided = 1.0 - self.u;
        let da: Vec<f64> = self
            .a
            .iter()
            .map(|&ai| 2.0 * ai * (2.0 * self.u - 1.0 + ai))
            .collect();
        let du = 2.0 * (decided * decided - sum_sq) - 2.0 * self.u * decided;
        MeanFieldState { a: da, u: du }
    }

    fn axpy(&self, scale: f64, d: &MeanFieldState) -> MeanFieldState {
        MeanFieldState {
            a: self
                .a
                .iter()
                .zip(&d.a)
                .map(|(&x, &dx)| x + scale * dx)
                .collect(),
            u: self.u + scale * d.u,
        }
    }

    /// One classical RK4 step of size `h` (in parallel-time units).
    pub fn rk4_step(&self, h: f64) -> MeanFieldState {
        let k1 = self.derivative();
        let k2 = self.axpy(h / 2.0, &k1).derivative();
        let k3 = self.axpy(h / 2.0, &k2).derivative();
        let k4 = self.axpy(h, &k3).derivative();
        MeanFieldState {
            a: (0..self.a.len())
                .map(|i| self.a[i] + h / 6.0 * (k1.a[i] + 2.0 * k2.a[i] + 2.0 * k3.a[i] + k4.a[i]))
                .collect(),
            u: self.u + h / 6.0 * (k1.u + 2.0 * k2.u + 2.0 * k3.u + k4.u),
        }
    }
}

/// Integrate the mean-field flow from `initial` for `t_end` parallel-time
/// units with step `h`, recording every `record_every`-th step.
/// Returns `(times, states)`.
pub fn integrate(
    initial: MeanFieldState,
    t_end: f64,
    h: f64,
    record_every: usize,
) -> (Vec<f64>, Vec<MeanFieldState>) {
    assert!(h > 0.0 && t_end >= 0.0);
    assert!(record_every >= 1);
    let mut times = vec![0.0];
    let mut states = vec![initial.clone()];
    let mut state = initial;
    let steps = (t_end / h).ceil() as usize;
    for s in 1..=steps {
        state = state.rk4_step(h);
        if s % record_every == 0 || s == steps {
            times.push(s as f64 * h);
            states.push(state.clone());
        }
    }
    (times, states)
}

/// The mean-field undecided plateau for equal opinions: the positive root
/// of dυ/dt = 0 with aᵢ = (1−υ)/k, which the paper approximates as
/// 1/2 − 1/4k + O(1/k²).
pub fn plateau_fraction(k: usize) -> f64 {
    assert!(k >= 1);
    // dυ/dt = 0 with σ2 = (1−υ)²/k:
    // 2(1−υ)²(1 − 1/k) = 2υ(1−υ)  ⇒  (1−υ)(1−1/k) = υ
    // ⇒ υ = (1 − 1/k) / (2 − 1/k)
    let kf = k as f64;
    (1.0 - 1.0 / kf) / (2.0 - 1.0 / kf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UsdConfig;
    use crate::init::InitialConfigBuilder;

    #[test]
    fn mass_is_conserved_by_the_flow() {
        let initial = MeanFieldState::from_config(&UsdConfig::new(vec![300, 200, 100], 400));
        let (_, states) = integrate(initial, 20.0, 0.01, 100);
        for s in &states {
            assert!(
                (s.total() - 1.0).abs() < 1e-9,
                "mass drifted: {}",
                s.total()
            );
        }
    }

    #[test]
    fn plateau_matches_papers_approximation() {
        for &k in &[8usize, 27, 100] {
            let exact = plateau_fraction(k);
            let paper = 0.5 - 1.0 / (4.0 * k as f64);
            assert!(
                (exact - paper).abs() < 1.0 / (k as f64 * k as f64),
                "k={k}: exact {exact} vs paper approx {paper}"
            );
        }
    }

    #[test]
    fn flow_settles_on_the_plateau_from_balanced_start() {
        let k = 10;
        let initial = MeanFieldState::from_config(&UsdConfig::decided(vec![100; 10]));
        let (_, states) = integrate(initial, 30.0, 0.005, 1000);
        let last = states.last().unwrap();
        let plateau = plateau_fraction(k);
        assert!(
            (last.u - plateau).abs() < 0.01,
            "υ settled at {} vs plateau {}",
            last.u,
            plateau
        );
    }

    #[test]
    fn equal_minorities_stay_equal_in_the_flow() {
        // The deterministic flow cannot break ties — the reason the paper's
        // analysis is genuinely probabilistic.
        let initial = MeanFieldState::from_config(&UsdConfig::decided(vec![260, 250, 250, 240]));
        let (_, states) = integrate(initial, 10.0, 0.01, 100);
        for s in &states {
            assert!(
                (s.a[1] - s.a[2]).abs() < 1e-12,
                "tied opinions diverged deterministically"
            );
        }
    }

    #[test]
    fn majority_eventually_dominates_in_the_flow() {
        let initial = MeanFieldState::from_config(&UsdConfig::decided(vec![300, 240, 230, 230]));
        let (_, states) = integrate(initial, 200.0, 0.01, 1000);
        let last = states.last().unwrap();
        assert!(
            last.a[0] > 0.9,
            "majority fraction only reached {}",
            last.a[0]
        );
        for i in 1..4 {
            assert!(last.a[i] < 0.01, "minority {i} survived: {}", last.a[i]);
        }
    }

    #[test]
    fn threshold_sign_structure() {
        // daᵢ/dt > 0 iff υ > (1 − aᵢ)/2 — the per-opinion threshold of §2.
        let mk = |ai: f64, u: f64| {
            let rest = 1.0 - ai - u;
            MeanFieldState {
                a: vec![ai, rest],
                u,
            }
        };
        let above = mk(0.2, 0.45); // threshold = 0.4
        assert!(above.derivative().a[0] > 0.0);
        let below = mk(0.2, 0.35);
        assert!(below.derivative().a[0] < 0.0);
        let at = mk(0.2, 0.4);
        assert!(at.derivative().a[0].abs() < 1e-12);
    }

    #[test]
    fn mean_field_tracks_stochastic_simulation_at_large_n() {
        use crate::dynamics::{SkipAheadUsd, UsdSimulator};
        use sim_stats::rng::SimRng;
        // Integrate 5 parallel-time units and compare υ with one stochastic
        // run at n = 200k (fluid limit error is O(1/√n) ≈ 0.002).
        let n = 200_000u64;
        let k = 5usize;
        let config = InitialConfigBuilder::new(n, k).figure1();
        let initial = MeanFieldState::from_config(&config);
        let horizon = 5.0;
        let (_, states) = integrate(initial, horizon, 0.001, usize::MAX);
        let fluid_u = states.last().unwrap().u;

        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(12);
        let target = (horizon * n as f64) as u64;
        while sim.interactions() < target {
            if sim.step_effective(&mut rng).is_none() {
                break;
            }
        }
        let stochastic_u = sim.undecided() as f64 / n as f64;
        assert!(
            (fluid_u - stochastic_u).abs() < 0.01,
            "fluid υ {fluid_u} vs stochastic {stochastic_u}"
        );
    }

    #[test]
    fn integrate_records_requested_cadence() {
        let initial = MeanFieldState::from_config(&UsdConfig::decided(vec![50, 50]));
        let (times, states) = integrate(initial, 1.0, 0.1, 2);
        assert_eq!(times.len(), states.len());
        assert_eq!(times[0], 0.0);
        assert!((times.last().unwrap() - 1.0).abs() < 1e-9);
    }
}
