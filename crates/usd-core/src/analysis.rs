//! Exact one-step analysis quantities.
//!
//! These are the quantities the proof manipulates, computed exactly for a
//! concrete configuration (no asymptotics):
//!
//! * interaction probabilities — the chance the next interaction is a clash,
//!   an adoption (overall or of a specific opinion), or a no-op;
//! * the conditional one-step drifts E[u(t+1) − u(t) | x] (Lemma 3.1) and
//!   E[Δᵢⱼ(t+1) − Δᵢⱼ(t) | x] (Lemma 3.4);
//! * the per-opinion threshold uᵢ = (n − xᵢ)/2 — opinion i grows in
//!   expectation iff u > uᵢ (§2);
//! * the plateau value n/2 − n/4k around which u(t) settles;
//! * the monochromatic distance md(c) of Becchetti et al. (SODA '15).
//!
//! The drift formulas are verified in the tests against brute-force
//! enumeration over all ordered agent pairs, so the closed forms used by
//! the lemma-verification experiments are themselves machine-checked.

use crate::config::UsdConfig;

/// The plateau value n/2 − n/(4k) that u(t) settles around (§2, Figure 1).
pub fn undecided_plateau(n: u64, k: usize) -> f64 {
    assert!(k >= 1);
    n as f64 / 2.0 - n as f64 / (4.0 * k as f64)
}

/// The threshold uᵢ = (n − xᵢ)/2 for opinion i: in expectation xᵢ grows
/// iff u > uᵢ. Derived from the exact drift
/// E[xᵢ(t+1) − xᵢ(t) | x] = 2xᵢ(2u − n + xᵢ) / (n(n−1)).
pub fn opinion_threshold(n: u64, x_i: u64) -> f64 {
    (n as f64 - x_i as f64) / 2.0
}

/// Maximum pairwise gap max_{i,j}(xᵢ − xⱼ) of a configuration.
pub fn max_gap(config: &UsdConfig) -> u64 {
    config.max_gap()
}

/// Monochromatic distance of Becchetti et al. (SODA '15):
/// md(c) = Σᵢ (xᵢ / x₁)², where x₁ is the plurality count. Lies in [1, k]
/// for any configuration with a positive plurality; the Gossip-model
/// stabilization time is O(md(c) · log n).
pub fn monochromatic_distance(config: &UsdConfig) -> f64 {
    let x1 = config
        .plurality()
        .map(|i| config.x(i))
        .expect("md undefined for zero-support configurations");
    assert!(x1 > 0, "md undefined when the plurality count is 0");
    let x1 = x1 as f64;
    config
        .opinions()
        .iter()
        .map(|&v| {
            let r = v as f64 / x1;
            r * r
        })
        .sum()
}

/// Exact probabilities of the three interaction outcomes from a
/// configuration, over the uniform random ordered pair of distinct agents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionProbabilities {
    /// P[two agents with different opinions meet] — u increases by 2.
    pub clash: f64,
    /// P[a decided agent meets an undecided one] — u decreases by 1.
    pub adopt: f64,
    /// P[nothing changes].
    pub noop: f64,
}

/// Compute the exact outcome probabilities for the next interaction.
pub fn interaction_probabilities(config: &UsdConfig) -> InteractionProbabilities {
    let n = config.n();
    assert!(n >= 2, "need at least 2 agents");
    let nf = n as f64;
    let pairs = nf * (nf - 1.0); // ordered pairs
    let u = config.u() as f64;
    let d = config.decided_count() as f64;
    let s2: f64 = config
        .opinions()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum();
    let clash = (d * d - s2) / pairs; // Σ_{i≠j} xᵢxⱼ ordered
    let adopt = 2.0 * d * u / pairs;
    InteractionProbabilities {
        clash,
        adopt,
        noop: 1.0 - clash - adopt,
    }
}

/// Exact conditional drift E[u(t+1) − u(t) | x(t) = x]: +2 per clash,
/// −1 per adoption (the quantity bounded in Lemma 3.1).
pub fn expected_undecided_drift(config: &UsdConfig) -> f64 {
    let p = interaction_probabilities(config);
    2.0 * p.clash - p.adopt
}

/// Exact conditional drift E[xᵢ(t+1) − xᵢ(t) | x(t) = x]
/// = 2xᵢ(2u − n + xᵢ)/(n(n−1)) (the quantity bounded in Lemma 3.3).
pub fn expected_opinion_drift(config: &UsdConfig, i: usize) -> f64 {
    let n = config.n() as f64;
    let x_i = config.x(i) as f64;
    let u = config.u() as f64;
    2.0 * x_i * (2.0 * u - n + x_i) / (n * (n - 1.0))
}

/// Exact conditional drift E[Δᵢⱼ(t+1) − Δᵢⱼ(t) | x(t) = x]
/// = 2(xᵢ − xⱼ)(2u − n + xᵢ + xⱼ)/(n(n−1)) (Lemma 3.4's key identity).
pub fn expected_gap_drift(config: &UsdConfig, i: usize, j: usize) -> f64 {
    let n = config.n() as f64;
    let xi = config.x(i) as f64;
    let xj = config.x(j) as f64;
    let u = config.u() as f64;
    2.0 * (xi - xj) * (2.0 * u - n + xi + xj) / (n * (n - 1.0))
}

/// The probability that the next interaction changes Δᵢⱼ by +1 and by −1
/// (`p(t)` and `q(t)` of Lemma 3.4 are `plus + minus` and `plus − minus`).
pub fn gap_step_probabilities(config: &UsdConfig, i: usize, j: usize) -> (f64, f64) {
    let n = config.n() as f64;
    let pairs = n * (n - 1.0);
    let xi = config.x(i) as f64;
    let xj = config.x(j) as f64;
    let u = config.u() as f64;
    let others = n - u - xi - xj; // decided agents with opinions ∉ {i, j}
                                  // +1: i adopts (2·xᵢ·u) or j clashes with a third opinion (2·xⱼ·others).
    let plus = (2.0 * xi * u + 2.0 * xj * others) / pairs;
    // −1: j adopts or i clashes with a third opinion.
    let minus = (2.0 * xj * u + 2.0 * xi * others) / pairs;
    (plus, minus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::UndecidedStateDynamics;
    use pop_proto::Protocol;

    /// Brute-force reference: enumerate all ordered pairs of distinct
    /// agents, apply the transition, and average the change of a statistic.
    fn brute_force_drift(config: &UsdConfig, stat: impl Fn(&UsdConfig) -> f64) -> f64 {
        let k = config.k();
        let proto = UndecidedStateDynamics::new(k);
        let counts = config.to_count_config();
        let n = config.n() as f64;
        let base = stat(config);
        let mut acc = 0.0;
        for a in 0..=k {
            let ca = counts.count(a);
            if ca == 0 {
                continue;
            }
            for b in 0..=k {
                let cb = if a == b {
                    counts.count(b).saturating_sub(1)
                } else {
                    counts.count(b)
                };
                if cb == 0 {
                    continue;
                }
                let weight = ca as f64 * cb as f64 / (n * (n - 1.0));
                let (ta, tb) = proto.transition_indices(a, b);
                let mut next = counts.counts().to_vec();
                next[a] -= 1;
                next[b] -= 1;
                next[ta] += 1;
                next[tb] += 1;
                let next_cfg = UsdConfig::new(next[..k].to_vec(), next[k]);
                acc += weight * (stat(&next_cfg) - base);
            }
        }
        acc
    }

    fn test_config() -> UsdConfig {
        UsdConfig::new(vec![12, 9, 5], 14)
    }

    #[test]
    fn plateau_formula() {
        assert!((undecided_plateau(1_000_000, 27) - (500_000.0 - 9_259.259)).abs() < 0.01);
        assert_eq!(undecided_plateau(100, 1), 25.0);
    }

    #[test]
    fn probabilities_sum_to_one_and_match_brute_force() {
        let c = test_config();
        let p = interaction_probabilities(&c);
        assert!((p.clash + p.adopt + p.noop - 1.0).abs() < 1e-12);
        assert!(p.clash > 0.0 && p.adopt > 0.0 && p.noop > 0.0);

        // Brute force clash probability: Σ_{i≠j} xᵢxⱼ / (n(n−1)).
        let n = c.n() as f64;
        let mut clash = 0.0;
        for i in 0..c.k() {
            for j in 0..c.k() {
                if i != j {
                    clash += c.x(i) as f64 * c.x(j) as f64;
                }
            }
        }
        clash /= n * (n - 1.0);
        assert!((p.clash - clash).abs() < 1e-12);

        let adopt = 2.0 * c.decided_count() as f64 * c.u() as f64 / (n * (n - 1.0));
        assert!((p.adopt - adopt).abs() < 1e-12);
    }

    #[test]
    fn undecided_drift_matches_brute_force() {
        let c = test_config();
        let closed = expected_undecided_drift(&c);
        let brute = brute_force_drift(&c, |cfg| cfg.u() as f64);
        assert!(
            (closed - brute).abs() < 1e-10,
            "closed {closed} vs brute {brute}"
        );
    }

    #[test]
    fn opinion_drift_matches_brute_force() {
        let c = test_config();
        for i in 0..c.k() {
            let closed = expected_opinion_drift(&c, i);
            let brute = brute_force_drift(&c, |cfg| cfg.x(i) as f64);
            assert!(
                (closed - brute).abs() < 1e-10,
                "opinion {i}: closed {closed} vs brute {brute}"
            );
        }
    }

    #[test]
    fn gap_drift_matches_brute_force() {
        let c = test_config();
        for i in 0..c.k() {
            for j in 0..c.k() {
                if i == j {
                    continue;
                }
                let closed = expected_gap_drift(&c, i, j);
                let brute = brute_force_drift(&c, |cfg| cfg.gap(i, j) as f64);
                assert!(
                    (closed - brute).abs() < 1e-10,
                    "gap ({i},{j}): closed {closed} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn gap_step_probabilities_consistent_with_drift() {
        let c = test_config();
        let (plus, minus) = gap_step_probabilities(&c, 0, 2);
        let drift = expected_gap_drift(&c, 0, 2);
        assert!(
            (plus - minus - drift).abs() < 1e-12,
            "plus−minus {} vs drift {}",
            plus - minus,
            drift
        );
        assert!(plus >= 0.0 && minus >= 0.0 && plus + minus <= 1.0);
    }

    #[test]
    fn threshold_sign_governs_opinion_drift() {
        // Build configs straddling the threshold and check the drift sign.
        let n = 100u64;
        let x_i = 20u64;
        let threshold = opinion_threshold(n, x_i); // (100-20)/2 = 40
        assert_eq!(threshold, 40.0);
        // u above threshold: positive drift.
        let above = UsdConfig::new(vec![20, 100 - 20 - 45], 45);
        assert!(expected_opinion_drift(&above, 0) > 0.0);
        // u below threshold: negative drift.
        let below = UsdConfig::new(vec![20, 100 - 20 - 35], 35);
        assert!(expected_opinion_drift(&below, 0) < 0.0);
        // u exactly at threshold: zero drift.
        let at = UsdConfig::new(vec![20, 100 - 20 - 40], 40);
        assert!(expected_opinion_drift(&at, 0).abs() < 1e-15);
    }

    #[test]
    fn monochromatic_distance_bounds() {
        // Balanced: md = k.
        let balanced = UsdConfig::decided(vec![10, 10, 10, 10]);
        assert!((monochromatic_distance(&balanced) - 4.0).abs() < 1e-12);
        // Consensus-like: md = 1.
        let mono = UsdConfig::decided(vec![40, 0, 0, 0]);
        assert!((monochromatic_distance(&mono) - 1.0).abs() < 1e-12);
        // In-between.
        let c = UsdConfig::decided(vec![20, 10, 10]);
        let md = monochromatic_distance(&c);
        assert!(md > 1.0 && md < 3.0);
    }

    #[test]
    fn max_gap_passthrough() {
        let c = UsdConfig::decided(vec![30, 12, 5]);
        assert_eq!(max_gap(&c), 25);
    }

    #[test]
    fn drift_zero_at_consensus() {
        let c = UsdConfig::new(vec![50, 0], 0);
        assert!(expected_undecided_drift(&c).abs() < 1e-15);
        assert!(expected_opinion_drift(&c, 0).abs() < 1e-15);
    }
}
