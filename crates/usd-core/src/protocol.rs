//! The Undecided State Dynamics transition function as a
//! [`pop_proto::Protocol`].
//!
//! State indexing convention used across the whole workspace: opinions are
//! dense indices `0..k` and index `k` is the undecided state ⊥. (The paper
//! numbers opinions 1..k; we use 0-based indices in code and 1-based labels
//! in printed output.)

use pop_proto::Protocol;

/// A state of the Undecided State Dynamics: one of `k` opinions or ⊥.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsdState {
    /// Holding opinion `i` (0-based, `i < k`).
    Opinion(usize),
    /// The undecided state ⊥.
    Undecided,
}

/// The unconditional Undecided State Dynamics over `k` opinions
/// (k + 1 states).
///
/// Transition function (symmetric in the interaction order):
///
/// * `f(i, j) = (⊥, ⊥)` for decided `i ≠ j`;
/// * `f(i, ⊥) = (i, i)` and `f(⊥, i) = (i, i)`;
/// * identity otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndecidedStateDynamics {
    k: usize,
}

impl UndecidedStateDynamics {
    /// USD with `k ≥ 1` opinions.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one opinion");
        UndecidedStateDynamics { k }
    }

    /// Number of opinions `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dense index of the undecided state (= `k`).
    pub fn undecided_index(&self) -> usize {
        self.k
    }
}

impl Protocol for UndecidedStateDynamics {
    type State = UsdState;
    type Output = UsdState;

    fn num_states(&self) -> usize {
        self.k + 1
    }

    fn index_of(&self, state: UsdState) -> usize {
        match state {
            UsdState::Opinion(i) => {
                assert!(i < self.k, "opinion {i} out of range for k={}", self.k);
                i
            }
            UsdState::Undecided => self.k,
        }
    }

    fn state_of(&self, index: usize) -> UsdState {
        if index < self.k {
            UsdState::Opinion(index)
        } else if index == self.k {
            UsdState::Undecided
        } else {
            panic!("index {index} out of range for k={}", self.k)
        }
    }

    fn transition(&self, a: UsdState, b: UsdState) -> (UsdState, UsdState) {
        use UsdState::*;
        match (a, b) {
            (Opinion(i), Opinion(j)) if i != j => (Undecided, Undecided),
            (Opinion(i), Undecided) => (Opinion(i), Opinion(i)),
            (Undecided, Opinion(j)) => (Opinion(j), Opinion(j)),
            other => other,
        }
    }

    fn output(&self, state: UsdState) -> UsdState {
        state // γ is the identity for USD (Γ = Σ)
    }

    #[inline]
    fn transition_indices(&self, a: usize, b: usize) -> (usize, usize) {
        let k = self.k;
        debug_assert!(a <= k && b <= k);
        if a == b {
            (a, b)
        } else if a == k {
            (b, b) // ⊥ meets opinion b
        } else if b == k {
            (a, a) // opinion a meets ⊥
        } else {
            (k, k) // different opinions clash
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use UsdState::*;

    #[test]
    fn transition_table_matches_paper() {
        let p = UndecidedStateDynamics::new(3);
        // Different opinions clash.
        assert_eq!(p.transition(Opinion(0), Opinion(1)), (Undecided, Undecided));
        assert_eq!(p.transition(Opinion(2), Opinion(0)), (Undecided, Undecided));
        // Decided + undecided: adoption, both orders.
        assert_eq!(
            p.transition(Opinion(1), Undecided),
            (Opinion(1), Opinion(1))
        );
        assert_eq!(
            p.transition(Undecided, Opinion(2)),
            (Opinion(2), Opinion(2))
        );
        // Identity cases.
        assert_eq!(
            p.transition(Opinion(1), Opinion(1)),
            (Opinion(1), Opinion(1))
        );
        assert_eq!(p.transition(Undecided, Undecided), (Undecided, Undecided));
    }

    #[test]
    fn index_mapping_roundtrips() {
        let p = UndecidedStateDynamics::new(4);
        assert_eq!(p.num_states(), 5);
        for i in 0..p.num_states() {
            assert_eq!(p.index_of(p.state_of(i)), i);
        }
        assert_eq!(p.state_of(4), Undecided);
        assert_eq!(p.undecided_index(), 4);
    }

    #[test]
    fn fast_index_transition_matches_state_transition() {
        let p = UndecidedStateDynamics::new(3);
        for a in 0..4 {
            for b in 0..4 {
                let via_states = {
                    let (x, y) = p.transition(p.state_of(a), p.state_of(b));
                    (p.index_of(x), p.index_of(y))
                };
                assert_eq!(p.transition_indices(a, b), via_states, "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn output_is_identity() {
        let p = UndecidedStateDynamics::new(2);
        assert_eq!(p.output(Opinion(1)), Opinion(1));
        assert_eq!(p.output(Undecided), Undecided);
    }

    #[test]
    fn silence_cases() {
        let p = UndecidedStateDynamics::new(3);
        // Consensus: all agents on opinion 1.
        assert!(p.is_silent(&[0, 10, 0, 0]));
        // All undecided is absorbing.
        assert!(p.is_silent(&[0, 0, 0, 10]));
        // One opinion + undecided agents: adoption still possible.
        assert!(!p.is_silent(&[0, 9, 0, 1]));
        // Two opinions: clash possible.
        assert!(!p.is_silent(&[5, 5, 0, 0]));
    }

    #[test]
    fn transition_is_symmetric_in_effect() {
        // USD's unordered semantics: applying (a,b) and (b,a) yields the
        // same multiset of resulting states.
        let p = UndecidedStateDynamics::new(5);
        for a in 0..6 {
            for b in 0..6 {
                let (x1, y1) = p.transition_indices(a, b);
                let (x2, y2) = p.transition_indices(b, a);
                let mut m1 = [x1, y1];
                let mut m2 = [x2, y2];
                m1.sort_unstable();
                m2.sort_unstable();
                assert_eq!(m1, m2, "asymmetric effect for ({a},{b})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_opinion_index_panics() {
        let p = UndecidedStateDynamics::new(2);
        p.index_of(Opinion(2));
    }

    #[test]
    fn k1_degenerate_protocol() {
        let p = UndecidedStateDynamics::new(1);
        assert_eq!(p.num_states(), 2);
        // Lone opinion adopting undecided agents; never clashes.
        assert_eq!(
            p.transition(Opinion(0), Undecided),
            (Opinion(0), Opinion(0))
        );
        assert!(!p.is_silent(&[1, 1]));
        assert!(p.is_silent(&[2, 0]));
    }
}
