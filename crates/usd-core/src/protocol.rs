//! The Undecided State Dynamics transition function as a
//! [`pop_proto::Protocol`].
//!
//! State indexing convention used across the whole workspace: opinions are
//! dense indices `0..k` and index `k` is the undecided state ⊥. (The paper
//! numbers opinions 1..k; we use 0-based indices in code and 1-based labels
//! in printed output.)

use pop_proto::{BitwiseProtocol, Protocol};

/// A state of the Undecided State Dynamics: one of `k` opinions or ⊥.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsdState {
    /// Holding opinion `i` (0-based, `i < k`).
    Opinion(usize),
    /// The undecided state ⊥.
    Undecided,
}

/// The unconditional Undecided State Dynamics over `k` opinions
/// (k + 1 states).
///
/// Transition function (symmetric in the interaction order):
///
/// * `f(i, j) = (⊥, ⊥)` for decided `i ≠ j`;
/// * `f(i, ⊥) = (i, i)` and `f(⊥, i) = (i, i)`;
/// * identity otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndecidedStateDynamics {
    k: usize,
}

impl UndecidedStateDynamics {
    /// USD with `k ≥ 1` opinions.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one opinion");
        UndecidedStateDynamics { k }
    }

    /// Number of opinions `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dense index of the undecided state (= `k`).
    pub fn undecided_index(&self) -> usize {
        self.k
    }
}

impl Protocol for UndecidedStateDynamics {
    type State = UsdState;
    type Output = UsdState;

    fn num_states(&self) -> usize {
        self.k + 1
    }

    fn index_of(&self, state: UsdState) -> usize {
        match state {
            UsdState::Opinion(i) => {
                assert!(i < self.k, "opinion {i} out of range for k={}", self.k);
                i
            }
            UsdState::Undecided => self.k,
        }
    }

    fn state_of(&self, index: usize) -> UsdState {
        if index < self.k {
            UsdState::Opinion(index)
        } else if index == self.k {
            UsdState::Undecided
        } else {
            panic!("index {index} out of range for k={}", self.k)
        }
    }

    fn transition(&self, a: UsdState, b: UsdState) -> (UsdState, UsdState) {
        use UsdState::*;
        match (a, b) {
            (Opinion(i), Opinion(j)) if i != j => (Undecided, Undecided),
            (Opinion(i), Undecided) => (Opinion(i), Opinion(i)),
            (Undecided, Opinion(j)) => (Opinion(j), Opinion(j)),
            other => other,
        }
    }

    fn output(&self, state: UsdState) -> UsdState {
        state // γ is the identity for USD (Γ = Σ)
    }

    #[inline]
    fn transition_indices(&self, a: usize, b: usize) -> (usize, usize) {
        let k = self.k;
        debug_assert!(a <= k && b <= k);
        if a == b {
            (a, b)
        } else if a == k {
            (b, b) // ⊥ meets opinion b
        } else if b == k {
            (a, a) // opinion a meets ⊥
        } else {
            (k, k) // different opinions clash
        }
    }
}

/// Bit-parallel USD for the replica engine.
///
/// Code assignment: ⊥ ↦ 0, opinion `i` ↦ `i + 1`, across
/// `⌈log₂(k + 1)⌉` planes — so "decided" is simply the OR of an agent's
/// planes, and the whole k = 2 transition is ~6 word ops for 64 lanes:
/// a clash mask (both decided, codes differ) zeroes both agents' planes
/// (→ ⊥) and two adoption masks copy the decided agent's code into the
/// undecided one's planes.
impl BitwiseProtocol for UndecidedStateDynamics {
    fn planes(&self) -> usize {
        // Codes run 0..=k; bits needed to hold k.
        (usize::BITS - self.k.leading_zeros()) as usize
    }

    fn encode(&self, state: usize) -> u64 {
        debug_assert!(state <= self.k);
        if state == self.k {
            0 // ⊥
        } else {
            (state + 1) as u64
        }
    }

    fn decode(&self, code: u64) -> usize {
        if code == 0 {
            self.k
        } else {
            (code - 1) as usize
        }
    }

    fn apply_lanes(&self, a: &mut [u64], b: &mut [u64], live: u64) -> u64 {
        let (mut da, mut db, mut diff) = (0u64, 0u64, 0u64);
        for p in 0..a.len() {
            da |= a[p];
            db |= b[p];
            diff |= a[p] ^ b[p];
        }
        // Different opinions clash (both → ⊥); a decided agent's code is
        // copied into an undecided partner (adoption, both orders);
        // everything else is a no-op.
        let clash = da & db & diff & live;
        let adopt_a = !da & db & live;
        let adopt_b = da & !db & live;
        let drop_a = clash | adopt_a;
        let drop_b = clash | adopt_b;
        for p in 0..a.len() {
            let (ap, bp) = (a[p], b[p]);
            a[p] = (ap & !drop_a) | (bp & adopt_a);
            b[p] = (bp & !drop_b) | (ap & adopt_b);
        }
        clash | adopt_a | adopt_b
    }

    fn active_lanes(&self, a: &[u64], b: &[u64]) -> u64 {
        let (mut da, mut db, mut diff) = (0u64, 0u64, 0u64);
        for p in 0..a.len() {
            da |= a[p];
            db |= b[p];
            diff |= a[p] ^ b[p];
        }
        (da & db & diff) | (da ^ db)
    }

    fn noops_are_equal_pairs(&self) -> bool {
        true // identity transitions are exactly the equal-state pairs
    }

    fn silence_needs_zeroed_count(&self) -> bool {
        // All-⊥ silence: the final clash is between the last two decided
        // agents, so both their opinion counts decrement to zero. Winner
        // silence: the final adoption decrements ⊥ to zero (a clash can
        // never produce it — it leaves two fresh ⊥). Either way a count
        // empties at the silencing interaction.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use UsdState::*;

    #[test]
    fn transition_table_matches_paper() {
        let p = UndecidedStateDynamics::new(3);
        // Different opinions clash.
        assert_eq!(p.transition(Opinion(0), Opinion(1)), (Undecided, Undecided));
        assert_eq!(p.transition(Opinion(2), Opinion(0)), (Undecided, Undecided));
        // Decided + undecided: adoption, both orders.
        assert_eq!(
            p.transition(Opinion(1), Undecided),
            (Opinion(1), Opinion(1))
        );
        assert_eq!(
            p.transition(Undecided, Opinion(2)),
            (Opinion(2), Opinion(2))
        );
        // Identity cases.
        assert_eq!(
            p.transition(Opinion(1), Opinion(1)),
            (Opinion(1), Opinion(1))
        );
        assert_eq!(p.transition(Undecided, Undecided), (Undecided, Undecided));
    }

    #[test]
    fn index_mapping_roundtrips() {
        let p = UndecidedStateDynamics::new(4);
        assert_eq!(p.num_states(), 5);
        for i in 0..p.num_states() {
            assert_eq!(p.index_of(p.state_of(i)), i);
        }
        assert_eq!(p.state_of(4), Undecided);
        assert_eq!(p.undecided_index(), 4);
    }

    #[test]
    fn fast_index_transition_matches_state_transition() {
        let p = UndecidedStateDynamics::new(3);
        for a in 0..4 {
            for b in 0..4 {
                let via_states = {
                    let (x, y) = p.transition(p.state_of(a), p.state_of(b));
                    (p.index_of(x), p.index_of(y))
                };
                assert_eq!(p.transition_indices(a, b), via_states, "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn output_is_identity() {
        let p = UndecidedStateDynamics::new(2);
        assert_eq!(p.output(Opinion(1)), Opinion(1));
        assert_eq!(p.output(Undecided), Undecided);
    }

    #[test]
    fn silence_cases() {
        let p = UndecidedStateDynamics::new(3);
        // Consensus: all agents on opinion 1.
        assert!(p.is_silent(&[0, 10, 0, 0]));
        // All undecided is absorbing.
        assert!(p.is_silent(&[0, 0, 0, 10]));
        // One opinion + undecided agents: adoption still possible.
        assert!(!p.is_silent(&[0, 9, 0, 1]));
        // Two opinions: clash possible.
        assert!(!p.is_silent(&[5, 5, 0, 0]));
    }

    #[test]
    fn transition_is_symmetric_in_effect() {
        // USD's unordered semantics: applying (a,b) and (b,a) yields the
        // same multiset of resulting states.
        let p = UndecidedStateDynamics::new(5);
        for a in 0..6 {
            for b in 0..6 {
                let (x1, y1) = p.transition_indices(a, b);
                let (x2, y2) = p.transition_indices(b, a);
                let mut m1 = [x1, y1];
                let mut m2 = [x2, y2];
                m1.sort_unstable();
                m2.sort_unstable();
                assert_eq!(m1, m2, "asymmetric effect for ({a},{b})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_opinion_index_panics() {
        let p = UndecidedStateDynamics::new(2);
        p.index_of(Opinion(2));
    }

    #[test]
    fn bitwise_kernel_matches_scalar_transition_exhaustively() {
        // Every (initiator, responder) state pair, every k up to 6: one
        // lane per pair packed into the planes, one apply_lanes call,
        // decoded results must equal transition_indices lane-for-lane.
        for k in 1..=6usize {
            let p = UndecidedStateDynamics::new(k);
            let planes = p.planes();
            let states = p.num_states();
            let pairs: Vec<(usize, usize)> = (0..states)
                .flat_map(|a| (0..states).map(move |b| (a, b)))
                .collect();
            assert!(pairs.len() <= 64);
            let live = if pairs.len() == 64 {
                u64::MAX
            } else {
                (1u64 << pairs.len()) - 1
            };
            let mut a = vec![0u64; planes];
            let mut b = vec![0u64; planes];
            for (lane, &(sa, sb)) in pairs.iter().enumerate() {
                let (ca, cb) = (p.encode(sa), p.encode(sb));
                for pl in 0..planes {
                    a[pl] |= ((ca >> pl) & 1) << lane;
                    b[pl] |= ((cb >> pl) & 1) << lane;
                }
            }
            let active = p.active_lanes(&a, &b);
            let changed = p.apply_lanes(&mut a, &mut b, live);
            for (lane, &(sa, sb)) in pairs.iter().enumerate() {
                let (ta, tb) = p.transition_indices(sa, sb);
                let (mut ca, mut cb) = (0u64, 0u64);
                for pl in 0..planes {
                    ca |= ((a[pl] >> lane) & 1) << pl;
                    cb |= ((b[pl] >> lane) & 1) << pl;
                }
                assert_eq!(
                    (p.decode(ca), p.decode(cb)),
                    (ta, tb),
                    "k={k} pair ({sa},{sb})"
                );
                let expect_changed = (ta, tb) != (sa, sb);
                assert_eq!(
                    changed >> lane & 1 == 1,
                    expect_changed,
                    "k={k} changed mask for ({sa},{sb})"
                );
                assert_eq!(
                    active >> lane & 1 == 1,
                    !p.is_noop(sa, sb) || !p.is_noop(sb, sa),
                    "k={k} active mask for ({sa},{sb})"
                );
            }
        }
    }

    #[test]
    fn bitwise_kernel_leaves_dead_lanes_untouched() {
        let p = UndecidedStateDynamics::new(2);
        let planes = p.planes();
        // Lane 0: clash pair (0,1), lane 1: adoption (⊥,1) — but only
        // lane 0 is live.
        let mut a = vec![0u64; planes];
        let mut b = vec![0u64; planes];
        for (lane, (sa, sb)) in [(0usize, 1usize), (2, 1)].into_iter().enumerate() {
            let (ca, cb) = (p.encode(sa), p.encode(sb));
            for pl in 0..planes {
                a[pl] |= ((ca >> pl) & 1) << lane;
                b[pl] |= ((cb >> pl) & 1) << lane;
            }
        }
        let (a0, b0) = (a.clone(), b.clone());
        let changed = p.apply_lanes(&mut a, &mut b, 0b01);
        assert_eq!(changed, 0b01);
        for pl in 0..planes {
            assert_eq!(a[pl] >> 1 & 1, a0[pl] >> 1 & 1, "dead lane moved");
            assert_eq!(b[pl] >> 1 & 1, b0[pl] >> 1 & 1, "dead lane moved");
        }
    }

    #[test]
    fn k1_degenerate_protocol() {
        let p = UndecidedStateDynamics::new(1);
        assert_eq!(p.num_states(), 2);
        // Lone opinion adopting undecided agents; never clashes.
        assert_eq!(
            p.transition(Opinion(0), Undecided),
            (Opinion(0), Opinion(0))
        );
        assert!(!p.is_silent(&[1, 1]));
        assert!(p.is_silent(&[2, 0]));
    }
}
