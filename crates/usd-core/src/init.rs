//! Initial-configuration families.
//!
//! The lower-bound proof (§3) fixes a specific family: all minority opinions
//! start with the same support and the majority opinion starts with an
//! additive bias of at most O((√n/(k log n))^¼ · √(n log n)); Figure 1 uses
//! the same family with bias exactly √(n ln n). [`InitialConfigBuilder`]
//! produces these plus the auxiliary families the experiments use.
//!
//! All logarithms are natural, matching the convention under which the
//! paper's Figure 1 parameters (n = 10⁶ → k = 27) come out right.

use crate::config::UsdConfig;
use crate::theory;
use sim_stats::rng::SimRng;

/// Builder for USD initial configurations (always with `u(0) = 0`,
/// as the paper assumes).
#[derive(Debug, Clone, Copy)]
pub struct InitialConfigBuilder {
    n: u64,
    k: usize,
}

impl InitialConfigBuilder {
    /// Configurations over `n ≥ 2` agents and `k ≥ 1` opinions.
    pub fn new(n: u64, k: usize) -> Self {
        assert!(n >= 2, "need at least 2 agents");
        assert!(k >= 1, "need at least 1 opinion");
        assert!(k as u64 <= n, "more opinions than agents");
        InitialConfigBuilder { n, k }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Opinion count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The paper's lower-bound family: minorities share the floor count
    /// exactly; opinion 0 receives the `bias` plus any divisibility
    /// remainder.
    ///
    /// Precisely: with `base = (n − bias) / k` and
    /// `rem = (n − bias) mod k`, produces
    /// x₀ = base + bias + rem, x₁ = … = x_{k−1} = base.
    ///
    /// Panics if `bias + k > n` (no room for nonempty minorities).
    pub fn equal_minorities(&self, bias: u64) -> UsdConfig {
        assert!(
            bias.saturating_add(self.k as u64) <= self.n,
            "bias {bias} too large for n={} k={}",
            self.n,
            self.k
        );
        let base = (self.n - bias) / self.k as u64;
        let rem = (self.n - bias) % self.k as u64;
        let mut x = vec![base; self.k];
        x[0] = base + bias + rem;
        UsdConfig::decided(x)
    }

    /// The Figure 1 configuration: equal minorities with bias √(n ln n).
    pub fn figure1(&self) -> UsdConfig {
        self.equal_minorities(theory::sqrt_n_log_n(self.n))
    }

    /// The Theorem 3.5 configuration: equal minorities with the **maximum
    /// admissible bias** (√n/(k ln n))^¼ · √(n ln n). Note this is
    /// ω(√(n log n)) — the lower bound holds even with a bias this large.
    pub fn max_admissible_bias(&self) -> UsdConfig {
        let bias = theory::max_admissible_bias(self.n, self.k);
        self.equal_minorities(bias.min(self.n - self.k as u64))
    }

    /// Perfectly balanced configuration (bias 0, remainder to opinion 0).
    pub fn balanced(&self) -> UsdConfig {
        self.equal_minorities(0)
    }

    /// Every agent draws an opinion independently and uniformly; the
    /// resulting bias is Θ(√n) in expectation.
    pub fn random_uniform(&self, rng: &mut SimRng) -> UsdConfig {
        let mut x = vec![0u64; self.k];
        for _ in 0..self.n {
            x[rng.index(self.k)] += 1;
        }
        UsdConfig::decided(x)
    }

    /// Geometric support profile: opinion i gets weight `ratio^i`, a
    /// heavy-skew family used by the robustness experiments.
    pub fn geometric_profile(&self, ratio: f64) -> UsdConfig {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        let weights: Vec<f64> = (0..self.k).map(|i| ratio.powi(i as i32)).collect();
        let total: f64 = weights.iter().sum();
        let mut x: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total) * self.n as f64).floor() as u64)
            .collect();
        let assigned: u64 = x.iter().sum();
        x[0] += self.n - assigned; // dump rounding remainder on the plurality
        UsdConfig::decided(x)
    }

    /// Exact custom counts (must sum to `n` and have length `k`).
    pub fn custom(&self, x: Vec<u64>) -> UsdConfig {
        assert_eq!(x.len(), self.k, "expected {} opinions", self.k);
        assert_eq!(
            x.iter().sum::<u64>(),
            self.n,
            "counts must sum to n={}",
            self.n
        );
        UsdConfig::decided(x)
    }
}

/// Convenience: the full Figure 1 setup — for a given `n`, choose
/// k = ⌊√n / (ln n · ln ln n)⌋ (the paper's choice) and the √(n ln n) bias.
/// Returns `(k, config)`.
pub fn figure1_setup(n: u64) -> (usize, UsdConfig) {
    let k = theory::figure1_k(n);
    let cfg = InitialConfigBuilder::new(n, k).figure1();
    (k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_minorities_shape() {
        let b = InitialConfigBuilder::new(1000, 4);
        let c = b.equal_minorities(100);
        assert_eq!(c.n(), 1000);
        assert_eq!(c.k(), 4);
        assert_eq!(c.u(), 0);
        // Minorities all equal.
        assert_eq!(c.x(1), c.x(2));
        assert_eq!(c.x(2), c.x(3));
        // Majority carries bias + remainder.
        assert!(c.x(0) >= c.x(1) + 100);
        assert_eq!(c.plurality(), Some(0));
    }

    #[test]
    fn equal_minorities_exact_when_divisible() {
        // n - bias divisible by k: no remainder, bias is exact.
        let b = InitialConfigBuilder::new(1020, 4);
        let c = b.equal_minorities(20);
        assert_eq!(c.opinions(), &[270, 250, 250, 250]);
        assert_eq!(c.bias(), 20);
    }

    #[test]
    fn balanced_has_minimal_gap() {
        let b = InitialConfigBuilder::new(1003, 4);
        let c = b.balanced();
        assert_eq!(c.n(), 1003);
        // Remainder (3) goes to opinion 0.
        assert!(c.max_gap() <= 3);
    }

    #[test]
    fn figure1_bias_is_sqrt_n_ln_n() {
        let n = 1_000_000u64;
        let b = InitialConfigBuilder::new(n, 27);
        let c = b.figure1();
        let expect = ((n as f64) * (n as f64).ln()).sqrt().round() as u64;
        // Bias includes the divisibility remainder (< k).
        assert!(c.bias() >= expect && c.bias() < expect + 27);
        assert_eq!(c.n(), n);
    }

    #[test]
    fn figure1_setup_matches_paper_parameters() {
        let (k, c) = figure1_setup(1_000_000);
        // √n / (ln n · ln ln n) = 1000 / (13.8155 · 2.6259) ≈ 27.56 → 27.
        assert_eq!(k, 27);
        assert_eq!(c.n(), 1_000_000);
        assert_eq!(c.k(), 27);
    }

    #[test]
    fn max_admissible_bias_is_larger_than_figure1_bias() {
        let n = 1_000_000u64;
        let b = InitialConfigBuilder::new(n, 27);
        let fig1 = b.figure1();
        let max = b.max_admissible_bias();
        assert!(max.bias() > fig1.bias());
        assert_eq!(max.n(), n);
    }

    #[test]
    fn random_uniform_covers_opinions() {
        let mut rng = SimRng::new(1);
        let b = InitialConfigBuilder::new(10_000, 5);
        let c = b.random_uniform(&mut rng);
        assert_eq!(c.n(), 10_000);
        // Each opinion expects 2000; all should be within ±300.
        for i in 0..5 {
            let v = c.x(i) as f64;
            assert!((v - 2000.0).abs() < 300.0, "opinion {i}: {v}");
        }
    }

    #[test]
    fn geometric_profile_is_skewed_and_conserves_n() {
        let b = InitialConfigBuilder::new(10_000, 6);
        let c = b.geometric_profile(0.5);
        assert_eq!(c.n(), 10_000);
        for i in 1..6 {
            assert!(c.x(i - 1) >= c.x(i), "profile not monotone at {i}");
        }
        assert_eq!(c.plurality(), Some(0));
    }

    #[test]
    fn custom_validates_totals() {
        let b = InitialConfigBuilder::new(10, 2);
        let c = b.custom(vec![7, 3]);
        assert_eq!(c.opinions(), &[7, 3]);
    }

    #[test]
    #[should_panic(expected = "sum to n")]
    fn custom_wrong_total_rejected() {
        InitialConfigBuilder::new(10, 2).custom(vec![7, 4]);
    }

    #[test]
    #[should_panic(expected = "bias")]
    fn oversized_bias_rejected() {
        InitialConfigBuilder::new(10, 3).equal_minorities(9);
    }

    #[test]
    #[should_panic(expected = "more opinions than agents")]
    fn k_exceeding_n_rejected() {
        InitialConfigBuilder::new(3, 4);
    }
}
