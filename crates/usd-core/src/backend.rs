//! Generic backend selection for USD runs.
//!
//! Nine exact engines can run the Undecided State Dynamics:
//!
//! | backend | engine | cost model |
//! |---------|--------|------------|
//! | `agent` | [`pop_proto::AgentSimulator`] | O(1)/interaction, O(n) memory |
//! | `count` | [`pop_proto::CountSimulator`] | O(log k)/interaction |
//! | `batch` | [`pop_proto::BatchSimulator`] | O(k²+log n) per ~√n interactions |
//! | `graph` | [`pop_proto::GraphSimulator`] | O(d log m)/**effective** interaction |
//! | `batchgraph` | [`pop_proto::BatchGraphSimulator`] | block-leaping O(1)/interaction, sparse O(d log m)/effective |
//! | `pargraph` | [`pop_proto::ParGraphSimulator`] | multi-core block-leaping: position-derived draw blocks applied across spatial domains on the persistent worker pool |
//! | `seq`   | [`crate::dynamics::SequentialUsd`] | O(log k)/interaction, USD-specialized |
//! | `skip`  | [`crate::dynamics::SkipAheadUsd`] | O(log k)/effective event |
//! | `replica` | [`pop_proto::ReplicaSimulator`] | r ≤ 64 packed lanes, O(⌈log₂(k+1)⌉)/draw for **all** lanes |
//!
//! [`Backend`] names them (with `FromStr` for CLI flags);
//! [`RunSpec`] runs any of them to stabilization behind
//! one entry point, so experiments, the CLI, examples, and benches select
//! an engine generically. What each backend can do — graph topologies,
//! packed replica lanes, multi-thread execution, observation granularity,
//! checkpointing — is declared in one place,
//! [`Backend::capabilities`], which the argument-validation and
//! construction paths consult. The `agent`, `graph`, `batchgraph`,
//! `pargraph`, and `replica` backends run on non-clique interaction
//! graphs ([`RunSpec::topology`](crate::RunSpec::topology) builds a
//! [`TopologyFamily`] graph, places the initial configuration uniformly at
//! random on its vertices, and runs the engine to graph silence). The
//! `replica` backend is the ensemble engine: one pass advances up to 64
//! independent replicas of the same configuration, with per-lane outcomes
//! read back through [`EnsembleOutcome`](crate::EnsembleOutcome). The
//! `pargraph` backend is the multi-core engine: its trajectories are
//! bit-identical for any [`RunSpec::threads`](crate::RunSpec::threads)
//! setting.
//!
//! The free functions in this module are the *legacy* entrypoints, kept as
//! thin deprecated wrappers over [`RunSpec`] (their
//! equivalence is pinned by `tests/replica_equivalence.rs`); callers that
//! only need an engine built, not driven, use [`make_simulator`] /
//! [`make_topology_simulator`], which delegate to
//! [`RunSpec::build_simulator`](crate::RunSpec::build_simulator).
//!
//! # Telemetry availability
//!
//! Every backend populates [`pop_proto::telemetry::EngineTelemetry`];
//! counters a backend has no mechanism for stay zero. Mirroring the
//! observation-granularity table in [`pop_proto::observe`]:
//!
//! | backend | live counters |
//! |---------|---------------|
//! | `agent` | `scheduled`/`effective`, `dense_steps`, `pair_draws` |
//! | `count` | `scheduled`/`effective`, `dense_steps`, `pair_draws` |
//! | `batch` | clocks, `blocks`/`block_draws`/`block_applied`, `fallback_literal` (collision steps), `table_draws`, `skip_draws`, `dense_steps`/`pair_draws` |
//! | `graph` | clocks, `dense_steps`, `pair_draws`, `sparse_enters`/`sparse_exits`, all `sparse.*` skipper stats, spans `dense`/`sparse` |
//! | `batchgraph` | clocks, `blocks`/`block_draws`/`block_applied`, `fallback_literal` (dirty draws), `pair_draws`, `sparse_enters`/`sparse_exits`, all `sparse.*`, spans `dense`/`gather`/`apply`/`sparse` |
//! | `pargraph` | clocks, `blocks`/`block_draws`/`block_applied` (interior draws), `fallback_literal` (replayed boundary/conflict draws), `dense_steps`/`pair_draws`, `sparse_enters`/`sparse_exits`, all `sparse.*`, spans `dense`/`sparse` |
//! | `seq` | `scheduled`/`effective`, `dense_steps`, `pair_draws` |
//! | `skip` | `scheduled`/`effective`, `skip_draws`, `pair_draws` |
//! | `replica` | `scheduled`/`effective` (*lane-aggregate*: +popcount(live)/+popcount(changed) per draw), `dense_steps`/`pair_draws` (per *draw*) |
//!
//! `scheduled`/`effective` equal the engine's interaction clocks on every
//! backend — the identity `tests/telemetry_equivalence.rs` pins; for
//! `replica` both sides of the identity are lane-aggregates (observation
//! is at lane-aggregate granularity; per-lane state is exposed through the
//! [`Simulator`] lane accessors instead). Spans stay zero unless the
//! `span-timing` feature is compiled in *and*
//! [`set_span_timing`](pop_proto::Simulator::set_span_timing) was called.
//!
//! # Event histograms
//!
//! With [`set_histograms`](pop_proto::Simulator::set_histograms) enabled,
//! every backend additionally harvests per-event quantities into
//! [`pop_proto::EventHistograms`] (log-bucketed, read back through
//! [`histograms`](pop_proto::Simulator::histograms)); fields a backend has
//! no mechanism for stay empty:
//!
//! | backend | populated histograms |
//! |---------|----------------------|
//! | `agent` | `skip_len` (literally-counted no-op runs) |
//! | `count` | `skip_len` (literally-counted no-op runs) |
//! | `batch` | `skip_len` (geometric draws), `block_size` (applied per batch), `fallback_run` (collision literals) |
//! | `graph` | `skip_len` (dense no-op runs + sparse geometric draws), `block_total`/`flush_size`/`flush_occupancy` (sparse skipper) |
//! | `batchgraph` | `skip_len`, `block_size` (matching blocks), `fallback_run` (dirty draws), `block_total`/`flush_size`/`flush_occupancy` (sparse skipper) |
//! | `pargraph` | `block_size` (interior draws applied per block), `fallback_run` (replayed draws per block), `skip_len`/`block_total`/`flush_size`/`flush_occupancy` (sparse skipper only — dense no-op runs are not observable from the parallel application) |
//! | `seq` | `skip_len` (literally-counted no-op runs) |
//! | `skip` | `skip_len` (completed geometric runs) |
//! | `replica` | `skip_len` (runs of draws effective in **no** lane) |

use crate::config::UsdConfig;
use crate::protocol::UndecidedStateDynamics;
use crate::runspec::{drive_agent_graph_chunked, drive_chunked, drive_plain, RunSpec};
use crate::stabilization::{ConsensusOutcome, StabilizationResult};
use pop_proto::simulator::shuffled_layout;
use pop_proto::{AgentSimulator, GraphScheduler, Simulator, TopologyFamily};
use sim_stats::rng::SimRng;

/// A named USD simulation backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Per-agent generic simulator (the literal model).
    Agent,
    /// Count-based generic simulator.
    Count,
    /// Batch-leaping generic simulator (large n).
    Batch,
    /// Active-edge graph simulator (graph topologies; the complete graph
    /// is its degenerate clique instance).
    Graph,
    /// Batch-leaping graph simulator (matching-based multi-event blocks;
    /// the fast engine for effective-dominated topologies).
    BatchGraph,
    /// Sharded multi-core graph simulator (position-derived draw blocks
    /// applied across spatial domains on the persistent worker pool;
    /// trajectories bit-identical for any thread count).
    ParGraph,
    /// USD-specialized sequential engine.
    Sequential,
    /// USD-specialized skip-ahead engine.
    SkipAhead,
    /// Bit-parallel replica engine: up to 64 independent replica runs
    /// packed one bit-plane word per agent, advanced together by one
    /// shared (pair, orientation) schedule — the ensemble engine.
    Replica,
}

impl Backend {
    /// All backends, in display order.
    pub const ALL: [Backend; 9] = [
        Backend::Agent,
        Backend::Count,
        Backend::Batch,
        Backend::Graph,
        Backend::BatchGraph,
        Backend::ParGraph,
        Backend::Sequential,
        Backend::SkipAhead,
        Backend::Replica,
    ];

    /// The flag-friendly name (`agent`, `count`, `batch`, `graph`,
    /// `batchgraph`, `pargraph`, `seq`, `skip`, `replica`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Agent => "agent",
            Backend::Count => "count",
            Backend::Batch => "batch",
            Backend::Graph => "graph",
            Backend::BatchGraph => "batchgraph",
            Backend::ParGraph => "pargraph",
            Backend::Sequential => "seq",
            Backend::SkipAhead => "skip",
            Backend::Replica => "replica",
        }
    }

    /// Whether the backend's memory footprint scales with n (the agentwise
    /// and graphwise engines allocate per-agent — and, for the graph
    /// engines, per-edge — state; the replica engine allocates
    /// ⌈log₂(k+1)⌉ words per agent).
    pub fn per_agent_memory(&self) -> bool {
        matches!(
            self,
            Backend::Agent
                | Backend::Graph
                | Backend::BatchGraph
                | Backend::ParGraph
                | Backend::Replica
        )
    }

    /// What this backend can do — the single declaration the validation
    /// and construction paths consult. See [`Capabilities`].
    pub fn capabilities(&self) -> Capabilities {
        let granularity = match self {
            Backend::Agent | Backend::Count | Backend::Sequential => ObservationGranularity::Event,
            Backend::SkipAhead | Backend::Graph => ObservationGranularity::Event,
            Backend::Batch | Backend::BatchGraph | Backend::ParGraph | Backend::Replica => {
                ObservationGranularity::Block
            }
        };
        Capabilities {
            topologies: matches!(
                self,
                Backend::Agent
                    | Backend::Graph
                    | Backend::BatchGraph
                    | Backend::ParGraph
                    | Backend::Replica
            ),
            replicas: if matches!(self, Backend::Replica) {
                pop_proto::simulator::MAX_LANES
            } else {
                1
            },
            threads: matches!(self, Backend::Batch | Backend::ParGraph),
            observation: granularity,
            checkpointing: true,
        }
    }

    /// Whether the backend runs on non-clique interaction graphs (accepted
    /// by [`RunSpec::topology`](crate::RunSpec::topology) /
    /// [`make_topology_simulator`]).
    #[deprecated(since = "0.1.0", note = "use Backend::capabilities().topologies")]
    pub fn supports_topologies(&self) -> bool {
        self.capabilities().topologies
    }

    /// Whether the backend packs multiple independent replica lanes into
    /// one engine pass (accepted by
    /// [`RunSpec::replicas`](crate::RunSpec::replicas) with r > 1).
    #[deprecated(since = "0.1.0", note = "use Backend::capabilities().replicas > 1")]
    pub fn supports_replicas(&self) -> bool {
        self.capabilities().replicas > 1
    }
}

/// How a backend's [`advance_observed`](pop_proto::Simulator::advance_observed)
/// boundaries land (see the granularity table in [`pop_proto::observe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObservationGranularity {
    /// Observers see every effective event individually (**exact**).
    Event,
    /// Observers see block checkpoints summarizing ≥ 1 events.
    Block,
}

/// What a [`Backend`] can do, declared in one place.
///
/// Replaces the scattered `supports_*` boolean probes: argument
/// validation (the CLI's exit-2 paths) and the [`RunSpec`] construction
/// panics all route through this struct, so adding a backend means
/// filling in one table instead of auditing every probe call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// Runs on non-clique interaction graphs
    /// ([`RunSpec::topology`](crate::RunSpec::topology)).
    pub topologies: bool,
    /// Maximum independent replica lanes packed into one engine pass
    /// (1 = single-lane only; the ensemble engine packs up to 64).
    pub replicas: u32,
    /// Uses multi-thread execution — [`RunSpec::threads`](crate::RunSpec::threads)
    /// changes its wall-clock (never its trajectory).
    pub threads: bool,
    /// Observation granularity of
    /// [`advance_observed`](pop_proto::Simulator::advance_observed).
    pub observation: ObservationGranularity,
    /// Supports [`snapshot_state`](pop_proto::Simulator::snapshot_state) /
    /// [`restore_state`](pop_proto::Simulator::restore_state) round-trips
    /// (all current backends do; declared so a future backend without
    /// them fails validation instead of corrupting a resume).
    pub checkpointing: bool,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "agent" => Ok(Backend::Agent),
            "count" => Ok(Backend::Count),
            "batch" => Ok(Backend::Batch),
            "graph" | "graphwise" => Ok(Backend::Graph),
            "batchgraph" | "batch-graph" => Ok(Backend::BatchGraph),
            "pargraph" | "par-graph" => Ok(Backend::ParGraph),
            "seq" | "sequential" => Ok(Backend::Sequential),
            "skip" | "skip-ahead" => Ok(Backend::SkipAhead),
            "replica" | "ensemble" => Ok(Backend::Replica),
            other => Err(format!(
                "unknown backend '{other}' (expected \
                 agent|count|batch|graph|batchgraph|pargraph|seq|skip|replica)"
            )),
        }
    }
}

/// Largest population for which [`make_simulator`] will materialize the
/// complete graph for [`Backend::Graph`] (~10⁸/2 edges ≈ 1.2 GB of edge
/// list + adjacency at the cap).
pub const COMPLETE_GRAPH_MAX_N: u64 = 10_000;

/// Construct a generic-substrate simulator for `config` as a trait object.
///
/// Every backend is a generic-substrate engine: the six `pop-proto`
/// engines natively, the two USD-specialized ones through their thin
/// wrappers, and the replica ensemble engine (default 64 lanes), so
/// observer-driven experiments select any of the nine interchangeably.
/// Delegates to [`RunSpec::build_simulator`](crate::RunSpec::build_simulator)
/// — the one place backends register; clique construction draws no RNG
/// (replica lane layouts come from an internal fixed-seed stream).
/// [`Backend::Graph`], [`Backend::BatchGraph`], and [`Backend::ParGraph`]
/// here mean the *complete* graph (their degenerate clique instance) and
/// are capped at [`COMPLETE_GRAPH_MAX_N`] agents.
pub fn make_simulator(backend: Backend, config: &UsdConfig) -> Box<dyn Simulator> {
    // Clique construction is RNG-free for every backend; the throwaway
    // stream is never drawn from.
    RunSpec::new(config)
        .backend(backend)
        .build_simulator(&mut SimRng::new(0))
}

/// Construct a topology-capable simulator over a [`TopologyFamily`] graph.
///
/// The graph is built deterministically from `(family, n, topo_seed)` and
/// the initial configuration is placed uniformly at random on its vertices
/// (drawing from `rng`; one shuffled layout per lane for
/// [`Backend::Replica`], lane 0 first). Only the topology-capable backends
/// are accepted (see [`Backend::capabilities`]); the population
/// must already be feasible for the family (see
/// [`TopologyFamily::snap_n`]). Delegates to
/// [`RunSpec::build_simulator`](crate::RunSpec::build_simulator).
pub fn make_topology_simulator(
    backend: Backend,
    config: &UsdConfig,
    family: TopologyFamily,
    topo_seed: u64,
    rng: &mut SimRng,
) -> Box<dyn Simulator> {
    RunSpec::new(config)
        .backend(backend)
        .topology(family)
        .topo_seed(topo_seed)
        .build_simulator(rng)
}

/// Classify a stabilized generic-substrate run from its final counts.
///
/// A silent configuration is consensus (one opinion, no ⊥), all-undecided,
/// or — reachable only on disconnected interaction graphs — a frozen mixed
/// configuration. Public so callers that drive a simulator themselves
/// (keeping it to read telemetry) can produce the same
/// [`StabilizationResult`] the packaged drivers report. Replica aggregate
/// counts are lane sums, so an ensemble whose lanes elected *different*
/// winners classifies as frozen here — use
/// [`EnsembleOutcome`](crate::EnsembleOutcome) for the per-lane verdicts.
pub fn classify_counts(
    counts: &[u64],
    k: usize,
    interactions: u64,
    stabilized: bool,
    initial_plurality: Option<usize>,
) -> StabilizationResult {
    let outcome = if !stabilized {
        ConsensusOutcome::Timeout
    } else if counts[..k].iter().all(|&c| c == 0) {
        ConsensusOutcome::AllUndecided
    } else if counts[k] == 0 && counts[..k].iter().filter(|&&c| c > 0).count() == 1 {
        let winner = counts[..k]
            .iter()
            .position(|&c| c > 0)
            .expect("a decided silent configuration has a winner");
        ConsensusOutcome::Winner(winner)
    } else {
        ConsensusOutcome::Frozen
    };
    StabilizationResult {
        outcome,
        interactions,
        initial_plurality,
    }
}

/// Run an already-constructed USD simulator to stabilization in place.
///
/// The in-place twin of [`stabilize_with_backend`]: the caller keeps the
/// simulator, so its per-engine state —
/// [`telemetry`](pop_proto::Simulator::telemetry) above all — survives the
/// run. `k` is the opinion count (the simulator holds `k + 1` states with
/// ⊥ at index `k`); `initial_plurality` feeds the result's plurality
/// bookkeeping.
#[deprecated(
    since = "0.1.0",
    note = "use RunSpec::new(config).budget(b).run_keeping(rng), or RunSpec::drive for a \
            simulator you built yourself"
)]
pub fn stabilize_simulator(
    sim: &mut dyn Simulator,
    k: usize,
    rng: &mut SimRng,
    budget: u64,
    initial_plurality: Option<usize>,
) -> StabilizationResult {
    drive_plain(sim, k, rng, budget, initial_plurality)
}

/// Chunk-boundary observer for the ticking run drivers.
///
/// The drivers call [`RunTicker::tick`] with the live engine after every
/// driving chunk, so observers can read the clocks *and* the engine's
/// [`telemetry`](pop_proto::Simulator::telemetry) (the CLI's
/// `--progress-every` heartbeat and the `--timeline` flight recorder both
/// hang off this). [`RunTicker::horizon`] additionally lets an observer
/// bound the next chunk so boundaries land exactly where it needs them —
/// the timeline recorder uses it to hit its sampling cadence marks.
///
/// Any `FnMut(&dyn Simulator)` closure is a ticker with an unbounded
/// horizon via the blanket impl.
pub trait RunTicker {
    /// Upper bound on the next driving chunk, given the scheduled
    /// interaction clock. Defaults to no bound; implementations must
    /// return at least 1.
    fn horizon(&self, _scheduled: u64) -> u64 {
        u64::MAX
    }

    /// Observe the engine at a chunk boundary.
    fn tick(&mut self, sim: &dyn Simulator);

    /// Observe the engine *and the driver RNG* at a chunk boundary — the
    /// checkpointing hook. Called by the chunked drivers immediately after
    /// [`tick`](RunTicker::tick) with the RNG positioned exactly where the
    /// next chunk will resume, so an implementation can persist a
    /// bit-identical resume point ([`snapshot_state`] plus the RNG stream
    /// position). Defaults to a no-op; implementations must not draw from
    /// state they observe (the hook hands out shared references only).
    ///
    /// [`snapshot_state`]: pop_proto::Simulator::snapshot_state
    fn checkpoint_tick(&mut self, _sim: &dyn Simulator, _rng: &SimRng) {}
}

impl<F: FnMut(&dyn Simulator)> RunTicker for F {
    fn tick(&mut self, sim: &dyn Simulator) {
        self(sim)
    }
}

/// `stabilize_simulator` with a progress heartbeat: the run is driven in
/// `~max(4n, 2¹⁶)`-interaction chunks (further bounded by the ticker's
/// [`horizon`](RunTicker::horizon)) and `tick` observes the engine after
/// each chunk (the CLI's `--progress-every` stderr heartbeat and the
/// `--timeline` flight recorder hang off this). Chunk boundaries can
/// truncate the leaping backends' geometric skip draws, so a ticked run
/// need not be interaction-identical to the same seed driven without one.
/// Assumes a freshly constructed simulator (interaction clock at zero),
/// which is how every caller of [`make_simulator`] holds one.
#[deprecated(
    since = "0.1.0",
    note = "use RunSpec::new(config).ticker(t).budget(b).run_keeping(rng), or \
            RunSpec::drive for a simulator you built yourself"
)]
pub fn stabilize_simulator_ticking(
    sim: &mut dyn Simulator,
    k: usize,
    rng: &mut SimRng,
    budget: u64,
    initial_plurality: Option<usize>,
    tick: &mut dyn RunTicker,
) -> StabilizationResult {
    drive_chunked(sim, k, rng, budget, initial_plurality, Some(tick), None)
}

/// Run `config` to USD stabilization on the chosen backend.
///
/// Semantics match [`stabilize`](crate::stabilization::stabilize): the run
/// ends at silence (consensus or
/// all-undecided) or when `budget` interactions have been simulated, and
/// the result reports the winner, the interaction count at the stopping
/// point, and whether the initial plurality won.
#[deprecated(
    since = "0.1.0",
    note = "use RunSpec::new(config).backend(b).budget(budget).run(rng)"
)]
pub fn stabilize_with_backend(
    backend: Backend,
    config: &UsdConfig,
    rng: &mut SimRng,
    budget: u64,
) -> StabilizationResult {
    RunSpec::new(config)
        .backend(backend)
        .budget(budget)
        .run(rng)
}

/// Run `config` to USD stabilization on a [`TopologyFamily`] graph.
///
/// The graph is deterministic in `(family, n, topo_seed)`; the initial
/// layout and the dynamics draw from `rng`. The run ends at *graph*
/// silence or budget exhaustion. On disconnected topologies (possible for
/// `er`) a run can end [`ConsensusOutcome::Frozen`]; the backends detect
/// this exactly — the `graph` engines natively, the `agent` engine via an
/// O(m) edge scan every ~4n interactions (amortized O(d/n) per step), the
/// `replica` engine via its periodic frozen-lane scan. A generated graph
/// with no edges at all (very sparse `er`) is trivially silent and
/// classifies immediately without simulating.
#[deprecated(
    since = "0.1.0",
    note = "use RunSpec::new(config).backend(b).topology(f).topo_seed(s).budget(budget).run(rng)"
)]
pub fn stabilize_on_topology(
    backend: Backend,
    config: &UsdConfig,
    family: TopologyFamily,
    topo_seed: u64,
    rng: &mut SimRng,
    budget: u64,
) -> StabilizationResult {
    RunSpec::new(config)
        .backend(backend)
        .topology(family)
        .topo_seed(topo_seed)
        .budget(budget)
        .run(rng)
}

/// `stabilize_on_topology` for callers that need the engine afterwards:
/// returns the result together with the simulator, so per-engine state —
/// [`telemetry`](pop_proto::Simulator::telemetry) above all — survives the
/// run. `tick` observes the engine after every driving chunk (pass
/// `&mut |_: &dyn Simulator| {}` for no heartbeat) and can bound chunks
/// via [`RunTicker::horizon`]. `span_timing` turns the engine's span
/// clock on before the run and `histograms` its per-event histograms. An
/// edgeless graph (very sparse `er`) is trivially silent and has no
/// engine to return — the simulator slot is `None`.
#[allow(clippy::too_many_arguments)]
#[deprecated(
    since = "0.1.0",
    note = "use RunSpec::new(config).backend(b).topology(f).topo_seed(s).budget(budget)\
            .span_timing(st).histograms(h).ticker(t).run_keeping(rng)"
)]
pub fn stabilize_on_topology_keeping(
    backend: Backend,
    config: &UsdConfig,
    family: TopologyFamily,
    topo_seed: u64,
    rng: &mut SimRng,
    budget: u64,
    span_timing: bool,
    histograms: bool,
    tick: &mut dyn RunTicker,
) -> (StabilizationResult, Option<Box<dyn Simulator>>) {
    RunSpec::new(config)
        .backend(backend)
        .topology(family)
        .topo_seed(topo_seed)
        .budget(budget)
        .span_timing(span_timing)
        .histograms(histograms)
        .ticker(tick)
        .run_keeping(rng)
}

/// Construct the *concrete* agentwise simulator for a topology run —
/// the engine [`make_topology_simulator`] boxes for [`Backend::Agent`],
/// unboxed so callers that must interleave the exact frozen-configuration
/// edge scan (see [`RunSpec::drive_agent_graph`](crate::RunSpec::drive_agent_graph))
/// keep the concrete type. Consumes the same RNG draws as
/// [`make_topology_simulator`] (the shuffled initial layout), so a
/// resumed run reconstructs the identical stream position.
pub fn make_agent_topology_simulator(
    config: &UsdConfig,
    family: TopologyFamily,
    topo_seed: u64,
    rng: &mut SimRng,
) -> AgentSimulator<UndecidedStateDynamics, GraphScheduler> {
    let proto = UndecidedStateDynamics::new(config.k());
    let counts = config.to_count_config();
    let graph = family.build(config.n() as usize, topo_seed);
    let states = shuffled_layout(&counts, rng);
    AgentSimulator::new(proto, GraphScheduler::new(graph), states)
}

/// Chunked drive of the agentwise engine on an interaction graph: the
/// count-level silence criterion inside `run_to_silence` misses frozen
/// configurations on disconnected graphs, so chunked runs interleave with
/// the exact O(m) edge-scan criterion. Resumed runs (simulator restored
/// from a checkpoint, clock mid-flight) drive through exactly the same
/// loop — chunk boundaries are a pure function of the absolute
/// interaction clock.
#[deprecated(
    since = "0.1.0",
    note = "use RunSpec::new(config).ticker(t).budget(b).drive_agent_graph(sim, rng)"
)]
pub fn stabilize_agent_graph_ticking(
    sim: &mut AgentSimulator<UndecidedStateDynamics, GraphScheduler>,
    k: usize,
    rng: &mut SimRng,
    budget: u64,
    initial_plurality: Option<usize>,
    tick: &mut dyn RunTicker,
) -> StabilizationResult {
    drive_agent_graph_chunked(sim, k, rng, budget, initial_plurality, Some(tick), None)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::init::InitialConfigBuilder;

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(
            "sequential".parse::<Backend>().unwrap(),
            Backend::Sequential
        );
        assert_eq!("skip-ahead".parse::<Backend>().unwrap(), Backend::SkipAhead);
        assert_eq!("graphwise".parse::<Backend>().unwrap(), Backend::Graph);
        assert_eq!("ensemble".parse::<Backend>().unwrap(), Backend::Replica);
        assert_eq!("par-graph".parse::<Backend>().unwrap(), Backend::ParGraph);
        assert!("warp".parse::<Backend>().is_err());
        assert!(Backend::Agent.per_agent_memory());
        assert!(Backend::Graph.per_agent_memory());
        assert!(!Backend::Batch.per_agent_memory());
        assert!(Backend::Agent.supports_topologies());
        assert!(Backend::Graph.supports_topologies());
        assert!(Backend::BatchGraph.supports_topologies());
        assert!(Backend::BatchGraph.per_agent_memory());
        assert!(Backend::ParGraph.supports_topologies());
        assert!(Backend::ParGraph.per_agent_memory());
        assert!(Backend::Replica.supports_topologies());
        assert!(Backend::Replica.per_agent_memory());
        assert!(Backend::Replica.supports_replicas());
        for b in Backend::ALL {
            assert_eq!(b.supports_replicas(), b == Backend::Replica, "{b}");
        }
        assert_eq!(
            "batch-graph".parse::<Backend>().unwrap(),
            Backend::BatchGraph
        );
        assert!(!Backend::Batch.supports_topologies());
        assert!(!Backend::SkipAhead.supports_topologies());
    }

    #[test]
    fn capabilities_declare_the_probe_truth_in_one_place() {
        for b in Backend::ALL {
            let caps = b.capabilities();
            // The deprecated shims must forward to the struct exactly.
            assert_eq!(b.supports_topologies(), caps.topologies, "{b}");
            assert_eq!(b.supports_replicas(), caps.replicas > 1, "{b}");
            assert!(caps.checkpointing, "{b}: every current engine snapshots");
            assert!(caps.replicas >= 1, "{b}");
        }
        assert_eq!(Backend::Replica.capabilities().replicas, 64);
        assert_eq!(Backend::Agent.capabilities().replicas, 1);
        // Thread-capable engines: the clique batch engine fans its
        // hypergeometric streams out, and pargraph shards its domains.
        for b in Backend::ALL {
            assert_eq!(
                b.capabilities().threads,
                matches!(b, Backend::Batch | Backend::ParGraph),
                "{b}"
            );
        }
        // Observation granularity mirrors the table in pop_proto::observe.
        for b in [
            Backend::Agent,
            Backend::Count,
            Backend::Sequential,
            Backend::SkipAhead,
            Backend::Graph,
        ] {
            assert_eq!(
                b.capabilities().observation,
                ObservationGranularity::Event,
                "{b}"
            );
        }
        for b in [
            Backend::Batch,
            Backend::BatchGraph,
            Backend::ParGraph,
            Backend::Replica,
        ] {
            assert_eq!(
                b.capabilities().observation,
                ObservationGranularity::Block,
                "{b}"
            );
        }
    }

    #[test]
    fn all_backends_elect_the_plurality_under_strong_bias() {
        let config = UsdConfig::decided(vec![800, 200]);
        for b in Backend::ALL {
            let mut rng = SimRng::new(11);
            let result = stabilize_with_backend(b, &config, &mut rng, u64::MAX / 2);
            assert!(result.stabilized(), "{b} did not stabilize");
            assert_eq!(
                result.outcome,
                ConsensusOutcome::Winner(0),
                "{b} elected the wrong opinion"
            );
            assert!(result.plurality_won(), "{b}");
            assert!(result.interactions > 0, "{b}");
        }
    }

    #[test]
    fn all_backends_report_all_undecided_absorption() {
        let config = UsdConfig::decided(vec![1, 1]);
        for b in Backend::ALL {
            let mut rng = SimRng::new(5);
            let result = stabilize_with_backend(b, &config, &mut rng, 100_000);
            assert!(result.stabilized(), "{b}");
            assert_eq!(result.outcome, ConsensusOutcome::AllUndecided, "{b}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        let config = UsdConfig::decided(vec![500, 500]);
        for b in Backend::ALL {
            let mut rng = SimRng::new(7);
            let result = stabilize_with_backend(b, &config, &mut rng, 50);
            assert_eq!(result.outcome, ConsensusOutcome::Timeout, "{b}");
            assert!(!result.stabilized(), "{b}");
        }
    }

    #[test]
    fn generic_backends_match_figure1_means() {
        // Cross-backend mean stabilization times on a small Figure-1
        // instance must agree within a generous tolerance.
        let config = InitialConfigBuilder::new(300, 3).figure1();
        let reps = 60u64;
        let mut means = [0.0f64; 4];
        for (slot, b) in [
            Backend::Agent,
            Backend::Count,
            Backend::Batch,
            Backend::Graph,
        ]
        .into_iter()
        .enumerate()
        {
            for seed in 0..reps {
                let mut rng = SimRng::new(seed * 13 + slot as u64);
                let r = stabilize_with_backend(b, &config, &mut rng, u64::MAX / 2);
                assert!(r.stabilized());
                means[slot] += r.interactions as f64;
            }
            means[slot] /= reps as f64;
        }
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) / max < 0.15, "backends diverge: {means:?}");
    }

    #[test]
    fn sequential_wrapper_is_a_generic_backend() {
        let config = UsdConfig::decided(vec![60, 20]);
        let mut sim = make_simulator(Backend::Sequential, &config);
        let mut rng = SimRng::new(17);
        let (t, silent) = sim.run_to_silence(&mut rng, u64::MAX / 2);
        assert!(silent);
        assert!(t > 0);
        assert_eq!(sim.counts().iter().sum::<u64>(), 80);
        assert!(sim.effective_interactions() > 0);
        assert!(sim.effective_interactions() <= sim.interactions());
    }

    #[test]
    fn skip_ahead_wrapper_is_a_generic_backend() {
        let config = UsdConfig::decided(vec![60, 20]);
        let mut sim = make_simulator(Backend::SkipAhead, &config);
        let mut rng = SimRng::new(13);
        let (t, silent) = sim.run_to_silence(&mut rng, u64::MAX / 2);
        assert!(silent);
        assert!(t > 0);
        assert_eq!(sim.counts().iter().sum::<u64>(), 80);
        assert!(sim.effective_interactions() > 0);
    }

    #[test]
    fn replica_backend_packs_64_lanes_through_make_simulator() {
        let config = UsdConfig::decided(vec![60, 20]);
        let mut sim = make_simulator(Backend::Replica, &config);
        assert_eq!(sim.lanes(), 64);
        assert_eq!(sim.population(), 64 * 80);
        assert_eq!(sim.counts().iter().sum::<u64>(), 64 * 80);
        let mut rng = SimRng::new(17);
        let (t, silent) = sim.run_to_silence(&mut rng, u64::MAX / 2);
        assert!(silent);
        assert!(t > 0);
        for lane in 0..64 {
            assert!(sim.lane_stabilized_at(lane).is_some(), "lane {lane}");
            assert_eq!(sim.lane_counts(lane).iter().sum::<u64>(), 80);
        }
    }

    #[test]
    fn frozen_classification_of_silent_mixed_counts() {
        // Silent with two opinions stranded (disconnected topology): frozen.
        let r = classify_counts(&[3, 2, 1], 2, 100, true, Some(0));
        assert_eq!(r.outcome, ConsensusOutcome::Frozen);
        assert!(r.stabilized());
        assert!(!r.plurality_won());
        // Winner with leftover ⊥ is likewise frozen, not consensus.
        let r = classify_counts(&[5, 0, 1], 2, 100, true, Some(0));
        assert_eq!(r.outcome, ConsensusOutcome::Frozen);
    }

    #[test]
    fn topology_backends_stabilize_on_a_regular_graph() {
        let config = UsdConfig::decided(vec![120, 40]);
        for b in [
            Backend::Agent,
            Backend::Graph,
            Backend::BatchGraph,
            Backend::Replica,
        ] {
            let mut rng = SimRng::new(3);
            let r = stabilize_on_topology(
                b,
                &config,
                TopologyFamily::Regular { d: 4 },
                7,
                &mut rng,
                u64::MAX / 2,
            );
            assert!(r.stabilized(), "{b} did not stabilize");
            assert!(r.interactions > 0, "{b}");
        }
    }

    #[test]
    fn batchgraph_runs_k_300_through_the_wide_fallback() {
        // k = 300 opinions means 301 USD states — past the one-byte
        // packing. The backend routes to the u16 fallback and stabilizes
        // instead of panicking (the old exit path told users to switch
        // engines).
        let k = 300usize;
        let counts: Vec<u64> = (0..k).map(|i| if i == 0 { 1_000 } else { 2 }).collect();
        let config = UsdConfig::decided(counts);
        let mut rng = SimRng::new(13);
        let r = stabilize_on_topology(
            Backend::BatchGraph,
            &config,
            TopologyFamily::Regular { d: 8 },
            5,
            &mut rng,
            u64::MAX / 2,
        );
        assert!(r.stabilized(), "k = 300 run did not stabilize");
        assert!(r.interactions > 0);
        // The strong bias makes opinion 0 the overwhelming favourite; any
        // silent outcome is acceptable here, the point is the routing.
        let mut rng = SimRng::new(14);
        let sim = make_topology_simulator(
            Backend::BatchGraph,
            &config,
            TopologyFamily::Regular { d: 8 },
            5,
            &mut rng,
        );
        assert_eq!(sim.num_states(), k + 1);
    }

    #[test]
    fn agent_backend_terminates_on_frozen_disconnected_topologies() {
        // A very sparse ER graph strands opinions in separate components;
        // the agentwise path must detect the freeze via the edge scan
        // instead of grinding to the budget (the budget here would take
        // hours if the scan failed).
        let config = UsdConfig::decided(vec![150, 150]);
        for b in [Backend::Agent, Backend::Graph, Backend::BatchGraph] {
            let mut rng = SimRng::new(9);
            let r = stabilize_on_topology(
                b,
                &config,
                TopologyFamily::ErdosRenyi { avg_degree: 0.8 },
                3,
                &mut rng,
                u64::MAX / 2,
            );
            assert!(r.stabilized(), "{b} did not detect the freeze");
            assert_eq!(r.outcome, ConsensusOutcome::Frozen, "{b}");
            assert!(
                r.interactions < 200_000_000,
                "{b} reported an inflated freeze clock: {}",
                r.interactions
            );
        }
    }

    #[test]
    fn edgeless_topology_classifies_without_simulating() {
        let config = UsdConfig::decided(vec![10, 10]);
        let mut rng = SimRng::new(2);
        let r = stabilize_on_topology(
            Backend::Graph,
            &config,
            TopologyFamily::ErdosRenyi {
                avg_degree: 1.0e-12,
            },
            1,
            &mut rng,
            1_000,
        );
        assert_eq!(r.outcome, ConsensusOutcome::Frozen);
        assert_eq!(r.interactions, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn complete_graph_backend_rejects_huge_populations() {
        make_simulator(
            Backend::Graph,
            &UsdConfig::decided(vec![COMPLETE_GRAPH_MAX_N, 1]),
        );
    }

    #[test]
    #[should_panic(expected = "cannot run graph topologies")]
    fn topology_rejects_clique_only_backends() {
        let config = UsdConfig::decided(vec![4, 4]);
        let mut rng = SimRng::new(1);
        stabilize_on_topology(
            Backend::Batch,
            &config,
            TopologyFamily::Cycle,
            0,
            &mut rng,
            1_000,
        );
    }

    #[test]
    #[should_panic(expected = "cannot pack")]
    fn scalar_backends_reject_multiple_replica_lanes() {
        let config = UsdConfig::decided(vec![4, 4]);
        let mut rng = SimRng::new(1);
        RunSpec::new(&config)
            .backend(Backend::Count)
            .replicas(8)
            .build_simulator(&mut rng);
    }
}
