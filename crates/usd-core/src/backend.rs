//! Generic backend selection for USD runs.
//!
//! Five exact engines can run the Undecided State Dynamics:
//!
//! | backend | engine | cost model |
//! |---------|--------|------------|
//! | `agent` | [`pop_proto::AgentSimulator`] | O(1)/interaction, O(n) memory |
//! | `count` | [`pop_proto::CountSimulator`] | O(log k)/interaction |
//! | `batch` | [`pop_proto::BatchSimulator`] | O(k²+log n) per ~√n interactions |
//! | `seq`   | [`crate::dynamics::SequentialUsd`] | O(log k)/interaction, USD-specialized |
//! | `skip`  | [`crate::dynamics::SkipAheadUsd`] | O(log k)/effective event |
//!
//! [`Backend`] names them (with `FromStr` for CLI flags) and
//! [`stabilize_with_backend`] runs any of them to stabilization behind one
//! entry point, so experiments, the CLI, examples, and benches select an
//! engine generically.

use crate::config::UsdConfig;
use crate::dynamics::{SequentialUsd, SkipAheadUsd};
use crate::protocol::UndecidedStateDynamics;
use crate::stabilization::{stabilize, ConsensusOutcome, StabilizationResult};
use pop_proto::{AgentSimulator, BatchSimulator, CliqueScheduler, CountSimulator, Simulator};
use sim_stats::rng::SimRng;

/// A named USD simulation backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Per-agent generic simulator (the literal model).
    Agent,
    /// Count-based generic simulator.
    Count,
    /// Batch-leaping generic simulator (large n).
    Batch,
    /// USD-specialized sequential engine.
    Sequential,
    /// USD-specialized skip-ahead engine.
    SkipAhead,
}

impl Backend {
    /// All backends, in display order.
    pub const ALL: [Backend; 5] = [
        Backend::Agent,
        Backend::Count,
        Backend::Batch,
        Backend::Sequential,
        Backend::SkipAhead,
    ];

    /// The flag-friendly name (`agent`, `count`, `batch`, `seq`, `skip`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Agent => "agent",
            Backend::Count => "count",
            Backend::Batch => "batch",
            Backend::Sequential => "seq",
            Backend::SkipAhead => "skip",
        }
    }

    /// Whether the backend's memory footprint scales with n (the agentwise
    /// engine allocates one state per agent).
    pub fn per_agent_memory(&self) -> bool {
        matches!(self, Backend::Agent)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "agent" => Ok(Backend::Agent),
            "count" => Ok(Backend::Count),
            "batch" => Ok(Backend::Batch),
            "seq" | "sequential" => Ok(Backend::Sequential),
            "skip" | "skip-ahead" => Ok(Backend::SkipAhead),
            other => Err(format!(
                "unknown backend '{other}' (expected agent|count|batch|seq|skip)"
            )),
        }
    }
}

/// Construct a generic-substrate simulator for `config` as a trait object.
///
/// Only the three `pop-proto` backends are generic-substrate engines;
/// passing [`Backend::Sequential`] or [`Backend::SkipAhead`] panics (those
/// implement [`crate::dynamics::UsdSimulator`] instead — use
/// [`stabilize_with_backend`] for uniform treatment of all five).
pub fn make_simulator(backend: Backend, config: &UsdConfig) -> Box<dyn Simulator> {
    let proto = UndecidedStateDynamics::new(config.k());
    let counts = config.to_count_config();
    match backend {
        Backend::Agent => Box::new(AgentSimulator::from_config(
            proto,
            CliqueScheduler::new(config.n() as usize),
            &counts,
        )),
        Backend::Count => Box::new(CountSimulator::new(proto, &counts)),
        Backend::Batch => Box::new(BatchSimulator::new(proto, &counts)),
        other => panic!("{other} is a USD-specialized engine, not a generic-substrate backend"),
    }
}

/// Classify a stabilized generic-substrate run from its final counts.
fn result_from_counts(
    counts: &[u64],
    k: usize,
    interactions: u64,
    stabilized: bool,
    initial_plurality: Option<usize>,
) -> StabilizationResult {
    let outcome = if !stabilized {
        ConsensusOutcome::Timeout
    } else if counts[k] > 0 {
        ConsensusOutcome::AllUndecided
    } else {
        let winner = counts[..k]
            .iter()
            .position(|&c| c > 0)
            .expect("a stabilized decided configuration has a winner");
        ConsensusOutcome::Winner(winner)
    };
    StabilizationResult {
        outcome,
        interactions,
        initial_plurality,
    }
}

/// Run `config` to USD stabilization on the chosen backend.
///
/// Semantics match [`stabilize`]: the run ends at silence (consensus or
/// all-undecided) or when `budget` interactions have been simulated, and
/// the result reports the winner, the interaction count at the stopping
/// point, and whether the initial plurality won.
pub fn stabilize_with_backend(
    backend: Backend,
    config: &UsdConfig,
    rng: &mut SimRng,
    budget: u64,
) -> StabilizationResult {
    let initial_plurality = config.plurality();
    match backend {
        Backend::Sequential => {
            let mut sim = SequentialUsd::new(config);
            stabilize(&mut sim, rng, budget)
        }
        Backend::SkipAhead => {
            let mut sim = SkipAheadUsd::new(config);
            stabilize(&mut sim, rng, budget)
        }
        _ => {
            let mut sim = make_simulator(backend, config);
            let (interactions, stabilized) = sim.run_to_silence(rng, budget);
            result_from_counts(
                sim.counts(),
                config.k(),
                interactions,
                stabilized,
                initial_plurality,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitialConfigBuilder;

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(
            "sequential".parse::<Backend>().unwrap(),
            Backend::Sequential
        );
        assert_eq!("skip-ahead".parse::<Backend>().unwrap(), Backend::SkipAhead);
        assert!("warp".parse::<Backend>().is_err());
        assert!(Backend::Agent.per_agent_memory());
        assert!(!Backend::Batch.per_agent_memory());
    }

    #[test]
    fn all_backends_elect_the_plurality_under_strong_bias() {
        let config = UsdConfig::decided(vec![800, 200]);
        for b in Backend::ALL {
            let mut rng = SimRng::new(11);
            let result = stabilize_with_backend(b, &config, &mut rng, u64::MAX / 2);
            assert!(result.stabilized(), "{b} did not stabilize");
            assert_eq!(
                result.outcome,
                ConsensusOutcome::Winner(0),
                "{b} elected the wrong opinion"
            );
            assert!(result.plurality_won(), "{b}");
            assert!(result.interactions > 0, "{b}");
        }
    }

    #[test]
    fn all_backends_report_all_undecided_absorption() {
        let config = UsdConfig::decided(vec![1, 1]);
        for b in Backend::ALL {
            let mut rng = SimRng::new(5);
            let result = stabilize_with_backend(b, &config, &mut rng, 100_000);
            assert!(result.stabilized(), "{b}");
            assert_eq!(result.outcome, ConsensusOutcome::AllUndecided, "{b}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        let config = UsdConfig::decided(vec![500, 500]);
        for b in Backend::ALL {
            let mut rng = SimRng::new(7);
            let result = stabilize_with_backend(b, &config, &mut rng, 50);
            assert_eq!(result.outcome, ConsensusOutcome::Timeout, "{b}");
            assert!(!result.stabilized(), "{b}");
        }
    }

    #[test]
    fn generic_backends_match_figure1_means() {
        // Cross-backend mean stabilization times on a small Figure-1
        // instance must agree within a generous tolerance.
        let config = InitialConfigBuilder::new(300, 3).figure1();
        let reps = 60u64;
        let mut means = [0.0f64; 3];
        for (slot, b) in [Backend::Agent, Backend::Count, Backend::Batch]
            .into_iter()
            .enumerate()
        {
            for seed in 0..reps {
                let mut rng = SimRng::new(seed * 13 + slot as u64);
                let r = stabilize_with_backend(b, &config, &mut rng, u64::MAX / 2);
                assert!(r.stabilized());
                means[slot] += r.interactions as f64;
            }
            means[slot] /= reps as f64;
        }
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) / max < 0.15, "backends diverge: {means:?}");
    }

    #[test]
    #[should_panic(expected = "not a generic-substrate backend")]
    fn make_simulator_rejects_specialized_engines() {
        make_simulator(Backend::SkipAhead, &UsdConfig::decided(vec![2, 2]));
    }
}
