//! Convenience glue: run a simulator while recording a [`Trajectory`].
//!
//! Wraps the "simulate + snapshot once per parallel round" loop that the
//! figure binaries, the CLI, and the examples all need, producing the
//! binary-encodable [`Trajectory`] of [`crate::encode`].

use crate::dynamics::UsdSimulator;
use crate::encode::Trajectory;
use sim_stats::rng::SimRng;

/// Run `sim` until it is silent or `budget` interactions have elapsed,
/// recording a snapshot roughly every `every` interactions (plus the
/// initial and final configurations). Returns the trajectory and whether
/// the run stabilized.
pub fn record_run<S: UsdSimulator>(
    sim: &mut S,
    rng: &mut SimRng,
    budget: u64,
    every: u64,
) -> (Trajectory, bool) {
    assert!(every >= 1, "cadence must be at least 1");
    let mut traj = Trajectory::new(sim.n(), sim.k());
    traj.push(sim.interactions(), sim.config());
    let mut next_capture = sim.interactions() + every;
    let mut stabilized = false;
    while sim.interactions() < budget {
        match sim.step_effective(rng) {
            None => {
                stabilized = true;
                break;
            }
            Some(_) => {
                if sim.interactions() >= next_capture {
                    traj.push(sim.interactions(), sim.config());
                    next_capture = sim.interactions() + every;
                }
                if sim.is_silent() {
                    stabilized = true;
                    break;
                }
            }
        }
    }
    let final_t = sim.interactions();
    if traj.snapshots.last().map(|&(t, _)| t) != Some(final_t) {
        traj.push(final_t, sim.config());
    }
    (traj, stabilized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::SkipAheadUsd;
    use crate::init::InitialConfigBuilder;

    #[test]
    fn records_initial_and_final_snapshots() {
        let config = InitialConfigBuilder::new(1_000, 3).figure1();
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(1);
        let (traj, stabilized) = record_run(&mut sim, &mut rng, u64::MAX / 2, 1_000);
        assert!(stabilized);
        assert!(traj.snapshots.len() >= 2);
        assert_eq!(traj.snapshots[0].0, 0);
        assert_eq!(traj.snapshots[0].1, config);
        let (t_final, final_cfg) = traj.snapshots.last().unwrap();
        assert_eq!(*t_final, sim.interactions());
        assert!(final_cfg.is_silent());
    }

    #[test]
    fn snapshots_respect_cadence_and_order() {
        let config = InitialConfigBuilder::new(500, 2).figure1();
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(2);
        let (traj, _) = record_run(&mut sim, &mut rng, u64::MAX / 2, 500);
        let mut last = 0;
        for &(t, ref cfg) in &traj.snapshots {
            assert!(t >= last);
            assert_eq!(cfg.n(), 500);
            last = t;
        }
    }

    #[test]
    fn budget_limits_recording() {
        let config = InitialConfigBuilder::new(2_000, 2).balanced();
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(3);
        let (traj, stabilized) = record_run(&mut sim, &mut rng, 4_000, 1_000);
        assert!(!stabilized, "a dead heat cannot stabilize in 2 rounds");
        assert!(traj.snapshots.last().unwrap().0 >= 4_000);
    }

    #[test]
    fn roundtrips_through_the_binary_format() {
        let config = InitialConfigBuilder::new(800, 4).figure1();
        let mut sim = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(4);
        let (traj, _) = record_run(&mut sim, &mut rng, u64::MAX / 2, 800);
        let decoded = Trajectory::decode(traj.encode()).unwrap();
        assert_eq!(decoded, traj);
    }
}
