//! The USD configuration vector x = (x₁, …, x_k, u).
//!
//! [`UsdConfig`] is the exact object the paper's notation section defines:
//! per-opinion counts plus the undecided count, with the population size
//! `n` as the conserved invariant. It converts to and from the generic
//! [`pop_proto::CountConfig`] (opinion `i` ↔ dense index `i`, ⊥ ↔ index `k`)
//! and carries the accessors the analysis needs (bias, gaps, ordering).

use pop_proto::CountConfig;
use std::fmt;

/// A configuration of the Undecided State Dynamics: opinion counts
/// x₁, …, x_k and the undecided count u.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UsdConfig {
    x: Vec<u64>,
    u: u64,
}

impl UsdConfig {
    /// Build from opinion counts and an undecided count. Requires `k ≥ 1`.
    pub fn new(x: Vec<u64>, u: u64) -> Self {
        assert!(!x.is_empty(), "need at least one opinion");
        UsdConfig { x, u }
    }

    /// The paper's initial configurations have `u(0) = 0`.
    pub fn decided(x: Vec<u64>) -> Self {
        Self::new(x, 0)
    }

    /// Number of opinions `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.x.len()
    }

    /// Population size `n = Σxᵢ + u`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.x.iter().sum::<u64>() + self.u
    }

    /// Count of agents holding opinion `i` (0-based).
    #[inline]
    pub fn x(&self, i: usize) -> u64 {
        self.x[i]
    }

    /// All opinion counts.
    #[inline]
    pub fn opinions(&self) -> &[u64] {
        &self.x
    }

    /// Undecided count `u`.
    #[inline]
    pub fn u(&self) -> u64 {
        self.u
    }

    /// Number of decided agents `n − u`.
    #[inline]
    pub fn decided_count(&self) -> u64 {
        self.x.iter().sum()
    }

    /// Index of a plurality opinion (max count; smallest index on ties).
    /// `None` if every opinion has zero support.
    pub fn plurality(&self) -> Option<usize> {
        let (idx, &max) = self
            .x
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        (max > 0).then_some(idx)
    }

    /// The bias x₍₁₎ − x₍₂₎ between the largest and second-largest opinion
    /// counts (0 when k = 1).
    pub fn bias(&self) -> u64 {
        if self.x.len() < 2 {
            return 0;
        }
        let mut first = 0u64;
        let mut second = 0u64;
        for &v in &self.x {
            if v >= first {
                second = first;
                first = v;
            } else if v > second {
                second = v;
            }
        }
        first - second
    }

    /// Signed gap Δᵢⱼ = xᵢ − xⱼ.
    pub fn gap(&self, i: usize, j: usize) -> i64 {
        self.x[i] as i64 - self.x[j] as i64
    }

    /// Maximum pairwise gap max₍ᵢⱼ₎ {xᵢ − xⱼ} = max − min over opinions.
    pub fn max_gap(&self) -> u64 {
        let max = self.x.iter().max().copied().unwrap_or(0);
        let min = self.x.iter().min().copied().unwrap_or(0);
        max - min
    }

    /// Opinion counts sorted descending (the paper's x₁ ≥ x₂ ≥ … ≥ x_k).
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v = self.x.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Whether the configuration is a consensus (all agents decided on one
    /// opinion). Returns the winning opinion.
    pub fn consensus(&self) -> Option<usize> {
        if self.u != 0 {
            return None;
        }
        let mut winner = None;
        for (i, &c) in self.x.iter().enumerate() {
            if c > 0 {
                if winner.is_some() {
                    return None;
                }
                winner = Some(i);
            }
        }
        winner
    }

    /// Whether the configuration is **silent** under USD: consensus, or the
    /// all-undecided absorbing state (or an empty/singleton population).
    pub fn is_silent(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        self.consensus().is_some() || self.u == n
    }

    /// Number of opinions with positive support.
    pub fn support(&self) -> usize {
        self.x.iter().filter(|&&c| c > 0).count()
    }

    /// Convert to the generic dense count configuration
    /// (opinion `i` → index `i`, ⊥ → index `k`).
    pub fn to_count_config(&self) -> CountConfig {
        let mut counts = self.x.clone();
        counts.push(self.u);
        CountConfig::from_counts(counts)
    }

    /// Convert back from a dense count configuration with `k + 1` states.
    pub fn from_count_config(config: &CountConfig) -> Self {
        let counts = config.counts();
        assert!(counts.len() >= 2, "need at least opinion + undecided");
        UsdConfig {
            x: counts[..counts.len() - 1].to_vec(),
            u: counts[counts.len() - 1],
        }
    }
}

impl fmt::Display for UsdConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x=[")?;
        for (i, &v) in self.x.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "], u={}, n={}", self.u, self.n())
    }
}

/// Errors from [`UsdConfig::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid UsdConfig: {}", self.0)
    }
}

impl std::error::Error for ParseConfigError {}

impl UsdConfig {
    /// Render as the canonical JSON object `{"x":[…],"u":…}`.
    ///
    /// Hand-rolled (this workspace builds without a registry, so there is no
    /// serde); the format is plain JSON and round-trips through
    /// [`UsdConfig::from_json`].
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(16 + 8 * self.x.len());
        s.push_str("{\"x\":[");
        for (i, &v) in self.x.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&v.to_string());
        }
        s.push_str("],\"u\":");
        s.push_str(&self.u.to_string());
        s.push('}');
        s
    }

    /// Parse the JSON object produced by [`UsdConfig::to_json`]. Accepts
    /// arbitrary whitespace and either field order; rejects unknown or
    /// missing fields.
    pub fn from_json(text: &str) -> Result<Self, ParseConfigError> {
        let err = |m: &str| ParseConfigError(m.to_string());
        let body = text.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| err("expected a JSON object"))?;

        let mut x: Option<Vec<u64>> = None;
        let mut u: Option<u64> = None;
        let mut rest = body.trim();
        while !rest.is_empty() {
            let after_key = rest
                .strip_prefix("\"x\"")
                .map(|r| ("x", r))
                .or_else(|| rest.strip_prefix("\"u\"").map(|r| ("u", r)));
            let (key, after) = after_key.ok_or_else(|| err("expected field `x` or `u`"))?;
            let after = after
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| err("expected `:` after field name"))?
                .trim_start();
            let remaining = match key {
                "x" => {
                    if x.is_some() {
                        return Err(err("duplicate field `x`"));
                    }
                    let inner = after
                        .strip_prefix('[')
                        .ok_or_else(|| err("field `x` must be an array"))?;
                    let close = inner.find(']').ok_or_else(|| err("unterminated array"))?;
                    let mut values = Vec::new();
                    let elements = inner[..close].trim();
                    if !elements.is_empty() {
                        for part in elements.split(',') {
                            values.push(
                                part.trim()
                                    .parse::<u64>()
                                    .map_err(|e| err(&format!("bad count: {e}")))?,
                            );
                        }
                    }
                    x = Some(values);
                    &inner[close + 1..]
                }
                _ => {
                    if u.is_some() {
                        return Err(err("duplicate field `u`"));
                    }
                    let end = after
                        .find(|c: char| !c.is_ascii_digit())
                        .unwrap_or(after.len());
                    u = Some(
                        after[..end]
                            .parse::<u64>()
                            .map_err(|e| err(&format!("bad undecided count: {e}")))?,
                    );
                    &after[end..]
                }
            };
            rest = remaining.trim_start();
            if let Some(more) = rest.strip_prefix(',') {
                rest = more.trim_start();
                if rest.is_empty() {
                    return Err(err("trailing comma"));
                }
            } else if !rest.is_empty() {
                return Err(err("expected `,` between fields"));
            }
        }
        let x = x.ok_or_else(|| err("missing field `x`"))?;
        let u = u.ok_or_else(|| err("missing field `u`"))?;
        if x.is_empty() {
            return Err(err("need at least one opinion"));
        }
        Ok(UsdConfig::new(x, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = UsdConfig::new(vec![5, 3, 2], 10);
        assert_eq!(c.k(), 3);
        assert_eq!(c.n(), 20);
        assert_eq!(c.u(), 10);
        assert_eq!(c.decided_count(), 10);
        assert_eq!(c.x(1), 3);
        assert_eq!(c.support(), 3);
    }

    #[test]
    fn plurality_and_bias() {
        let c = UsdConfig::decided(vec![10, 7, 7, 1]);
        assert_eq!(c.plurality(), Some(0));
        assert_eq!(c.bias(), 3);
        assert_eq!(c.max_gap(), 9);
        assert_eq!(c.gap(0, 3), 9);
        assert_eq!(c.gap(3, 0), -9);
    }

    #[test]
    fn plurality_tie_prefers_smallest_index() {
        let c = UsdConfig::decided(vec![5, 9, 9]);
        assert_eq!(c.plurality(), Some(1));
        assert_eq!(c.bias(), 0);
    }

    #[test]
    fn plurality_of_all_zero_support() {
        let c = UsdConfig::new(vec![0, 0], 7);
        assert_eq!(c.plurality(), None);
    }

    #[test]
    fn sorted_desc_matches_paper_ordering() {
        let c = UsdConfig::decided(vec![3, 9, 1, 9]);
        assert_eq!(c.sorted_desc(), vec![9, 9, 3, 1]);
    }

    #[test]
    fn consensus_detection() {
        assert_eq!(UsdConfig::new(vec![0, 8, 0], 0).consensus(), Some(1));
        assert_eq!(UsdConfig::new(vec![0, 8, 0], 1).consensus(), None);
        assert_eq!(UsdConfig::new(vec![4, 4, 0], 0).consensus(), None);
        assert_eq!(UsdConfig::new(vec![0, 0], 0).consensus(), None);
    }

    #[test]
    fn silence_includes_all_undecided() {
        assert!(UsdConfig::new(vec![0, 0], 9).is_silent());
        assert!(UsdConfig::new(vec![9, 0], 0).is_silent());
        assert!(!UsdConfig::new(vec![8, 0], 1).is_silent());
        // Singleton population is trivially silent.
        assert!(UsdConfig::new(vec![1, 0], 0).is_silent());
    }

    #[test]
    fn count_config_roundtrip() {
        let c = UsdConfig::new(vec![4, 6], 2);
        let cc = c.to_count_config();
        assert_eq!(cc.counts(), &[4, 6, 2]);
        assert_eq!(UsdConfig::from_count_config(&cc), c);
    }

    #[test]
    fn display_format() {
        let c = UsdConfig::new(vec![1, 2], 3);
        assert_eq!(format!("{c}"), "x=[1, 2], u=3, n=6");
    }

    #[test]
    #[should_panic(expected = "at least one opinion")]
    fn empty_opinion_vector_rejected() {
        UsdConfig::new(vec![], 5);
    }

    #[test]
    fn json_roundtrip() {
        let c = UsdConfig::new(vec![4, 6], 2);
        assert_eq!(c.to_json(), r#"{"x":[4,6],"u":2}"#);
        assert_eq!(UsdConfig::from_json(&c.to_json()).unwrap(), c);
        // Whitespace and field order are accepted.
        let parsed = UsdConfig::from_json(" { \"u\" : 2 , \"x\" : [ 4 , 6 ] } ").unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn json_rejects_unknown_and_missing_fields() {
        let e = UsdConfig::from_json(r#"{"bogus":1}"#).unwrap_err();
        assert!(e.to_string().contains("expected field `x` or `u`"), "{e}");
        let e = UsdConfig::from_json(r#"{"u":2}"#).unwrap_err();
        assert!(e.to_string().contains("missing field `x`"), "{e}");
        let e = UsdConfig::from_json(r#"{"x":[]}"#).unwrap_err();
        assert!(e.to_string().contains("missing field `u`"), "{e}");
        let e = UsdConfig::from_json(r#"{"x":[1],"x":[2],"u":0}"#).unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
        let e = UsdConfig::from_json(r#"{"x":[],"u":0}"#).unwrap_err();
        assert!(e.to_string().contains("at least one opinion"), "{e}");
        assert!(UsdConfig::from_json("not json").is_err());
        assert!(UsdConfig::from_json(r#"{"x":[1,"u":0}"#).is_err());
    }
}
