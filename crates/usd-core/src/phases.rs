//! Phase segmentation of a USD run.
//!
//! Section 2 of the paper describes the qualitative shape of every run
//! (visible in Figure 1 left):
//!
//! 1. **Ramp** — from the all-decided start, clashes dominate and u(t)
//!    climbs steeply toward the plateau while every opinion shrinks;
//! 2. **Plateau** — u(t) hovers near n/2 − n/4k; opinions drift slowly,
//!    some minorities even growing — this is the long phase whose length
//!    the lower bound quantifies;
//! 3. **Endgame** — u(t) falls below all thresholds but the winner's, every
//!    other opinion collapses, and the system races to consensus.
//!
//! [`segment`] recovers these phases from a recorded u(t) trajectory.

/// Indices (into the snapshot sequence) where the phases of a run begin/end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phases {
    /// First snapshot index at which u is within the plateau band.
    pub ramp_end: usize,
    /// Last snapshot index at which u is within the plateau band.
    pub plateau_end: usize,
    /// Total number of snapshots.
    pub len: usize,
}

impl Phases {
    /// Fraction of the run spent in the plateau (by snapshot count).
    pub fn plateau_fraction(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        (self.plateau_end.saturating_sub(self.ramp_end) + 1) as f64 / self.len as f64
    }
}

/// Segment a u(t) trajectory into ramp / plateau / endgame.
///
/// `plateau` is the theoretical plateau value n/2 − n/4k and `band` the
/// tolerance half-width (a natural choice is Θ(√(n log n)), the Lemma 3.1
/// slack). Snapshots with `|u − plateau| ≤ band` count as plateau points.
///
/// Returns `None` if no snapshot enters the band (run too short).
pub fn segment(u_trajectory: &[f64], plateau: f64, band: f64) -> Option<Phases> {
    assert!(band >= 0.0, "band must be non-negative");
    let in_band = |u: f64| (u - plateau).abs() <= band;
    let ramp_end = u_trajectory.iter().position(|&u| in_band(u))?;
    let plateau_end = u_trajectory
        .iter()
        .rposition(|&u| in_band(u))
        .expect("position found above");
    Some(Phases {
        ramp_end,
        plateau_end,
        len: u_trajectory.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_ideal_trajectory() {
        // Synthetic: ramp 0..10, plateau 10..40, endgame 40..50.
        let mut u = Vec::new();
        for i in 0..10 {
            u.push(i as f64 * 10.0); // 0..90
        }
        u.extend(std::iter::repeat_n(100.0, 30));
        for i in 0..10 {
            u.push(100.0 - (i as f64 + 1.0) * 10.0);
        }
        let phases = segment(&u, 100.0, 5.0).unwrap();
        assert_eq!(phases.ramp_end, 10);
        assert_eq!(phases.plateau_end, 39);
        assert_eq!(phases.len, 50);
        assert!((phases.plateau_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn none_when_band_never_entered() {
        let u = vec![0.0, 10.0, 20.0];
        assert_eq!(segment(&u, 100.0, 5.0), None);
    }

    #[test]
    fn single_point_in_band() {
        let u = vec![0.0, 100.0, 0.0];
        let phases = segment(&u, 100.0, 1.0).unwrap();
        assert_eq!(phases.ramp_end, 1);
        assert_eq!(phases.plateau_end, 1);
    }

    #[test]
    fn band_tolerance_is_inclusive() {
        let u = vec![95.0];
        assert!(segment(&u, 100.0, 5.0).is_some());
        assert!(segment(&u, 100.0, 4.999).is_none());
    }

    #[test]
    fn empty_trajectory() {
        assert_eq!(segment(&[], 100.0, 5.0), None);
    }
}
