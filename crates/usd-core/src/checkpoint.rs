//! Crash-safe run checkpoints for the USD drivers.
//!
//! A [`RunCheckpoint`] packages everything a `usd-sim run` needs to resume
//! bit-identically: the run identity (backend, n, k, seed, topology), the
//! driver RNG stream position, the optional `--timeline` flight recorder,
//! and the engine's own opaque state payload (written through
//! [`Simulator::snapshot_state`](pop_proto::Simulator::snapshot_state)).
//!
//! The container serializes through [`pop_proto::checkpoint`]: a sealed
//! body behind the magic/version/CRC header, persisted atomically
//! (temp file + fsync + rename) with a one-deep `.prev` fallback chain.
//! Loading validates the header, the checksum, and the run identity echo,
//! and never panics on corrupt or truncated input.
//!
//! Resume contract: rebuild the simulator from the *flags* exactly as the
//! original run did (the constructor consumes the same RNG draws — e.g.
//! the shuffled initial layout on topologies), then
//! [`restore_state`](pop_proto::Simulator::restore_state) from
//! [`RunCheckpoint::engine`] and continue with the RNG positioned at
//! [`RunCheckpoint::rng`]. Chunk boundaries in the drivers are a pure
//! function of the absolute interaction clock, so the resumed trajectory —
//! including the timeline JSONL — is byte-for-byte the uninterrupted one.

use pop_proto::checkpoint::{self, CheckpointError, FaultPlan, SnapshotReader, SnapshotWriter};
use pop_proto::telemetry::timeline::TimelineRecorder;
use std::path::{Path, PathBuf};

/// The identity of a single run: the fields that pin which trajectory a
/// persisted artifact (a [`RunCheckpoint`], a `topology_sweep` cell file)
/// belongs to. Extracted so every consumer that echoes and re-validates a
/// run identity — [`RunCheckpoint::check_identity`], the sweep's
/// `--resume-dir` cell headers — shares one definition and one mismatch
/// report instead of re-deriving the strings independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunIdentity {
    /// Backend flag name (`agent`, …, `replica`; replica ensembles append
    /// the lane count, e.g. `replica:64`, keeping the wire format a single
    /// string).
    pub backend: String,
    /// Population size.
    pub n: u64,
    /// Opinion count k (the engines hold k + 1 states).
    pub k: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Topology family name (e.g. `regular:8`); empty for clique runs.
    pub topology: String,
}

impl RunIdentity {
    /// Build an identity from its fields.
    pub fn new(
        backend: impl Into<String>,
        n: u64,
        k: u32,
        seed: u64,
        topology: impl Into<String>,
    ) -> RunIdentity {
        RunIdentity {
            backend: backend.into(),
            n,
            k,
            seed,
            topology: topology.into(),
        }
    }

    /// The canonical one-line rendering, used verbatim in sweep cell
    /// headers: `backend=… n=… k=… seed=… topology='…'`.
    pub fn describe(&self) -> String {
        format!(
            "backend={} n={} k={} seed={} topology='{}'",
            self.backend, self.n, self.k, self.seed, self.topology
        )
    }

    /// Field-by-field comparison against what the caller's flags say,
    /// naming every mismatching field (`self` is the persisted echo,
    /// `flags` the live request). Empty means the identities agree.
    pub fn mismatches(&self, flags: &RunIdentity) -> Vec<String> {
        let mut out = Vec::new();
        if self.backend != flags.backend {
            out.push(format!(
                "backend {} (flags say {})",
                self.backend, flags.backend
            ));
        }
        if self.n != flags.n {
            out.push(format!("n {} (flags say {})", self.n, flags.n));
        }
        if self.k != flags.k {
            out.push(format!("k {} (flags say {})", self.k, flags.k));
        }
        if self.seed != flags.seed {
            out.push(format!("seed {} (flags say {})", self.seed, flags.seed));
        }
        if self.topology != flags.topology {
            out.push(format!(
                "topology '{}' (flags say '{}')",
                self.topology, flags.topology
            ));
        }
        out
    }
}

impl std::fmt::Display for RunIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A complete, resumable snapshot of a single `usd-sim run`.
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// Backend flag name (`agent`, `count`, `batch`, `graph`,
    /// `batchgraph`, `seq`, `skip`; `replica:<lanes>` for ensembles).
    pub backend: String,
    /// Population size.
    pub n: u64,
    /// Opinion count k (the engines hold k + 1 states).
    pub k: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Topology family name (e.g. `regular:8`); empty for clique runs.
    pub topology: String,
    /// Driver RNG stream position (Xoshiro256++ state words).
    pub rng: [u64; 4],
    /// The `--timeline` flight recorder, when the run samples one.
    pub recorder: Option<TimelineRecorder>,
    /// Opaque engine payload ([`snapshot_state`] bytes).
    ///
    /// [`snapshot_state`]: pop_proto::Simulator::snapshot_state
    pub engine: Vec<u8>,
}

impl RunCheckpoint {
    /// Serialize and seal (magic + version + CRC header).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_str(&self.backend);
        w.put_u64(self.n);
        w.put_u32(self.k);
        w.put_u64(self.seed);
        w.put_str(&self.topology);
        for word in self.rng {
            w.put_u64(word);
        }
        match &self.recorder {
            Some(rec) => {
                w.put_bool(true);
                rec.write_snapshot(&mut w);
            }
            None => w.put_bool(false),
        }
        w.put_bytes(&self.engine);
        checkpoint::seal(&w.into_bytes())
    }

    /// Parse a sealed checkpoint, validating header and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<RunCheckpoint, CheckpointError> {
        Self::decode_body(checkpoint::open(bytes)?)
    }

    /// Decode an already-validated (header-stripped) checkpoint body.
    fn decode_body(body: &[u8]) -> Result<RunCheckpoint, CheckpointError> {
        let mut r = SnapshotReader::new(body);
        let backend = r.get_string()?;
        let n = r.get_u64()?;
        let k = r.get_u32()?;
        let seed = r.get_u64()?;
        let topology = r.get_string()?;
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = r.get_u64()?;
        }
        if rng == [0, 0, 0, 0] {
            return Err(CheckpointError::Corrupt(
                "checkpoint RNG state is all-zero".into(),
            ));
        }
        let recorder = if r.get_bool()? {
            Some(TimelineRecorder::read_snapshot(&mut r)?)
        } else {
            None
        };
        let engine = r.get_bytes()?.to_vec();
        r.expect_end()?;
        Ok(RunCheckpoint {
            backend,
            n,
            k,
            seed,
            topology,
            rng,
            recorder,
            engine,
        })
    }

    /// Persist atomically at `path`, rotating any existing checkpoint to
    /// `<path>.prev` first (the fallback chain [`RunCheckpoint::load`]
    /// walks).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::persist(path, &self.to_bytes())
    }

    /// [`RunCheckpoint::save`] under a fault-injection plan (test harness).
    pub fn save_with(&self, path: &Path, plan: &mut FaultPlan) -> Result<(), CheckpointError> {
        checkpoint::persist_with(path, &self.to_bytes(), plan)
    }

    /// Load from `path`, falling back to `<path>.prev` if the primary is
    /// missing, truncated, or corrupt. Returns the checkpoint and the path
    /// that actually validated.
    pub fn load(path: &Path) -> Result<(RunCheckpoint, PathBuf), CheckpointError> {
        let (body, from) = checkpoint::load_chain(path)?;
        match RunCheckpoint::decode_body(&body) {
            Ok(ckpt) => Ok((ckpt, from)),
            Err(primary_err) => {
                // The primary passed the CRC gate but failed structural
                // decoding; give the rotated predecessor one chance.
                let prev = checkpoint::prev_path(path);
                if from != prev {
                    if let Ok(body) = checkpoint::load_one(&prev) {
                        if let Ok(ckpt) = RunCheckpoint::decode_body(&body) {
                            return Ok((ckpt, prev));
                        }
                    }
                }
                Err(primary_err)
            }
        }
    }

    /// The identity echo this checkpoint carries, as a [`RunIdentity`].
    pub fn identity(&self) -> RunIdentity {
        RunIdentity::new(
            self.backend.clone(),
            self.n,
            self.k,
            self.seed,
            self.topology.clone(),
        )
    }

    /// Validate the run-identity echo against the caller's flags; the
    /// error message names every mismatching field (delegates to
    /// [`RunIdentity::mismatches`]).
    pub fn check_identity(
        &self,
        backend: &str,
        n: u64,
        k: u32,
        seed: u64,
        topology: &str,
    ) -> Result<(), CheckpointError> {
        let flags = RunIdentity::new(backend, n, k, seed, topology);
        let mismatches = self.identity().mismatches(&flags);
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "checkpoint was written by a different run: {}",
                mismatches.join(", ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_stats::rng::SimRng;

    fn sample() -> RunCheckpoint {
        let config = crate::config::UsdConfig::decided(vec![60, 40]);
        let mut sim = crate::backend::make_simulator(crate::Backend::Count, &config);
        let mut rng = SimRng::new(9);
        sim.run_to_silence(&mut rng, 500);
        let mut w = SnapshotWriter::new();
        sim.snapshot_state(&mut w).unwrap();
        RunCheckpoint {
            backend: "count".into(),
            n: 100,
            k: 2,
            seed: 9,
            topology: String::new(),
            rng: rng.state(),
            recorder: None,
            engine: w.into_bytes(),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let back = RunCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.backend, "count");
        assert_eq!((back.n, back.k, back.seed), (100, 2, 9));
        assert_eq!(back.topology, "");
        assert_eq!(back.rng, ckpt.rng);
        assert!(back.recorder.is_none());
        assert_eq!(back.engine, ckpt.engine);
        // Same state serializes to the same bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn every_corruption_is_rejected_cleanly() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                RunCheckpoint::from_bytes(&bad).is_err(),
                "bit flip at byte {i} went unnoticed"
            );
        }
        for len in 0..bytes.len() {
            assert!(RunCheckpoint::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn identity_mismatch_names_the_field() {
        let ckpt = sample();
        assert!(ckpt.check_identity("count", 100, 2, 9, "").is_ok());
        let err = ckpt
            .check_identity("graph", 100, 2, 9, "cycle")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("backend"), "{msg}");
        assert!(msg.contains("topology"), "{msg}");
        assert!(!msg.contains("seed"), "{msg}");
    }

    #[test]
    fn run_identity_describes_and_diffs() {
        let a = RunIdentity::new("replica:64", 1000, 2, 7, "regular:8");
        assert_eq!(
            a.describe(),
            "backend=replica:64 n=1000 k=2 seed=7 topology='regular:8'"
        );
        assert_eq!(a.to_string(), a.describe());
        assert!(a.mismatches(&a.clone()).is_empty());
        let b = RunIdentity::new("agent", 1000, 3, 7, "regular:8");
        let diff = a.mismatches(&b);
        assert_eq!(diff.len(), 2);
        assert!(diff[0].contains("backend"), "{diff:?}");
        assert!(diff[1].contains("k"), "{diff:?}");
    }

    #[test]
    fn save_load_walks_the_fallback_chain() {
        let dir = std::env::temp_dir().join(format!("usd_core_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = sample();
        ckpt.save(&path).unwrap();
        ckpt.save(&path).unwrap(); // rotates the first into .prev
                                   // Corrupt the primary; load must fall back to .prev.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (back, from) = RunCheckpoint::load(&path).unwrap();
        assert_eq!(from, checkpoint::prev_path(&path));
        assert_eq!(back.engine, ckpt.engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
