//! Property-based tests for usd-core.
//!
//! Key properties: population conservation across engines for arbitrary
//! configurations, exactness of the closed-form drifts against brute-force
//! enumeration for arbitrary configurations, binary trajectory round-trips,
//! and consistency between the specialized USD engines and the generic
//! substrate simulator running the same protocol.

use pop_proto::{CountSimulator, Protocol};
use proptest::prelude::*;
use sim_stats::rng::SimRng;
use usd_core::analysis::{
    expected_gap_drift, expected_opinion_drift, expected_undecided_drift, interaction_probabilities,
};
use usd_core::dynamics::{SequentialUsd, SkipAheadUsd, UsdSimulator};
use usd_core::encode::Trajectory;
use usd_core::protocol::UndecidedStateDynamics;
use usd_core::UsdConfig;

/// Arbitrary small USD configurations with n ≥ 2.
fn usd_config() -> impl Strategy<Value = UsdConfig> {
    (1usize..5)
        .prop_flat_map(|k| (proptest::collection::vec(0u64..25, k), 0u64..25))
        .prop_filter("need n >= 2", |(x, u)| x.iter().sum::<u64>() + u >= 2)
        .prop_map(|(x, u)| UsdConfig::new(x, u))
}

/// Brute-force one-step drift of a statistic by enumerating ordered pairs.
fn brute_force_drift(config: &UsdConfig, stat: impl Fn(&UsdConfig) -> f64) -> f64 {
    let k = config.k();
    let proto = UndecidedStateDynamics::new(k);
    let counts = config.to_count_config();
    let n = config.n() as f64;
    let base = stat(config);
    let mut acc = 0.0;
    for a in 0..=k {
        let ca = counts.count(a);
        if ca == 0 {
            continue;
        }
        for b in 0..=k {
            let cb = if a == b {
                counts.count(b).saturating_sub(1)
            } else {
                counts.count(b)
            };
            if cb == 0 {
                continue;
            }
            let weight = ca as f64 * cb as f64 / (n * (n - 1.0));
            let (ta, tb) = proto.transition_indices(a, b);
            let mut next = counts.counts().to_vec();
            next[a] -= 1;
            next[b] -= 1;
            next[ta] += 1;
            next[tb] += 1;
            let next_cfg = UsdConfig::new(next[..k].to_vec(), next[k]);
            acc += weight * (stat(&next_cfg) - base);
        }
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both specialized engines conserve the population on any input.
    #[test]
    fn engines_conserve_population(config in usd_config(), seed in any::<u64>()) {
        let n = config.n();
        let mut seq = SequentialUsd::new(&config);
        let mut rng = SimRng::new(seed);
        for _ in 0..300 {
            seq.step(&mut rng);
            prop_assert_eq!(seq.opinions().iter().sum::<u64>() + seq.undecided(), n);
        }
        let mut skip = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(seed ^ 0x1234);
        for _ in 0..300 {
            if skip.step_effective(&mut rng).is_none() {
                break;
            }
            prop_assert_eq!(skip.opinions().iter().sum::<u64>() + skip.undecided(), n);
        }
    }

    /// Closed-form undecided drift equals brute-force enumeration.
    #[test]
    fn undecided_drift_exact(config in usd_config()) {
        let closed = expected_undecided_drift(&config);
        let brute = brute_force_drift(&config, |c| c.u() as f64);
        prop_assert!((closed - brute).abs() < 1e-9,
            "closed {} vs brute {} for {}", closed, brute, config);
    }

    /// Closed-form opinion drift equals brute-force enumeration.
    #[test]
    fn opinion_drift_exact(config in usd_config()) {
        for i in 0..config.k() {
            let closed = expected_opinion_drift(&config, i);
            let brute = brute_force_drift(&config, |c| c.x(i) as f64);
            prop_assert!((closed - brute).abs() < 1e-9,
                "opinion {}: closed {} vs brute {} for {}", i, closed, brute, config);
        }
    }

    /// Closed-form gap drift equals brute-force enumeration.
    #[test]
    fn gap_drift_exact(config in usd_config()) {
        for i in 0..config.k() {
            for j in 0..config.k() {
                if i == j { continue; }
                let closed = expected_gap_drift(&config, i, j);
                let brute = brute_force_drift(&config, |c| c.gap(i, j) as f64);
                prop_assert!((closed - brute).abs() < 1e-9,
                    "gap ({},{}): closed {} vs brute {}", i, j, closed, brute);
            }
        }
    }

    /// Outcome probabilities are a distribution and noop matches the
    /// protocol's is_noop census.
    #[test]
    fn interaction_probabilities_are_distribution(config in usd_config()) {
        let p = interaction_probabilities(&config);
        prop_assert!(p.clash >= -1e-12 && p.adopt >= -1e-12 && p.noop >= -1e-12);
        prop_assert!((p.clash + p.adopt + p.noop - 1.0).abs() < 1e-9);
    }

    /// The trajectory binary format round-trips arbitrary snapshots.
    #[test]
    fn trajectory_roundtrip(config in usd_config(), times in proptest::collection::vec(0u64..1_000_000, 0..10)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut traj = Trajectory::new(config.n(), config.k());
        for &t in &sorted {
            traj.push(t, config.clone());
        }
        let decoded = Trajectory::decode(traj.encode()).unwrap();
        prop_assert_eq!(decoded, traj);
    }

    /// The generic substrate simulator running the USD protocol and the
    /// specialized SequentialUsd engine both preserve silence as absorbing.
    #[test]
    fn silence_absorbing_everywhere(config in usd_config(), seed in any::<u64>()) {
        if !config.is_silent() {
            return Ok(());
        }
        let proto = UndecidedStateDynamics::new(config.k());
        let cc = config.to_count_config();
        let mut generic = CountSimulator::new(proto, &cc);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(!generic.step(&mut rng));
        }
        let mut seq = SequentialUsd::new(&config);
        prop_assert!(seq.step_effective(&mut rng).is_none());
    }

    /// Silence predicates agree between UsdConfig and the generic protocol.
    #[test]
    fn silence_predicates_agree(config in usd_config()) {
        let proto = UndecidedStateDynamics::new(config.k());
        let via_protocol = proto.is_silent(config.to_count_config().counts());
        prop_assert_eq!(config.is_silent(), via_protocol, "config {}", config);
    }

    /// max_gap is max - min and bias is first - second order statistic.
    #[test]
    fn gap_and_bias_order_statistics(config in usd_config()) {
        let sorted = config.sorted_desc();
        prop_assert_eq!(config.max_gap(), sorted[0] - sorted[sorted.len() - 1]);
        if sorted.len() >= 2 {
            prop_assert_eq!(config.bias(), sorted[0] - sorted[1]);
        }
    }
}

/// Cross-engine distributional agreement on a fixed mid-size instance:
/// the generic CountSimulator (running UndecidedStateDynamics), the
/// specialized SequentialUsd, and SkipAheadUsd must agree on the mean
/// stabilization time.
#[test]
fn three_engines_agree_on_mean_stabilization_time() {
    let config = UsdConfig::decided(vec![70, 50, 30]);
    let n = config.n();
    let reps = 150u64;

    let mut means = [0.0f64; 3];
    for seed in 0..reps {
        // Generic substrate simulator.
        let proto = UndecidedStateDynamics::new(config.k());
        let mut generic = CountSimulator::new(proto, &config.to_count_config());
        let mut rng = SimRng::new(seed);
        generic.run(&mut rng, 100_000_000, |s| {
            let counts = s.counts();
            let u = counts[counts.len() - 1];
            u == n
                || (u == 0
                    && counts[..counts.len() - 1]
                        .iter()
                        .filter(|&&c| c > 0)
                        .count()
                        <= 1)
        });
        means[0] += generic.interactions() as f64;

        // SequentialUsd.
        let mut seq = SequentialUsd::new(&config);
        let mut rng = SimRng::new(seed + 50_000);
        let (t, stable) =
            usd_core::dynamics::run_until_stable(&mut seq, &mut rng, 100_000_000, |_, _| {});
        assert!(stable);
        means[1] += t as f64;

        // SkipAheadUsd.
        let mut skip = SkipAheadUsd::new(&config);
        let mut rng = SimRng::new(seed + 90_000);
        let (t, stable) =
            usd_core::dynamics::run_until_stable(&mut skip, &mut rng, 100_000_000, |_, _| {});
        assert!(stable);
        means[2] += t as f64;
    }
    for m in &mut means {
        *m /= reps as f64;
    }
    let max = means.iter().cloned().fold(f64::MIN, f64::max);
    let min = means.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.12,
        "engines disagree: generic {} sequential {} skip-ahead {}",
        means[0],
        means[1],
        means[2]
    );
}
