//! Perf-regression gate over `bench_backends --json` output.
//!
//! ```text
//! cargo run --release -p usd-bench --bin bench_compare -- \
//!     <baseline.json> <candidate.json> [--threshold <frac>]
//!     [--summary <path>]
//! ```
//!
//! `--summary <path>` additionally **appends** a markdown per-scenario
//! ratio table to `path` (created if missing) — pass
//! `"$GITHUB_STEP_SUMMARY"` in CI and the gate verdict renders on the run
//! page, pass or fail, without downloading artifacts. The summary is
//! written before the exit code is decided, so a failing gate still
//! reports its table.
//!
//! Matches rows by `(backend, topology, n, mode)` and, for every
//! **stabilization** row present in both files, compares the candidate's
//! effective-interaction throughput against the baseline's. Exit codes:
//!
//! * `0` — every compared row is within `threshold` (default 0.40, i.e. a
//!   row may lose at most 40% of its baseline stabilization rate);
//! * `1` — at least one row regressed past the threshold;
//! * `2` — usage or parse error, or any baseline stabilization row is
//!   missing from the candidate (a misconfigured gate must fail loudly,
//!   not silently lose coverage — this is what catches a quick-mode or
//!   `--backend`-filtered candidate being compared against the committed
//!   full-mode baseline). Extra candidate rows are fine: new scenarios
//!   join the gate when the baseline is regenerated.
//!
//! `target`-mode rows (fixed scheduled-interaction drives) are reported
//! for context but not gated: their wall time is dominated by the
//! scheduled-throughput extremes the sparse skipper produces, which swing
//! orders of magnitude with trivial phase-boundary shifts. The JSON
//! parser is hand-rolled for exactly the object layout `bench_backends`
//! writes (flat string/number fields, one row object per line).

/// One parsed benchmark row (the fields the gate needs).
#[derive(Debug, Clone, PartialEq)]
struct CmpRow {
    backend: String,
    topology: String,
    n: u64,
    mode: String,
    scheduled_per_s: f64,
    effective_per_s: f64,
}

impl CmpRow {
    fn key(&self) -> String {
        format!(
            "{}/{} n={} [{}]",
            self.backend, self.topology, self.n, self.mode
        )
    }
}

fn str_field(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing string field '{key}' in row {obj:?}"))?
        + pat.len();
    let end = obj[start..]
        .find('"')
        .ok_or_else(|| format!("unterminated string field '{key}'"))?
        + start;
    Ok(obj[start..end].to_string())
}

fn num_field(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing numeric field '{key}' in row {obj:?}"))?
        + pat.len();
    let tail = &obj[start..];
    let end = tail
        .find(|c: char| {
            c != '-' && c != '.' && c != 'e' && c != 'E' && c != '+' && !c.is_ascii_digit()
        })
        .unwrap_or(tail.len());
    tail[..end]
        .parse()
        .map_err(|e| format!("field '{key}': {e}"))
}

/// Parse the `rows` array of a `bench_backends --json` document.
fn parse_rows(doc: &str) -> Result<Vec<CmpRow>, String> {
    let rows_at = doc.find("\"rows\"").ok_or("no \"rows\" key")?;
    let open = doc[rows_at..].find('[').ok_or("no rows array")? + rows_at;
    let close = doc[open..].find(']').ok_or("unterminated rows array")? + open;
    let mut rows = Vec::new();
    for chunk in doc[open + 1..close].split('{').skip(1) {
        let obj = chunk.split('}').next().ok_or("unterminated row object")?;
        rows.push(CmpRow {
            backend: str_field(obj, "backend")?,
            topology: str_field(obj, "topology")?,
            n: num_field(obj, "n")? as u64,
            mode: str_field(obj, "mode")?,
            scheduled_per_s: num_field(obj, "scheduled_per_s")?,
            effective_per_s: num_field(obj, "effective_per_s")?,
        });
    }
    Ok(rows)
}

/// One gated comparison.
#[derive(Debug)]
struct Comparison {
    key: String,
    baseline: f64,
    candidate: f64,
    /// candidate / baseline (1.0 = parity, < 1 = slower).
    ratio: f64,
    regressed: bool,
}

/// Compare every stabilization row of the baseline against the candidate.
/// Errors when any baseline stabilization row is missing from the
/// candidate — a partially overlapping candidate (quick vs full scenario
/// set, a `--backend`/`--topology`-filtered run, a scenario silently
/// dropped from the grid) must fail the gate loudly, not shrink its
/// coverage.
fn compare(
    baseline: &[CmpRow],
    candidate: &[CmpRow],
    threshold: f64,
) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    let mut missing = Vec::new();
    for b in baseline.iter().filter(|r| r.mode == "stabilize") {
        let Some(c) = candidate.iter().find(|r| {
            r.backend == b.backend && r.topology == b.topology && r.n == b.n && r.mode == b.mode
        }) else {
            missing.push(b.key());
            continue;
        };
        if b.effective_per_s <= 0.0 {
            continue; // a zero-rate baseline row cannot be regressed against
        }
        let ratio = c.effective_per_s / b.effective_per_s;
        out.push(Comparison {
            key: b.key(),
            baseline: b.effective_per_s,
            candidate: c.effective_per_s,
            ratio,
            regressed: ratio < 1.0 - threshold,
        });
    }
    if !missing.is_empty() {
        return Err(format!(
            "{} baseline stabilization row(s) have no candidate counterpart — \
             the gate would silently lose coverage (quick vs full scenario \
             set, or a filtered/renamed grid?):\n  {}",
            missing.len(),
            missing.join("\n  ")
        ));
    }
    if out.is_empty() {
        return Err("baseline contains no stabilization rows — nothing to gate".to_string());
    }
    Ok(out)
}

/// Append `doc` to the summary file (`$GITHUB_STEP_SUMMARY` is append-
/// oriented: other steps may have written before us). Creates the file if
/// missing; a write failure is reported but does not change the gate
/// verdict.
fn append_summary(path: &str, doc: &str) {
    use std::io::Write;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(doc.as_bytes()));
    match written {
        Ok(()) => println!("wrote summary to {path}"),
        Err(e) => eprintln!("cannot write summary {path}: {e}"),
    }
}

/// Render the gate verdict as a markdown document (one table row per
/// gated scenario, most-regressed first), for `$GITHUB_STEP_SUMMARY`.
fn summary_markdown(comparisons: &[Comparison], threshold: f64) -> String {
    let regressions = comparisons.iter().filter(|c| c.regressed).count();
    let mut doc = String::from("## Perf-regression gate (`bench_compare`)\n\n");
    doc.push_str(&format!(
        "**{}** — {} stabilization row(s) gated against the committed \
         baseline, {} regression(s) past the {:.0}% threshold.\n\n",
        if regressions == 0 {
            "PASS ✅"
        } else {
            "FAIL ❌"
        },
        comparisons.len(),
        regressions,
        threshold * 100.0
    ));
    doc.push_str("| scenario | baseline eff/s | candidate eff/s | ratio | verdict |\n");
    doc.push_str("|---|---:|---:|---:|---|\n");
    let mut rows: Vec<&Comparison> = comparisons.iter().collect();
    rows.sort_by(|a, b| a.ratio.total_cmp(&b.ratio));
    for c in rows {
        doc.push_str(&format!(
            "| `{}` | {:.3e} | {:.3e} | {:.3} | {} |\n",
            c.key,
            c.baseline,
            c.candidate,
            c.ratio,
            if c.regressed { "**REGRESSED**" } else { "ok" }
        ));
    }
    doc.push('\n');
    doc
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.40f64;
    let mut summary: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| {
                        eprintln!("--threshold needs a fraction in [0, 1)");
                        std::process::exit(2);
                    });
            }
            "--summary" => match it.next() {
                Some(path) if !path.is_empty() => summary = Some(path.clone()),
                _ => {
                    eprintln!("--summary needs a non-empty path");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unknown flag '{other}' (usage: bench_compare <baseline.json> <candidate.json> [--threshold <frac>] [--summary <path>])");
                std::process::exit(2);
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--threshold <frac>] [--summary <path>]");
        std::process::exit(2);
    }
    // Every exit-2 path below reports through this, so a mis-set-up gate
    // (unreadable/corrupt JSON, disjoint scenario sets) is visible on the
    // run page too, not just in the step log.
    let fail_setup = |e: String| -> ! {
        if let Some(path) = &summary {
            let doc = format!("## Perf-regression gate (`bench_compare`)\n\n**ERROR** — {e}\n");
            append_summary(path, &doc);
        }
        eprintln!("{e}");
        std::process::exit(2);
    };
    let read = |path: &str| -> Vec<CmpRow> {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_setup(format!("cannot read {path}: {e}")));
        parse_rows(&doc).unwrap_or_else(|e| fail_setup(format!("cannot parse {path}: {e}")))
    };
    let baseline = read(&paths[0]);
    let candidate = read(&paths[1]);
    let comparisons = compare(&baseline, &candidate, threshold).unwrap_or_else(|e| fail_setup(e));
    if let Some(path) = &summary {
        append_summary(path, &summary_markdown(&comparisons, threshold));
    }

    println!(
        "{:<40} {:>14} {:>14} {:>8}  verdict (gate: ratio >= {:.2})",
        "stabilization row",
        "baseline eff/s",
        "candidate eff/s",
        "ratio",
        1.0 - threshold
    );
    let mut regressions = 0usize;
    for c in &comparisons {
        println!(
            "{:<40} {:>14.3e} {:>14.3e} {:>8.3}  {}",
            c.key,
            c.baseline,
            c.candidate,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
        regressions += c.regressed as usize;
    }
    println!(
        "{} rows gated, {} regression(s) past the {:.0}% threshold",
        comparisons.len(),
        regressions,
        threshold * 100.0
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, u64, &str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(b, t, n, m, eff)| {
                format!(
                    "  {{\"backend\":\"{b}\",\"topology\":\"{t}\",\"n\":{n},\"mode\":\"{m}\",\
                     \"wall_s\":1.0,\"scheduled\":100,\"effective\":50,\
                     \"scheduled_per_s\":{:.1},\"effective_per_s\":{eff:.1}}}",
                    eff * 2.0
                )
            })
            .collect();
        format!(
            "{{\n\"workload\": \"bench_backends\",\n\"quick\": false,\n\"rows\": [\n{}\n]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn parses_the_bench_backends_layout() {
        let rows = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 65_536, "target", 4.6e3),
        ]))
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "agent");
        assert_eq!(rows[0].topology, "regular:8");
        assert_eq!(rows[0].n, 100_000);
        assert_eq!(rows[0].mode, "stabilize");
        assert!((rows[0].effective_per_s - 5.0e6).abs() < 1.0);
        assert_eq!(rows[1].mode, "target");
    }

    #[test]
    fn self_comparison_passes() {
        let rows = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("batchgraph", "regular:8", 100_000, "stabilize", 1.5e7),
        ]))
        .unwrap();
        let cmp = compare(&rows, &rows, 0.40).unwrap();
        assert_eq!(cmp.len(), 2);
        assert!(cmp.iter().all(|c| !c.regressed));
        assert!(cmp.iter().all(|c| (c.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn regression_past_threshold_is_flagged_and_target_rows_are_not_gated() {
        let base = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 65_536, "target", 1.0e10),
        ]))
        .unwrap();
        let cand = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 2.0e6), // -60%
            ("graph", "cycle-frontier", 65_536, "target", 1.0e3), // not gated
        ]))
        .unwrap();
        let cmp = compare(&base, &cand, 0.40).unwrap();
        assert_eq!(cmp.len(), 1, "target rows must not be gated");
        assert!(cmp[0].regressed);
        // A 40% loss exactly at the threshold still passes.
        let cand_ok = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            100_000,
            "stabilize",
            3.0e6, // -40%
        )]))
        .unwrap();
        let cmp = compare(&base, &cand_ok, 0.40).unwrap();
        assert!(!cmp[0].regressed);
    }

    #[test]
    fn disjoint_scenario_sets_fail_loudly() {
        let base = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            1_000_000,
            "stabilize",
            5.0e6,
        )]))
        .unwrap();
        let cand = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            20_000, // quick-mode n: no overlap
            "stabilize",
            5.0e6,
        )]))
        .unwrap();
        assert!(compare(&base, &cand, 0.40).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("{\"rows\": [{\"backend\":\"agent\"}]}").is_err());
    }

    #[test]
    fn summary_markdown_renders_verdicts_most_regressed_first() {
        let base = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 4_096, "stabilize", 1.2e7),
            ("batchgraph", "torus-endgame", 65_536, "stabilize", 3.5e6),
        ]))
        .unwrap();
        let cand = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.2e6), // ok
            ("graph", "cycle-frontier", 4_096, "stabilize", 4.0e6), // -67%
            ("batchgraph", "torus-endgame", 65_536, "stabilize", 3.4e6), // ok
        ]))
        .unwrap();
        let cmp = compare(&base, &cand, 0.40).unwrap();
        let md = summary_markdown(&cmp, 0.40);
        assert!(md.contains("FAIL ❌"), "{md}");
        assert!(md.contains("1 regression(s) past the 40% threshold"));
        assert!(md.contains("| scenario | baseline eff/s | candidate eff/s | ratio | verdict |"));
        assert!(md.contains("**REGRESSED**"));
        // Most-regressed row sorts first.
        let first_row = md
            .lines()
            .find(|l| l.starts_with("| `"))
            .expect("a data row");
        assert!(
            first_row.contains("cycle-frontier"),
            "worst ratio not first: {first_row}"
        );
        // A clean comparison renders PASS.
        let clean = compare(&base, &base, 0.40).unwrap();
        let md = summary_markdown(&clean, 0.40);
        assert!(md.contains("PASS ✅"), "{md}");
        assert!(!md.contains("REGRESSED"));
    }

    #[test]
    fn append_summary_creates_and_appends() {
        let dir =
            std::env::temp_dir().join(format!("bench_compare_summary_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.md");
        let path_str = path.to_str().unwrap();
        append_summary(path_str, "first\n");
        append_summary(path_str, "second\n");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            content, "first\nsecond\n",
            "summary must append, not truncate"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
