//! Perf-regression gate over `bench_backends --json` output.
//!
//! ```text
//! cargo run --release -p usd-bench --bin bench_compare -- \
//!     <baseline.json> <candidate.json> [--threshold <frac>]
//! ```
//!
//! Matches rows by `(backend, topology, n, mode)` and, for every
//! **stabilization** row present in both files, compares the candidate's
//! effective-interaction throughput against the baseline's. Exit codes:
//!
//! * `0` — every compared row is within `threshold` (default 0.40, i.e. a
//!   row may lose at most 40% of its baseline stabilization rate);
//! * `1` — at least one row regressed past the threshold;
//! * `2` — usage or parse error, or any baseline stabilization row is
//!   missing from the candidate (a misconfigured gate must fail loudly,
//!   not silently lose coverage — this is what catches a quick-mode or
//!   `--backend`-filtered candidate being compared against the committed
//!   full-mode baseline). Extra candidate rows are fine: new scenarios
//!   join the gate when the baseline is regenerated.
//!
//! `target`-mode rows (fixed scheduled-interaction drives) are reported
//! for context but not gated: their wall time is dominated by the
//! scheduled-throughput extremes the sparse skipper produces, which swing
//! orders of magnitude with trivial phase-boundary shifts. The JSON
//! parser is hand-rolled for exactly the object layout `bench_backends`
//! writes (flat string/number fields, one row object per line).

/// One parsed benchmark row (the fields the gate needs).
#[derive(Debug, Clone, PartialEq)]
struct CmpRow {
    backend: String,
    topology: String,
    n: u64,
    mode: String,
    scheduled_per_s: f64,
    effective_per_s: f64,
}

impl CmpRow {
    fn key(&self) -> String {
        format!(
            "{}/{} n={} [{}]",
            self.backend, self.topology, self.n, self.mode
        )
    }
}

fn str_field(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing string field '{key}' in row {obj:?}"))?
        + pat.len();
    let end = obj[start..]
        .find('"')
        .ok_or_else(|| format!("unterminated string field '{key}'"))?
        + start;
    Ok(obj[start..end].to_string())
}

fn num_field(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing numeric field '{key}' in row {obj:?}"))?
        + pat.len();
    let tail = &obj[start..];
    let end = tail
        .find(|c: char| {
            c != '-' && c != '.' && c != 'e' && c != 'E' && c != '+' && !c.is_ascii_digit()
        })
        .unwrap_or(tail.len());
    tail[..end]
        .parse()
        .map_err(|e| format!("field '{key}': {e}"))
}

/// Parse the `rows` array of a `bench_backends --json` document.
fn parse_rows(doc: &str) -> Result<Vec<CmpRow>, String> {
    let rows_at = doc.find("\"rows\"").ok_or("no \"rows\" key")?;
    let open = doc[rows_at..].find('[').ok_or("no rows array")? + rows_at;
    let close = doc[open..].find(']').ok_or("unterminated rows array")? + open;
    let mut rows = Vec::new();
    for chunk in doc[open + 1..close].split('{').skip(1) {
        let obj = chunk.split('}').next().ok_or("unterminated row object")?;
        rows.push(CmpRow {
            backend: str_field(obj, "backend")?,
            topology: str_field(obj, "topology")?,
            n: num_field(obj, "n")? as u64,
            mode: str_field(obj, "mode")?,
            scheduled_per_s: num_field(obj, "scheduled_per_s")?,
            effective_per_s: num_field(obj, "effective_per_s")?,
        });
    }
    Ok(rows)
}

/// One gated comparison.
#[derive(Debug)]
struct Comparison {
    key: String,
    baseline: f64,
    candidate: f64,
    /// candidate / baseline (1.0 = parity, < 1 = slower).
    ratio: f64,
    regressed: bool,
}

/// Compare every stabilization row of the baseline against the candidate.
/// Errors when any baseline stabilization row is missing from the
/// candidate — a partially overlapping candidate (quick vs full scenario
/// set, a `--backend`/`--topology`-filtered run, a scenario silently
/// dropped from the grid) must fail the gate loudly, not shrink its
/// coverage.
fn compare(
    baseline: &[CmpRow],
    candidate: &[CmpRow],
    threshold: f64,
) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    let mut missing = Vec::new();
    for b in baseline.iter().filter(|r| r.mode == "stabilize") {
        let Some(c) = candidate.iter().find(|r| {
            r.backend == b.backend && r.topology == b.topology && r.n == b.n && r.mode == b.mode
        }) else {
            missing.push(b.key());
            continue;
        };
        if b.effective_per_s <= 0.0 {
            continue; // a zero-rate baseline row cannot be regressed against
        }
        let ratio = c.effective_per_s / b.effective_per_s;
        out.push(Comparison {
            key: b.key(),
            baseline: b.effective_per_s,
            candidate: c.effective_per_s,
            ratio,
            regressed: ratio < 1.0 - threshold,
        });
    }
    if !missing.is_empty() {
        return Err(format!(
            "{} baseline stabilization row(s) have no candidate counterpart — \
             the gate would silently lose coverage (quick vs full scenario \
             set, or a filtered/renamed grid?):\n  {}",
            missing.len(),
            missing.join("\n  ")
        ));
    }
    if out.is_empty() {
        return Err("baseline contains no stabilization rows — nothing to gate".to_string());
    }
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.40f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| {
                        eprintln!("--threshold needs a fraction in [0, 1)");
                        std::process::exit(2);
                    });
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unknown flag '{other}' (usage: bench_compare <baseline.json> <candidate.json> [--threshold <frac>])");
                std::process::exit(2);
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--threshold <frac>]");
        std::process::exit(2);
    }
    let read = |path: &str| -> Vec<CmpRow> {
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_rows(&doc).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&paths[0]);
    let candidate = read(&paths[1]);
    let comparisons = compare(&baseline, &candidate, threshold).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    println!(
        "{:<40} {:>14} {:>14} {:>8}  verdict (gate: ratio >= {:.2})",
        "stabilization row",
        "baseline eff/s",
        "candidate eff/s",
        "ratio",
        1.0 - threshold
    );
    let mut regressions = 0usize;
    for c in &comparisons {
        println!(
            "{:<40} {:>14.3e} {:>14.3e} {:>8.3}  {}",
            c.key,
            c.baseline,
            c.candidate,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
        regressions += c.regressed as usize;
    }
    println!(
        "{} rows gated, {} regression(s) past the {:.0}% threshold",
        comparisons.len(),
        regressions,
        threshold * 100.0
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, u64, &str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(b, t, n, m, eff)| {
                format!(
                    "  {{\"backend\":\"{b}\",\"topology\":\"{t}\",\"n\":{n},\"mode\":\"{m}\",\
                     \"wall_s\":1.0,\"scheduled\":100,\"effective\":50,\
                     \"scheduled_per_s\":{:.1},\"effective_per_s\":{eff:.1}}}",
                    eff * 2.0
                )
            })
            .collect();
        format!(
            "{{\n\"workload\": \"bench_backends\",\n\"quick\": false,\n\"rows\": [\n{}\n]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn parses_the_bench_backends_layout() {
        let rows = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 65_536, "target", 4.6e3),
        ]))
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "agent");
        assert_eq!(rows[0].topology, "regular:8");
        assert_eq!(rows[0].n, 100_000);
        assert_eq!(rows[0].mode, "stabilize");
        assert!((rows[0].effective_per_s - 5.0e6).abs() < 1.0);
        assert_eq!(rows[1].mode, "target");
    }

    #[test]
    fn self_comparison_passes() {
        let rows = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("batchgraph", "regular:8", 100_000, "stabilize", 1.5e7),
        ]))
        .unwrap();
        let cmp = compare(&rows, &rows, 0.40).unwrap();
        assert_eq!(cmp.len(), 2);
        assert!(cmp.iter().all(|c| !c.regressed));
        assert!(cmp.iter().all(|c| (c.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn regression_past_threshold_is_flagged_and_target_rows_are_not_gated() {
        let base = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 65_536, "target", 1.0e10),
        ]))
        .unwrap();
        let cand = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 2.0e6), // -60%
            ("graph", "cycle-frontier", 65_536, "target", 1.0e3), // not gated
        ]))
        .unwrap();
        let cmp = compare(&base, &cand, 0.40).unwrap();
        assert_eq!(cmp.len(), 1, "target rows must not be gated");
        assert!(cmp[0].regressed);
        // A 40% loss exactly at the threshold still passes.
        let cand_ok = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            100_000,
            "stabilize",
            3.0e6, // -40%
        )]))
        .unwrap();
        let cmp = compare(&base, &cand_ok, 0.40).unwrap();
        assert!(!cmp[0].regressed);
    }

    #[test]
    fn disjoint_scenario_sets_fail_loudly() {
        let base = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            1_000_000,
            "stabilize",
            5.0e6,
        )]))
        .unwrap();
        let cand = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            20_000, // quick-mode n: no overlap
            "stabilize",
            5.0e6,
        )]))
        .unwrap();
        assert!(compare(&base, &cand, 0.40).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("{\"rows\": [{\"backend\":\"agent\"}]}").is_err());
    }
}
