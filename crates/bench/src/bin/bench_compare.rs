//! Perf-regression gate over `bench_backends --json` output.
//!
//! ```text
//! cargo run --release -p usd-bench --bin bench_compare -- \
//!     <baseline.json> <candidate.json> [--threshold <frac>]
//!     [--summary <path>]
//! cargo run --release -p usd-bench --bin bench_compare -- \
//!     --assert-telemetry <run.json>
//! cargo run --release -p usd-bench --bin bench_compare -- \
//!     --assert-timeline <run.jsonl>
//! cargo run --release -p usd-bench --bin bench_compare -- \
//!     --assert-checkpoint <run.ckpt>
//! ```
//!
//! `--summary <path>` additionally **appends** a markdown per-scenario
//! ratio table to `path` (created if missing) — pass
//! `"$GITHUB_STEP_SUMMARY"` in CI and the gate verdict renders on the run
//! page, pass or fail, without downloading artifacts. The summary is
//! written before the exit code is decided, so a failing gate still
//! reports its table. When the candidate rows carry telemetry blocks, a
//! second table of key telemetry rates (effective fraction, sparse cancel
//! rate, literal-fallback rate) per scenario is appended after the ratio
//! table; when they carry event-histogram blocks (`bench_backends` always
//! embeds them since the flight-recorder PR), a third table trends each
//! histogram's p50/p90/p99 against the baseline's quantiles. The
//! quantile trends are advisory, not gated: the values are power-of-two
//! bin lower edges, so any movement is a genuine bucket shift worth
//! eyeballing in review, but distribution shape is too workload-coupled
//! for a hard threshold.
//!
//! `--assert-telemetry <run.json>` is a separate smoke mode: it checks
//! that **every** row of the document carries a non-empty telemetry block
//! with `scheduled > 0`, and exits `1` listing the offending rows
//! otherwise. CI runs it on the fresh bench output so a backend that
//! silently stops reporting telemetry (a new engine forgetting to
//! instrument, a refactor dropping the counters) fails the build instead
//! of quietly degrading the run reports.
//!
//! `--assert-timeline <run.jsonl>` is the same idea for the flight
//! recorder: every line of a `usd-sim run --timeline` JSONL must be a
//! record carrying the full schema key set **in emission order**, with
//! `sample` counting up from 0 and the cumulative `scheduled`/`effective`
//! clocks monotone. Exit `1` lists every violating line; an unreadable or
//! empty file is exit `2` (an empty timeline means the recorder never
//! sampled — a wiring bug, not a schema drift).
//!
//! `--assert-checkpoint <run.ckpt>` validates a `usd-sim run --checkpoint`
//! file end to end: the sealed container header (magic, format version,
//! CRC-32 of the body) and the full structural decode of the run
//! checkpoint behind it — identity echo, RNG stream words, optional
//! flight recorder, engine payload. Exit `0` prints a one-line summary of
//! the run the file would resume; a corrupt, truncated, or
//! wrong-versioned file is exit `1` with the validation error; an
//! unreadable path is exit `2`. CI runs it on the checkpoint the
//! kill-and-resume smoke job leaves behind, so a schema drift between
//! writer and validator fails the build.
//!
//! Matches rows by `(backend, topology, n, mode)` and, for every
//! **stabilization** row present in both files, compares the candidate's
//! effective-interaction throughput against the baseline's. Exit codes:
//!
//! * `0` — every compared row is within `threshold` (default 0.40, i.e. a
//!   row may lose at most 40% of its baseline stabilization rate);
//! * `1` — at least one row regressed past the threshold;
//! * `2` — usage or parse error, or any baseline stabilization row is
//!   missing from the candidate (a misconfigured gate must fail loudly,
//!   not silently lose coverage — this is what catches a quick-mode or
//!   `--backend`-filtered candidate being compared against the committed
//!   full-mode baseline). Extra candidate rows are fine: new scenarios
//!   join the gate when the baseline is regenerated.
//!
//! `target`-mode rows (fixed scheduled-interaction drives) are reported
//! for context but not gated: their wall time is dominated by the
//! scheduled-throughput extremes the sparse skipper produces, which swing
//! orders of magnitude with trivial phase-boundary shifts. The JSON
//! parser is hand-rolled for exactly the object layout `bench_backends`
//! writes: rows are split by balanced-brace scanning (each row embeds a
//! nested `telemetry` object), and the row's own scalar fields are found
//! by first occurrence, which is safe because `bench_backends` emits the
//! telemetry object as the row's **last** key.

/// The telemetry summary a row may carry (`None` when the row predates
/// telemetry, or its block is empty/unparseable — the distinction only
/// matters to `--assert-telemetry`, which treats all three as failures).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TelemetrySummary {
    scheduled: u64,
    effective_fraction: f64,
    cancel_rate: f64,
    fallback_rate: f64,
}

/// One histogram field's quantile summary, as `EventHistograms::to_json`
/// emits it: power-of-two bin lower edges plus the event count.
#[derive(Debug, Clone, PartialEq)]
struct HistField {
    name: String,
    p50: f64,
    p90: f64,
    p99: f64,
    n: u64,
}

/// One parsed benchmark row (the fields the gate needs).
#[derive(Debug, Clone, PartialEq)]
struct CmpRow {
    backend: String,
    topology: String,
    n: u64,
    mode: String,
    scheduled_per_s: f64,
    effective_per_s: f64,
    /// Per-event histogram quantiles in schema order (empty when the row
    /// predates the flight-recorder PR, or the block is malformed).
    histograms: Vec<HistField>,
    telemetry: Option<TelemetrySummary>,
}

impl CmpRow {
    fn key(&self) -> String {
        format!(
            "{}/{} n={} [{}]",
            self.backend, self.topology, self.n, self.mode
        )
    }
}

fn str_field(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":\"");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing string field '{key}' in row {obj:?}"))?
        + pat.len();
    let end = obj[start..]
        .find('"')
        .ok_or_else(|| format!("unterminated string field '{key}'"))?
        + start;
    Ok(obj[start..end].to_string())
}

fn num_field(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing numeric field '{key}' in row {obj:?}"))?
        + pat.len();
    let tail = &obj[start..];
    let end = tail
        .find(|c: char| {
            c != '-' && c != '.' && c != 'e' && c != 'E' && c != '+' && !c.is_ascii_digit()
        })
        .unwrap_or(tail.len());
    tail[..end]
        .parse()
        .map_err(|e| format!("field '{key}': {e}"))
}

/// Byte range (inclusive of both braces) of the balanced `{...}` object
/// starting at byte `at` (which must be `{`). String-aware, so a `{` or
/// `}` inside a quoted topology label cannot desynchronize the scan.
fn balanced_object(s: &str, at: usize) -> Result<(usize, usize), String> {
    let bytes = s.as_bytes();
    if bytes.get(at) != Some(&b'{') {
        return Err("expected '{' at object start".to_string());
    }
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (off, &b) in bytes[at..].iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Ok((at, at + off + 1));
                }
            }
            _ => {}
        }
    }
    Err("unterminated object".to_string())
}

/// Extract and summarize a row's nested `telemetry` object. `None` when
/// the key is absent or the block lacks the expected counters/rates.
fn parse_telemetry(obj: &str) -> Option<TelemetrySummary> {
    let at = obj.find("\"telemetry\":")?;
    let open = at + obj[at..].find('{')?;
    let (start, end) = balanced_object(obj, open).ok()?;
    let t = &obj[start..end];
    Some(TelemetrySummary {
        scheduled: num_field(t, "scheduled").ok()? as u64,
        effective_fraction: num_field(t, "effective_fraction").ok()?,
        cancel_rate: num_field(t, "cancel_rate").ok()?,
        fallback_rate: num_field(t, "fallback_rate").ok()?,
    })
}

/// Extract a row's nested `histograms` object into its per-field
/// quantile summaries, in the order the block lists them. Empty when the
/// key is absent or any structure is off — histograms are advisory, so a
/// malformed block degrades to "no columns", unlike the row's own scalar
/// fields whose absence is a parse error.
fn parse_histograms(obj: &str) -> Vec<HistField> {
    let Some(at) = obj.find("\"histograms\":") else {
        return Vec::new();
    };
    let Some(open) = obj[at..].find('{') else {
        return Vec::new();
    };
    let Ok((start, end)) = balanced_object(obj, at + open) else {
        return Vec::new();
    };
    let block = &obj[start..end];
    let mut out = Vec::new();
    let mut i = 1; // past the opening '{'
    while let Some(q) = block[i..].find('"') {
        let key_start = i + q + 1;
        let Some(qe) = block[key_start..].find('"') else {
            break;
        };
        let key_end = key_start + qe;
        let Some(ob) = block[key_end..].find('{') else {
            break;
        };
        let Ok((fs, fe)) = balanced_object(block, key_end + ob) else {
            break;
        };
        let field = &block[fs..fe];
        if let (Ok(p50), Ok(p90), Ok(p99), Ok(n)) = (
            num_field(field, "p50"),
            num_field(field, "p90"),
            num_field(field, "p99"),
            num_field(field, "n"),
        ) {
            out.push(HistField {
                name: block[key_start..key_end].to_string(),
                p50,
                p90,
                p99,
                n: n as u64,
            });
        }
        i = fe;
    }
    out
}

/// Parse the `rows` array of a `bench_backends --json` document.
fn parse_rows(doc: &str) -> Result<Vec<CmpRow>, String> {
    let rows_at = doc.find("\"rows\"").ok_or("no \"rows\" key")?;
    let open = doc[rows_at..].find('[').ok_or("no rows array")? + rows_at;
    let bytes = doc.as_bytes();
    let mut rows = Vec::new();
    let mut i = open + 1;
    loop {
        while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b']' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err("unterminated rows array".to_string());
        }
        if bytes[i] == b']' {
            break;
        }
        let (start, end) = balanced_object(doc, i)?;
        let obj = &doc[start..end];
        rows.push(CmpRow {
            backend: str_field(obj, "backend")?,
            topology: str_field(obj, "topology")?,
            n: num_field(obj, "n")? as u64,
            mode: str_field(obj, "mode")?,
            scheduled_per_s: num_field(obj, "scheduled_per_s")?,
            effective_per_s: num_field(obj, "effective_per_s")?,
            histograms: parse_histograms(obj),
            telemetry: parse_telemetry(obj),
        });
        i = end;
    }
    Ok(rows)
}

/// `--assert-telemetry` check: every row must carry a telemetry block
/// with `scheduled > 0`. Returns the keys of the rows that fail.
fn missing_telemetry(rows: &[CmpRow]) -> Vec<String> {
    rows.iter()
        .filter(|r| !matches!(r.telemetry, Some(t) if t.scheduled > 0))
        .map(|r| r.key())
        .collect()
}

/// Schema keys every flight-recorder JSONL record must carry, in the
/// order `TimelineSample::to_json` emits them.
const TIMELINE_KEYS: [&str; 15] = [
    "\"sample\":",
    "\"scheduled\":",
    "\"effective\":",
    "\"phase\":\"",
    "\"d_scheduled\":",
    "\"d_effective\":",
    "\"d_dense_steps\":",
    "\"d_blocks\":",
    "\"d_block_applied\":",
    "\"d_fallback_literal\":",
    "\"d_sparse_enters\":",
    "\"d_sparse_exits\":",
    "\"d_sparse_events\":",
    "\"d_sparse_flushes\":",
    "\"rates\":{\"effective_fraction\":",
];

/// `--assert-timeline` check over one flight-recorder JSONL document:
/// every line is a `{...}` record carrying the full schema key set in
/// emission order, `sample` counts up from 0, and the cumulative
/// `scheduled`/`effective` clocks never go backwards. Ok carries the
/// sample count; Err lists every violation found (all lines are checked
/// so one bad record does not mask the rest).
fn assert_timeline(doc: &str) -> Result<usize, Vec<String>> {
    let mut problems = Vec::new();
    let mut count = 0usize;
    let (mut last_scheduled, mut last_effective) = (0.0f64, 0.0f64);
    for (lineno, line) in doc.lines().enumerate() {
        let ln = lineno + 1;
        let index = count as f64;
        count += 1;
        if !(line.starts_with('{') && line.ends_with('}')) {
            problems.push(format!("line {ln}: not a one-line JSON record"));
            continue;
        }
        // Keys must appear in emission order: each search resumes where
        // the previous key matched, so a reordered schema fails even if
        // every key is present somewhere in the line.
        let mut at = 0usize;
        let mut ordered = true;
        for key in TIMELINE_KEYS {
            match line[at..].find(key) {
                Some(rel) => at += rel + key.len(),
                None => {
                    problems.push(format!("line {ln}: missing or out-of-order key {key}"));
                    ordered = false;
                    break;
                }
            }
        }
        if !ordered {
            continue;
        }
        match num_field(line, "sample") {
            Ok(s) if s == index => {}
            Ok(s) => problems.push(format!("line {ln}: sample index {s} (expected {index})")),
            Err(e) => problems.push(format!("line {ln}: {e}")),
        }
        let scheduled = num_field(line, "scheduled").unwrap_or(-1.0);
        let effective = num_field(line, "effective").unwrap_or(-1.0);
        if scheduled < last_scheduled {
            problems.push(format!(
                "line {ln}: scheduled clock went backwards ({last_scheduled} -> {scheduled})"
            ));
        }
        if effective < last_effective {
            problems.push(format!(
                "line {ln}: effective clock went backwards ({last_effective} -> {effective})"
            ));
        }
        last_scheduled = scheduled;
        last_effective = effective;
    }
    if problems.is_empty() {
        Ok(count)
    } else {
        Err(problems)
    }
}

/// `--assert-checkpoint` check over raw checkpoint-file bytes: the sealed
/// header must validate (magic, version, CRC) and the body must decode as
/// a complete run checkpoint. Ok carries the summary line printed on
/// success; Err the validation failure.
fn assert_checkpoint(bytes: &[u8]) -> Result<String, String> {
    let ckpt = usd_core::RunCheckpoint::from_bytes(bytes)
        .map_err(|e| format!("invalid checkpoint: {e}"))?;
    Ok(format!(
        "valid checkpoint: backend={} n={} k={} seed={} topology={} \
         recorder={} engine-payload={}B sealed={}B",
        ckpt.backend,
        ckpt.n,
        ckpt.k,
        ckpt.seed,
        if ckpt.topology.is_empty() {
            "clique"
        } else {
            &ckpt.topology
        },
        if ckpt.recorder.is_some() { "yes" } else { "no" },
        ckpt.engine.len(),
        bytes.len()
    ))
}

/// One gated comparison.
#[derive(Debug)]
struct Comparison {
    key: String,
    baseline: f64,
    candidate: f64,
    /// candidate / baseline (1.0 = parity, < 1 = slower).
    ratio: f64,
    regressed: bool,
}

/// Compare every stabilization row of the baseline against the candidate.
/// Errors when any baseline stabilization row is missing from the
/// candidate — a partially overlapping candidate (quick vs full scenario
/// set, a `--backend`/`--topology`-filtered run, a scenario silently
/// dropped from the grid) must fail the gate loudly, not shrink its
/// coverage.
fn compare(
    baseline: &[CmpRow],
    candidate: &[CmpRow],
    threshold: f64,
) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    let mut missing = Vec::new();
    for b in baseline.iter().filter(|r| r.mode == "stabilize") {
        let Some(c) = candidate.iter().find(|r| {
            r.backend == b.backend && r.topology == b.topology && r.n == b.n && r.mode == b.mode
        }) else {
            missing.push(b.key());
            continue;
        };
        if b.effective_per_s <= 0.0 {
            continue; // a zero-rate baseline row cannot be regressed against
        }
        let ratio = c.effective_per_s / b.effective_per_s;
        out.push(Comparison {
            key: b.key(),
            baseline: b.effective_per_s,
            candidate: c.effective_per_s,
            ratio,
            regressed: ratio < 1.0 - threshold,
        });
    }
    if !missing.is_empty() {
        return Err(format!(
            "{} baseline stabilization row(s) have no candidate counterpart — \
             the gate would silently lose coverage (quick vs full scenario \
             set, or a filtered/renamed grid?):\n  {}",
            missing.len(),
            missing.join("\n  ")
        ));
    }
    if out.is_empty() {
        return Err("baseline contains no stabilization rows — nothing to gate".to_string());
    }
    Ok(out)
}

/// Append `doc` to the summary file (`$GITHUB_STEP_SUMMARY` is append-
/// oriented: other steps may have written before us). Creates the file if
/// missing; a write failure is reported but does not change the gate
/// verdict.
fn append_summary(path: &str, doc: &str) {
    use std::io::Write;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(doc.as_bytes()));
    match written {
        Ok(()) => println!("wrote summary to {path}"),
        Err(e) => eprintln!("cannot write summary {path}: {e}"),
    }
}

/// Render the gate verdict as a markdown document (one table row per
/// gated scenario, most-regressed first), for `$GITHUB_STEP_SUMMARY`.
fn summary_markdown(comparisons: &[Comparison], threshold: f64) -> String {
    let regressions = comparisons.iter().filter(|c| c.regressed).count();
    let mut doc = String::from("## Perf-regression gate (`bench_compare`)\n\n");
    doc.push_str(&format!(
        "**{}** — {} stabilization row(s) gated against the committed \
         baseline, {} regression(s) past the {:.0}% threshold.\n\n",
        if regressions == 0 {
            "PASS ✅"
        } else {
            "FAIL ❌"
        },
        comparisons.len(),
        regressions,
        threshold * 100.0
    ));
    doc.push_str("| scenario | baseline eff/s | candidate eff/s | ratio | verdict |\n");
    doc.push_str("|---|---:|---:|---:|---|\n");
    let mut rows: Vec<&Comparison> = comparisons.iter().collect();
    rows.sort_by(|a, b| a.ratio.total_cmp(&b.ratio));
    for c in rows {
        doc.push_str(&format!(
            "| `{}` | {:.3e} | {:.3e} | {:.3} | {} |\n",
            c.key,
            c.baseline,
            c.candidate,
            c.ratio,
            if c.regressed { "**REGRESSED**" } else { "ok" }
        ));
    }
    doc.push('\n');
    doc
}

/// Render the candidate rows' telemetry rates as a markdown table (every
/// row, both modes — the rates characterize the run even where wall time
/// is not gated). Empty string when no row carries telemetry, so old
/// documents produce no stub section.
fn telemetry_markdown(rows: &[CmpRow]) -> String {
    if rows.iter().all(|r| r.telemetry.is_none()) {
        return String::new();
    }
    let mut doc = String::from("### Candidate telemetry rates\n\n");
    doc.push_str("| scenario | effective frac | cancel rate | fallback rate |\n");
    doc.push_str("|---|---:|---:|---:|\n");
    for r in rows {
        match r.telemetry {
            Some(t) => doc.push_str(&format!(
                "| `{}` | {:.4} | {:.4} | {:.4} |\n",
                r.key(),
                t.effective_fraction,
                t.cancel_rate,
                t.fallback_rate
            )),
            None => doc.push_str(&format!("| `{}` | — | — | — |\n", r.key())),
        }
    }
    doc.push('\n');
    doc
}

/// Histogram-quantile trend table: one markdown row per (scenario,
/// histogram field) with events in the candidate, alongside the
/// baseline's quantiles for the same field where present ("—" when the
/// committed baseline predates histograms — regenerating it picks the
/// column up). Advisory only: quantiles are power-of-two bin lower
/// edges, so any movement is a real bucket shift worth a look in review,
/// but the shapes are too workload-coupled to gate on. Empty string when
/// no candidate row recorded any events.
fn histogram_markdown(baseline: &[CmpRow], candidate: &[CmpRow]) -> String {
    if candidate
        .iter()
        .all(|r| r.histograms.iter().all(|f| f.n == 0))
    {
        return String::new();
    }
    let mut doc = String::from("### Event-histogram quantile trends\n\n");
    doc.push_str(
        "| scenario | histogram | p50 | p90 | p99 | events | baseline p50/p90/p99 |\n\
         |---|---|---:|---:|---:|---:|---:|\n",
    );
    for r in candidate {
        let base = baseline.iter().find(|b| {
            b.backend == r.backend && b.topology == r.topology && b.n == r.n && b.mode == r.mode
        });
        for f in r.histograms.iter().filter(|f| f.n > 0) {
            let base_cell = base
                .and_then(|b| b.histograms.iter().find(|bf| bf.name == f.name && bf.n > 0))
                .map_or("—".to_string(), |bf| {
                    format!("{:.0}/{:.0}/{:.0}", bf.p50, bf.p90, bf.p99)
                });
            doc.push_str(&format!(
                "| `{}` | {} | {:.0} | {:.0} | {:.0} | {} | {} |\n",
                r.key(),
                f.name,
                f.p50,
                f.p90,
                f.p99,
                f.n,
                base_cell
            ));
        }
    }
    doc.push('\n');
    doc
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.40f64;
    let mut summary: Option<String> = None;
    let mut assert_telemetry: Option<String> = None;
    let mut assert_timeline_path: Option<String> = None;
    let mut assert_checkpoint_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--assert-telemetry" => match it.next() {
                Some(path) if !path.is_empty() => assert_telemetry = Some(path.clone()),
                _ => {
                    eprintln!("--assert-telemetry needs a run-JSON path");
                    std::process::exit(2);
                }
            },
            "--assert-timeline" => match it.next() {
                Some(path) if !path.is_empty() => assert_timeline_path = Some(path.clone()),
                _ => {
                    eprintln!("--assert-timeline needs a timeline-JSONL path");
                    std::process::exit(2);
                }
            },
            "--assert-checkpoint" => match it.next() {
                Some(path) if !path.is_empty() => assert_checkpoint_path = Some(path.clone()),
                _ => {
                    eprintln!("--assert-checkpoint needs a checkpoint-file path");
                    std::process::exit(2);
                }
            },
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| {
                        eprintln!("--threshold needs a fraction in [0, 1)");
                        std::process::exit(2);
                    });
            }
            "--summary" => match it.next() {
                Some(path) if !path.is_empty() => summary = Some(path.clone()),
                _ => {
                    eprintln!("--summary needs a non-empty path");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => {
                eprintln!("unknown flag '{other}' (usage: bench_compare <baseline.json> <candidate.json> [--threshold <frac>] [--summary <path>] | bench_compare --assert-telemetry <run.json> | bench_compare --assert-timeline <run.jsonl> | bench_compare --assert-checkpoint <run.ckpt>)");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = assert_checkpoint_path {
        // Standalone smoke mode, like the other --assert-* flags: rejects
        // stray positionals and mode mixing instead of ignoring them.
        if !paths.is_empty() || assert_telemetry.is_some() || assert_timeline_path.is_some() {
            eprintln!("--assert-checkpoint takes a single checkpoint path and no other mode");
            std::process::exit(2);
        }
        let bytes = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match assert_checkpoint(&bytes) {
            Ok(summary) => {
                println!("{path}: {summary}");
                return;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = assert_timeline_path {
        // Standalone smoke mode, like --assert-telemetry below: rejects
        // stray positionals and mode mixing instead of ignoring them.
        if !paths.is_empty() || assert_telemetry.is_some() {
            eprintln!("--assert-timeline takes a single JSONL path and no other mode");
            std::process::exit(2);
        }
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match assert_timeline(&doc) {
            Ok(0) => {
                eprintln!("{path}: empty timeline — the recorder never sampled");
                std::process::exit(2);
            }
            Ok(samples) => {
                println!("{path}: {samples} schema-conforming timeline sample(s), clocks monotone");
                return;
            }
            Err(problems) => {
                eprintln!(
                    "{path}: {} timeline schema violation(s):\n  {}",
                    problems.len(),
                    problems.join("\n  ")
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = assert_telemetry {
        // Standalone smoke mode: no baseline involved, so it rejects any
        // extra positional paths instead of silently ignoring them.
        if !paths.is_empty() {
            eprintln!("--assert-telemetry takes no positional paths (got {paths:?})");
            std::process::exit(2);
        }
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let rows = parse_rows(&doc).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        if rows.is_empty() {
            eprintln!("{path}: no rows — nothing to assert telemetry on");
            std::process::exit(2);
        }
        let missing = missing_telemetry(&rows);
        if missing.is_empty() {
            println!(
                "{path}: all {} row(s) report a telemetry block with scheduled > 0",
                rows.len()
            );
            return;
        }
        eprintln!(
            "{path}: {} of {} row(s) missing a live telemetry block:\n  {}",
            missing.len(),
            rows.len(),
            missing.join("\n  ")
        );
        std::process::exit(1);
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--threshold <frac>] [--summary <path>] | bench_compare --assert-telemetry <run.json> | bench_compare --assert-timeline <run.jsonl> | bench_compare --assert-checkpoint <run.ckpt>");
        std::process::exit(2);
    }
    // Every exit-2 path below reports through this, so a mis-set-up gate
    // (unreadable/corrupt JSON, disjoint scenario sets) is visible on the
    // run page too, not just in the step log.
    let fail_setup = |e: String| -> ! {
        if let Some(path) = &summary {
            let doc = format!("## Perf-regression gate (`bench_compare`)\n\n**ERROR** — {e}\n");
            append_summary(path, &doc);
        }
        eprintln!("{e}");
        std::process::exit(2);
    };
    let read = |path: &str| -> Vec<CmpRow> {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_setup(format!("cannot read {path}: {e}")));
        parse_rows(&doc).unwrap_or_else(|e| fail_setup(format!("cannot parse {path}: {e}")))
    };
    let baseline = read(&paths[0]);
    let candidate = read(&paths[1]);
    let comparisons = compare(&baseline, &candidate, threshold).unwrap_or_else(|e| fail_setup(e));
    if let Some(path) = &summary {
        let doc = summary_markdown(&comparisons, threshold)
            + &telemetry_markdown(&candidate)
            + &histogram_markdown(&baseline, &candidate);
        append_summary(path, &doc);
    }

    println!(
        "{:<40} {:>14} {:>14} {:>8}  verdict (gate: ratio >= {:.2})",
        "stabilization row",
        "baseline eff/s",
        "candidate eff/s",
        "ratio",
        1.0 - threshold
    );
    let mut regressions = 0usize;
    for c in &comparisons {
        println!(
            "{:<40} {:>14.3e} {:>14.3e} {:>8.3}  {}",
            c.key,
            c.baseline,
            c.candidate,
            c.ratio,
            if c.regressed { "REGRESSED" } else { "ok" }
        );
        regressions += c.regressed as usize;
    }
    println!(
        "{} rows gated, {} regression(s) past the {:.0}% threshold",
        comparisons.len(),
        regressions,
        threshold * 100.0
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A telemetry block in the `EngineTelemetry::to_json` layout (the
    /// fields the parser extracts, inside the same nesting).
    fn telemetry_json(scheduled: u64) -> String {
        format!(
            "{{\"scheduled\":{scheduled},\"effective\":7,\"dense_steps\":3,\
             \"sparse\":{{\"events\":2,\"entries_applied\":5,\"entries_cancelled\":5}},\
             \"spans\":{{\"dense_ns\":0,\"sparse_ns\":0}},\
             \"rates\":{{\"effective_fraction\":0.070000,\"cancel_rate\":0.500000,\
             \"fallback_rate\":0.125000}}}}"
        )
    }

    /// A histograms block in the `EventHistograms::to_json` layout: two
    /// live fields, the rest empty (an engine never exercises them all).
    fn histograms_json(p99: u64) -> String {
        format!(
            "{{\"skip_len\":{{\"p50\":2,\"p90\":16,\"p99\":{p99},\"n\":523}},\
             \"block_total\":{{\"p50\":0,\"p90\":0,\"p99\":0,\"n\":0}},\
             \"block_size\":{{\"p50\":4,\"p90\":8,\"p99\":8,\"n\":12}},\
             \"flush_size\":{{\"p50\":0,\"p90\":0,\"p99\":0,\"n\":0}},\
             \"flush_occupancy\":{{\"p50\":0,\"p90\":0,\"p99\":0,\"n\":0}},\
             \"fallback_run\":{{\"p50\":0,\"p90\":0,\"p99\":0,\"n\":0}}}}"
        )
    }

    fn doc_with_blocks(
        rows: &[(&str, &str, u64, &str, f64)],
        histograms: Option<&str>,
        telemetry: Option<&str>,
    ) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(b, t, n, m, eff)| {
                let hist = histograms.map_or(String::new(), |h| format!(",\"histograms\":{h}"));
                let tail = telemetry.map_or(String::new(), |t| format!(",\"telemetry\":{t}"));
                format!(
                    "  {{\"backend\":\"{b}\",\"topology\":\"{t}\",\"n\":{n},\"mode\":\"{m}\",\
                     \"wall_s\":1.0,\"scheduled\":100,\"effective\":50,\
                     \"scheduled_per_s\":{:.1},\"effective_per_s\":{eff:.1}{hist}{tail}}}",
                    eff * 2.0
                )
            })
            .collect();
        format!(
            "{{\n\"workload\": \"bench_backends\",\n\"quick\": false,\n\"rows\": [\n{}\n]\n}}\n",
            body.join(",\n")
        )
    }

    fn doc_with_telemetry(
        rows: &[(&str, &str, u64, &str, f64)],
        telemetry: Option<&str>,
    ) -> String {
        doc_with_blocks(rows, None, telemetry)
    }

    fn doc(rows: &[(&str, &str, u64, &str, f64)]) -> String {
        doc_with_telemetry(rows, None)
    }

    #[test]
    fn parses_the_bench_backends_layout() {
        let rows = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 65_536, "target", 4.6e3),
        ]))
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "agent");
        assert_eq!(rows[0].topology, "regular:8");
        assert_eq!(rows[0].n, 100_000);
        assert_eq!(rows[0].mode, "stabilize");
        assert!((rows[0].effective_per_s - 5.0e6).abs() < 1.0);
        assert_eq!(rows[1].mode, "target");
    }

    #[test]
    fn self_comparison_passes() {
        let rows = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("batchgraph", "regular:8", 100_000, "stabilize", 1.5e7),
        ]))
        .unwrap();
        let cmp = compare(&rows, &rows, 0.40).unwrap();
        assert_eq!(cmp.len(), 2);
        assert!(cmp.iter().all(|c| !c.regressed));
        assert!(cmp.iter().all(|c| (c.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn regression_past_threshold_is_flagged_and_target_rows_are_not_gated() {
        let base = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 65_536, "target", 1.0e10),
        ]))
        .unwrap();
        let cand = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 2.0e6), // -60%
            ("graph", "cycle-frontier", 65_536, "target", 1.0e3), // not gated
        ]))
        .unwrap();
        let cmp = compare(&base, &cand, 0.40).unwrap();
        assert_eq!(cmp.len(), 1, "target rows must not be gated");
        assert!(cmp[0].regressed);
        // A 40% loss exactly at the threshold still passes.
        let cand_ok = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            100_000,
            "stabilize",
            3.0e6, // -40%
        )]))
        .unwrap();
        let cmp = compare(&base, &cand_ok, 0.40).unwrap();
        assert!(!cmp[0].regressed);
    }

    #[test]
    fn disjoint_scenario_sets_fail_loudly() {
        let base = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            1_000_000,
            "stabilize",
            5.0e6,
        )]))
        .unwrap();
        let cand = parse_rows(&doc(&[(
            "agent",
            "regular:8",
            20_000, // quick-mode n: no overlap
            "stabilize",
            5.0e6,
        )]))
        .unwrap();
        assert!(compare(&base, &cand, 0.40).is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("{\"rows\": [{\"backend\":\"agent\"}]}").is_err());
        assert!(parse_rows("{\"rows\": [{\"backend\":\"agent\"").is_err());
    }

    #[test]
    fn nested_telemetry_blocks_parse_and_do_not_break_row_splitting() {
        let spec: &[(&str, &str, u64, &str, f64)] = &[
            ("graph", "torus-endgame", 65_536, "stabilize", 3.5e6),
            ("batchgraph", "cycle-frontier", 65_536, "target", 4.6e3),
        ];
        let rows = parse_rows(&doc_with_telemetry(spec, Some(&telemetry_json(100)))).unwrap();
        assert_eq!(rows.len(), 2, "balanced scan must split rows, not braces");
        for r in &rows {
            let t = r.telemetry.expect("telemetry block parsed");
            assert_eq!(t.scheduled, 100);
            assert!((t.effective_fraction - 0.07).abs() < 1e-9);
            assert!((t.cancel_rate - 0.5).abs() < 1e-9);
            assert!((t.fallback_rate - 0.125).abs() < 1e-9);
        }
        // The row's own top-level fields still resolve by first
        // occurrence even though the telemetry block repeats their names.
        assert_eq!(rows[0].n, 65_536);
        assert!((rows[0].effective_per_s - 3.5e6).abs() < 1.0);
        // Rows without telemetry parse as None, and an empty block also
        // summarizes to None rather than a half-filled struct.
        let bare = parse_rows(&doc(spec)).unwrap();
        assert!(bare.iter().all(|r| r.telemetry.is_none()));
        let empty = parse_rows(&doc_with_telemetry(spec, Some("{}"))).unwrap();
        assert!(empty.iter().all(|r| r.telemetry.is_none()));
    }

    #[test]
    fn assert_telemetry_flags_missing_and_dead_blocks() {
        let spec: &[(&str, &str, u64, &str, f64)] =
            &[("graph", "torus-endgame", 65_536, "stabilize", 3.5e6)];
        let live = parse_rows(&doc_with_telemetry(spec, Some(&telemetry_json(100)))).unwrap();
        assert!(missing_telemetry(&live).is_empty());
        let absent = parse_rows(&doc(spec)).unwrap();
        assert_eq!(missing_telemetry(&absent).len(), 1);
        // A block that parses but never scheduled anything is equally dead.
        let zeroed = parse_rows(&doc_with_telemetry(spec, Some(&telemetry_json(0)))).unwrap();
        let missing = missing_telemetry(&zeroed);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("torus-endgame"), "{missing:?}");
    }

    #[test]
    fn telemetry_markdown_lists_rates_and_skips_bare_documents() {
        let spec: &[(&str, &str, u64, &str, f64)] = &[
            ("graph", "torus-endgame", 65_536, "stabilize", 3.5e6),
            ("agent", "regular:8", 100_000, "target", 5.0e6),
        ];
        let bare = parse_rows(&doc(spec)).unwrap();
        assert!(telemetry_markdown(&bare).is_empty());
        let mut rows = parse_rows(&doc_with_telemetry(spec, Some(&telemetry_json(100)))).unwrap();
        rows[1].telemetry = None; // one instrumented row is enough for a table
        let md = telemetry_markdown(&rows);
        assert!(md.contains("| scenario | effective frac | cancel rate | fallback rate |"));
        assert!(
            md.contains("| `graph/torus-endgame n=65536 [stabilize]` | 0.0700 | 0.5000 | 0.1250 |")
        );
        assert!(md.contains("| `agent/regular:8 n=100000 [target]` | — | — | — |"));
    }

    #[test]
    fn histogram_blocks_parse_in_schema_order_and_tolerate_absence() {
        let spec: &[(&str, &str, u64, &str, f64)] =
            &[("batch", "clique", 1_000_000, "stabilize", 5.0e6)];
        let rows = parse_rows(&doc_with_blocks(
            spec,
            Some(&histograms_json(64)),
            Some(&telemetry_json(100)),
        ))
        .unwrap();
        assert_eq!(rows.len(), 1);
        let h = &rows[0].histograms;
        assert_eq!(h.len(), 6, "all six schema fields parse: {h:?}");
        assert_eq!(h[0].name, "skip_len");
        assert_eq!(
            (h[0].p50, h[0].p90, h[0].p99, h[0].n),
            (2.0, 16.0, 64.0, 523)
        );
        assert_eq!(h[2].name, "block_size");
        assert_eq!(h[2].n, 12);
        // The row's own scalar fields are unaffected by the extra nesting
        // (the block repeats "n"), and telemetry still parses after it.
        assert_eq!(rows[0].n, 1_000_000);
        assert_eq!(rows[0].telemetry.unwrap().scheduled, 100);
        // A pre-histogram document parses to empty quantile lists.
        let bare = parse_rows(&doc(spec)).unwrap();
        assert!(bare[0].histograms.is_empty());
    }

    #[test]
    fn histogram_markdown_trends_against_baseline_and_skips_empty() {
        let spec: &[(&str, &str, u64, &str, f64)] =
            &[("batch", "clique", 1_000_000, "stabilize", 5.0e6)];
        let base_old = parse_rows(&doc(spec)).unwrap();
        let base_new =
            parse_rows(&doc_with_blocks(spec, Some(&histograms_json(32)), None)).unwrap();
        let cand = parse_rows(&doc_with_blocks(spec, Some(&histograms_json(64)), None)).unwrap();
        // No candidate histograms (or all-empty ones) → no section.
        assert!(histogram_markdown(&base_new, &base_old).is_empty());
        // Baseline predates histograms → candidate columns, "—" baseline.
        let md = histogram_markdown(&base_old, &cand);
        assert!(md.contains("### Event-histogram quantile trends"), "{md}");
        assert!(md.contains(
            "| `batch/clique n=1000000 [stabilize]` | skip_len | 2 | 16 | 64 | 523 | — |"
        ));
        // Zero-count fields are dropped, not rendered as all-zero rows.
        assert!(!md.contains("flush_size"));
        // Baseline with quantiles → diff column.
        let md = histogram_markdown(&base_new, &cand);
        assert!(
            md.contains("| skip_len | 2 | 16 | 64 | 523 | 2/16/32 |"),
            "{md}"
        );
    }

    #[test]
    fn assert_timeline_accepts_conforming_jsonl() {
        let line = |i: u64, sched: u64, eff: u64| {
            format!(
                "{{\"sample\":{i},\"scheduled\":{sched},\"effective\":{eff},\
                 \"phase\":\"dense\",\"d_scheduled\":{sched},\"d_effective\":{eff},\
                 \"d_dense_steps\":1,\"d_blocks\":0,\"d_block_applied\":0,\
                 \"d_fallback_literal\":0,\"d_sparse_enters\":0,\
                 \"d_sparse_exits\":0,\"d_sparse_events\":0,\
                 \"d_sparse_flushes\":0,\
                 \"rates\":{{\"effective_fraction\":0.5,\"cancel_rate\":0.0,\
                 \"fallback_rate\":0.0}}}}\n"
            )
        };
        let good = line(0, 65_536, 100) + &line(1, 131_072, 250) + &line(2, 140_000, 250);
        assert_eq!(assert_timeline(&good), Ok(3));
        assert_eq!(assert_timeline(""), Ok(0), "empty file: caller decides");
    }

    #[test]
    fn assert_timeline_flags_schema_and_monotonicity_violations() {
        let good = "{\"sample\":0,\"scheduled\":10,\"effective\":5,\
             \"phase\":\"dense\",\"d_scheduled\":10,\"d_effective\":5,\
             \"d_dense_steps\":1,\"d_blocks\":0,\"d_block_applied\":0,\
             \"d_fallback_literal\":0,\"d_sparse_enters\":0,\
             \"d_sparse_exits\":0,\"d_sparse_events\":0,\
             \"d_sparse_flushes\":0,\
             \"rates\":{\"effective_fraction\":0.5,\"cancel_rate\":0.0,\
             \"fallback_rate\":0.0}}";
        // A dropped key fails even though every other key is present.
        let missing = good.replace("\"d_blocks\":0,", "");
        let problems = assert_timeline(&missing).unwrap_err();
        assert!(problems[0].contains("d_blocks"), "{problems:?}");
        // A reordered schema fails: same keys, wrong emission order.
        let reordered = good.replace("\"d_blocks\":0,", "").replace(
            "\"d_sparse_flushes\":0,",
            "\"d_sparse_flushes\":0,\"d_blocks\":0,",
        );
        assert!(assert_timeline(&reordered).is_err());
        // Sample indices must count up from zero...
        let renumbered = good.replace("\"sample\":0", "\"sample\":7");
        assert!(assert_timeline(&renumbered).unwrap_err()[0].contains("sample index"));
        // ...and the cumulative clocks must never go backwards.
        let second = good
            .replace("\"sample\":0", "\"sample\":1")
            .replace("\"scheduled\":10", "\"scheduled\":4");
        let doc = format!("{good}\n{second}\n");
        let problems = assert_timeline(&doc).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("backwards")),
            "{problems:?}"
        );
        // Junk lines are reported with their line number.
        let doc = format!("{good}\nnot json\n");
        assert!(assert_timeline(&doc).unwrap_err()[0].contains("line 2"));
    }

    #[test]
    fn assert_checkpoint_validates_sealed_files_and_rejects_corruption() {
        use pop_proto::checkpoint::SnapshotWriter;
        let config = usd_core::UsdConfig::decided(vec![60, 40]);
        let mut sim = usd_core::make_simulator(usd_core::Backend::Count, &config);
        let mut rng = sim_stats::rng::SimRng::new(5);
        sim.run_until(&mut rng, 400, &mut |_| false);
        let mut w = SnapshotWriter::new();
        sim.snapshot_state(&mut w).unwrap();
        let ckpt = usd_core::RunCheckpoint {
            backend: "count".into(),
            n: 100,
            k: 2,
            seed: 5,
            topology: String::new(),
            rng: rng.state(),
            recorder: None,
            engine: w.into_bytes(),
        };
        let bytes = ckpt.to_bytes();
        let summary = assert_checkpoint(&bytes).expect("pristine file validates");
        assert!(summary.contains("backend=count"), "{summary}");
        assert!(summary.contains("topology=clique"), "{summary}");
        assert!(summary.contains("recorder=no"), "{summary}");
        // Any bit flip or truncation fails the CRC/structure gate.
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0x10;
        assert!(assert_checkpoint(&bad).is_err());
        assert!(assert_checkpoint(&bytes[..bytes.len() - 3]).is_err());
        assert!(assert_checkpoint(b"not a checkpoint").is_err());
    }

    #[test]
    fn summary_markdown_renders_verdicts_most_regressed_first() {
        let base = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.0e6),
            ("graph", "cycle-frontier", 4_096, "stabilize", 1.2e7),
            ("batchgraph", "torus-endgame", 65_536, "stabilize", 3.5e6),
        ]))
        .unwrap();
        let cand = parse_rows(&doc(&[
            ("agent", "regular:8", 100_000, "stabilize", 5.2e6), // ok
            ("graph", "cycle-frontier", 4_096, "stabilize", 4.0e6), // -67%
            ("batchgraph", "torus-endgame", 65_536, "stabilize", 3.4e6), // ok
        ]))
        .unwrap();
        let cmp = compare(&base, &cand, 0.40).unwrap();
        let md = summary_markdown(&cmp, 0.40);
        assert!(md.contains("FAIL ❌"), "{md}");
        assert!(md.contains("1 regression(s) past the 40% threshold"));
        assert!(md.contains("| scenario | baseline eff/s | candidate eff/s | ratio | verdict |"));
        assert!(md.contains("**REGRESSED**"));
        // Most-regressed row sorts first.
        let first_row = md
            .lines()
            .find(|l| l.starts_with("| `"))
            .expect("a data row");
        assert!(
            first_row.contains("cycle-frontier"),
            "worst ratio not first: {first_row}"
        );
        // A clean comparison renders PASS.
        let clean = compare(&base, &base, 0.40).unwrap();
        let md = summary_markdown(&clean, 0.40);
        assert!(md.contains("PASS ✅"), "{md}");
        assert!(!md.contains("REGRESSED"));
    }

    #[test]
    fn append_summary_creates_and_appends() {
        let dir =
            std::env::temp_dir().join(format!("bench_compare_summary_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.md");
        let path_str = path.to_str().unwrap();
        append_summary(path_str, "first\n");
        append_summary(path_str, "second\n");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            content, "first\nsecond\n",
            "summary must append, not truncate"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
