//! Measured backend × topology × n throughput grid, with machine-readable
//! output for tracking the perf trajectory across PRs.
//!
//! ```text
//! cargo run --release -p usd-bench --bin bench_backends -- \
//!     [--quick] [--seed <u64>] [--json [path]]
//!     [--backend <name>] [--topology <clique|cycle-frontier|regular:8|torus>]
//! ```
//!
//! `--backend`/`--topology` restrict the pinned scenario grid to matching
//! rows; a combination that selects nothing (e.g. `--backend batch
//! --topology regular:8` — the clique-only engine on a graph family) is an
//! error and the binary exits with status 2 instead of silently running
//! the full grid.
//!
//! Unlike the Criterion micro-benches, every row here is one *honest
//! workload*: either a full stabilization run (clique and expander rows —
//! wall time to silence, with scheduled/effective interaction throughput
//! derived from the same run) or a fixed scheduled-interaction drive (the
//! cycle-frontier row, whose stabilization is Θ(n²) parallel time and
//! which exists to measure the no-op-dominated regime the sparse skippers
//! leap over). `--json` writes the rows as `BENCH_backends.json`
//! (hand-rolled JSON, no dependencies) so CI can archive the numbers and
//! regressions are visible in review diffs. Every row embeds the engine's
//! telemetry block plus its per-event histogram quantiles
//! (`EventHistograms::to_json`), so `bench_compare` can trend p50/p90/p99
//! of skip lengths, block totals, and flush sizes across PRs, not just
//! aggregate throughput.

use pop_proto::{
    AgentSimulator, BatchGraphSimulator, Graph, GraphScheduler, GraphSimulator, ParGraphSimulator,
    Simulator, TopologyFamily,
};
use sim_stats::rng::SimRng;
use sim_stats::threads::resolve_threads;
use usd_core::backend::Backend;
use usd_core::init::InitialConfigBuilder;
use usd_core::protocol::UndecidedStateDynamics;
use usd_core::RunSpec;

/// One measured cell.
struct Row {
    backend: &'static str,
    topology: String,
    n: u64,
    mode: &'static str,
    wall_s: f64,
    scheduled: u64,
    effective: u64,
    /// The engine's event histograms as a schema-stable JSON object
    /// (`EventHistograms::to_json` — p50/p90/p99/n per per-event
    /// quantity), embedded verbatim in `Row::json` immediately before
    /// the telemetry block. Every bench run enables the histograms, so
    /// the overhead they add is part of the measured wall time (one
    /// predictable branch per event — see the pop-proto timeline docs).
    histograms: String,
    /// The engine's telemetry run report as a schema-stable JSON object
    /// (`EngineTelemetry::to_json`), embedded verbatim in `Row::json` as
    /// its LAST field so first-occurrence key scanners keep finding the
    /// row's own top-level keys first (the nested blocks repeat names
    /// like `n` and `scheduled`).
    telemetry: String,
}

impl Row {
    fn sched_per_s(&self) -> f64 {
        self.scheduled as f64 / self.wall_s
    }

    fn eff_per_s(&self) -> f64 {
        self.effective as f64 / self.wall_s
    }

    fn json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"topology\":\"{}\",\"n\":{},\"mode\":\"{}\",\
             \"wall_s\":{:.6},\"scheduled\":{},\"effective\":{},\
             \"scheduled_per_s\":{:.1},\"effective_per_s\":{:.1},\
             \"histograms\":{},\"telemetry\":{}}}",
            self.backend,
            self.topology,
            self.n,
            self.mode,
            self.wall_s,
            self.scheduled,
            self.effective,
            self.sched_per_s(),
            self.eff_per_s(),
            self.histograms,
            self.telemetry,
        )
    }
}

/// The histogram JSON a driven simulator reports once
/// [`Simulator::set_histograms`] was enabled (`{}` for an engine that
/// somehow reports none, so the row still parses).
fn hist_json(sim: &dyn Simulator) -> String {
    sim.histograms()
        .map_or_else(|| "{}".to_string(), |h| h.to_json())
}

/// Build a topology simulator for one of the graph-capable backends.
fn topo_sim(
    backend: Backend,
    family: TopologyFamily,
    n: u64,
    k: usize,
    rng: &mut SimRng,
) -> Box<dyn Simulator> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    usd_core::backend::make_topology_simulator(backend, &config, family, 7, rng)
}

/// Stabilization run on a topology: wall time to graph silence.
fn topo_stabilize_row(backend: Backend, family: TopologyFamily, n: u64, k: usize) -> Row {
    let n = family.snap_n(n as usize) as u64;
    let mut rng = SimRng::new(1);
    let mut sim = topo_sim(backend, family, n, k, &mut rng);
    sim.set_histograms(true);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: backend.name(),
        topology: family.name(),
        n,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
        histograms: hist_json(sim.as_ref()),
        telemetry: sim.telemetry().to_json(),
    }
}

/// Build a graph-engine simulator over explicit per-agent states.
fn explicit_sim(backend: Backend, graph: &Graph, states: Vec<usize>) -> Box<dyn Simulator> {
    let proto = UndecidedStateDynamics::new(2);
    match backend {
        Backend::Agent => Box::new(AgentSimulator::new(
            proto,
            GraphScheduler::new(graph.clone()),
            states,
        )),
        Backend::Graph => Box::new(GraphSimulator::new(proto, graph, states)),
        Backend::BatchGraph => Box::new(BatchGraphSimulator::new(proto, graph, states)),
        // The sharded engine benches at the ambient thread resolution
        // (`USD_THREADS` or available parallelism) — the same count a
        // flagless `usd run --backend pargraph` would use on this host.
        Backend::ParGraph => Box::new(ParGraphSimulator::new(
            proto,
            graph,
            states,
            resolve_threads(),
        )),
        other => panic!("{other} cannot run graph topologies"),
    }
}

/// Cycle-frontier states: two opinion domains filling half the ring each,
/// so only the two domain boundaries are active (W ≤ 8 of 2m
/// orientations) — the canonical no-op-dominated configuration.
fn frontier_states(n: usize) -> Vec<usize> {
    let mut states = vec![0usize; n];
    for s in states.iter_mut().skip(n / 2) {
        *s = 1;
    }
    states
}

/// Fixed scheduled-interaction drive on the cycle frontier (two opinion
/// domains, only the two boundaries active): the no-op-dominated regime.
fn cycle_frontier_row(backend: Backend, n: usize, target: u64) -> Row {
    let graph = TopologyFamily::Cycle.build(n, 0);
    let mut rng = SimRng::new(2);
    let mut sim = explicit_sim(backend, &graph, frontier_states(n));
    sim.set_histograms(true);
    let start = std::time::Instant::now();
    loop {
        let done = sim.interactions();
        if done >= target || sim.is_silent() {
            break;
        }
        if sim.advance(&mut rng, target - done) == 0 {
            break;
        }
    }
    Row {
        backend: backend.name(),
        topology: "cycle-frontier".to_string(),
        n: n as u64,
        mode: "target",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
        histograms: hist_json(sim.as_ref()),
        telemetry: sim.telemetry().to_json(),
    }
}

/// Full stabilization from the cycle-frontier configuration: the boundary
/// random walks must meet, so the whole run is sparse-phase work — the
/// scenario the shared block-leaping skipper (PR 5) is gated on.
fn frontier_stabilize_row(backend: Backend, n: usize) -> Row {
    let graph = TopologyFamily::Cycle.build(n, 0);
    let mut rng = SimRng::new(4);
    let mut sim = explicit_sim(backend, &graph, frontier_states(n));
    sim.set_histograms(true);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: backend.name(),
        topology: "cycle-frontier".to_string(),
        n: n as u64,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
        histograms: hist_json(sim.as_ref()),
        telemetry: sim.telemetry().to_json(),
    }
}

/// Torus endgame stabilization: one minority square patch on an
/// otherwise-converged torus. Eliminating the patch is boundary-driven
/// coarsening — activity stays collapsed at the patch perimeter, so the
/// run lives almost entirely in the sparse skipper (the other gated
/// no-op-dominated scenario).
fn torus_endgame_row(backend: Backend, n: usize, patch: usize) -> Row {
    let n = TopologyFamily::Torus.snap_n(n);
    let side = (n as f64).sqrt() as usize;
    let graph = TopologyFamily::Torus.build(n, 0);
    let mut states = vec![0usize; n];
    for r in 0..patch.min(side) {
        for c in 0..patch.min(side) {
            states[r * side + c] = 1;
        }
    }
    let mut rng = SimRng::new(5);
    let mut sim = explicit_sim(backend, &graph, states);
    sim.set_histograms(true);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: backend.name(),
        topology: "torus-endgame".to_string(),
        n: n as u64,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
        histograms: hist_json(sim.as_ref()),
        telemetry: sim.telemetry().to_json(),
    }
}

/// Bit-parallel replica ensemble stabilization: `lanes` independent runs
/// packed one bit-plane word per agent (clique when `family` is `None`),
/// run until every lane retires. The engine's `scheduled`/`effective`
/// counters are **lane-weighted aggregates** (each draw advances every
/// still-live lane), so this row's sched/s is the *effective-replica*
/// throughput — directly comparable against a scalar backend's row on the
/// same instance, whose sched/s is what `lanes` sequential runs would
/// sustain.
fn replica_ensemble_row(family: Option<TopologyFamily>, n: u64, k: usize, lanes: u32) -> Row {
    let n = family.map_or(n, |f| f.snap_n(n as usize) as u64);
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut rng = SimRng::new(6);
    let mut spec = RunSpec::new(&config)
        .backend(Backend::Replica)
        .replicas(lanes);
    if let Some(f) = family {
        spec = spec.topology(f).topo_seed(7);
    }
    let mut sim = spec.build_simulator(&mut rng);
    sim.set_histograms(true);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: Backend::Replica.name(),
        topology: family.map_or_else(|| "clique".to_string(), |f| f.name()),
        n,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
        histograms: hist_json(sim.as_ref()),
        telemetry: sim.telemetry().to_json(),
    }
}

/// Clique stabilization through the generic simulator entry point (every
/// clique backend benched here is a generic-substrate engine, including
/// the skip-ahead wrapper, so scheduled *and* effective counts are real).
fn clique_row(backend: Backend, n: u64, k: usize) -> Row {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut rng = SimRng::new(3);
    let mut sim = usd_core::backend::make_simulator(backend, &config);
    sim.set_histograms(true);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: backend.name(),
        topology: "clique".to_string(),
        n,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
        histograms: hist_json(sim.as_ref()),
        telemetry: sim.telemetry().to_json(),
    }
}

/// One planned (not yet run) scenario of the pinned grid.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Work {
    /// Stabilization to graph silence on a sparse family.
    TopoStabilize {
        family: TopologyFamily,
        n: u64,
        k: usize,
    },
    /// Fixed scheduled-interaction drive on the cycle frontier.
    Frontier { n: usize, target: u64 },
    /// Stabilization from the cycle-frontier configuration (pure
    /// sparse-phase work; gated).
    FrontierStabilize { n: usize },
    /// Stabilization of a torus endgame: one minority patch on an
    /// otherwise-converged torus (sparse-phase dominated; gated).
    TorusEndgame { n: usize, patch: usize },
    /// Clique stabilization through the generic entry point.
    Clique { n: u64, k: usize },
    /// Bit-parallel replica ensemble stabilization (`lanes` runs per
    /// pass; clique when `family` is `None`). Lane-weighted counters, so
    /// the row's throughput is effective-replica throughput.
    ReplicaEnsemble {
        family: Option<TopologyFamily>,
        n: u64,
        k: usize,
        lanes: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Scenario {
    backend: Backend,
    work: Work,
}

impl Scenario {
    /// The topology label the row will carry (and `--topology` matches).
    fn topology_label(&self) -> String {
        match self.work {
            Work::TopoStabilize { family, .. } => family.name(),
            Work::Frontier { .. } | Work::FrontierStabilize { .. } => "cycle-frontier".to_string(),
            Work::TorusEndgame { .. } => "torus-endgame".to_string(),
            Work::Clique { .. } => "clique".to_string(),
            Work::ReplicaEnsemble { family, .. } => {
                family.map_or_else(|| "clique".to_string(), |f| f.name())
            }
        }
    }

    fn run(&self) -> Row {
        // Every scenario is seeded, so repeated passes do identical work
        // and differ only in wall time; short rows (tens of ms) are
        // re-timed up to twice more and the fastest pass kept — best-of-N
        // strips scheduler-preemption noise that single-shot timings of
        // sub-second workloads otherwise inherit.
        let mut best = self.run_once();
        let mut reps = 1;
        while best.wall_s < 0.6 && reps < 3 {
            let again = self.run_once();
            if again.wall_s < best.wall_s {
                best = again;
            }
            reps += 1;
        }
        best
    }

    fn run_once(&self) -> Row {
        match self.work {
            Work::TopoStabilize { family, n, k } => topo_stabilize_row(self.backend, family, n, k),
            Work::Frontier { n, target } => cycle_frontier_row(self.backend, n, target),
            Work::FrontierStabilize { n } => frontier_stabilize_row(self.backend, n),
            Work::TorusEndgame { n, patch } => torus_endgame_row(self.backend, n, patch),
            Work::Clique { n, k } => clique_row(self.backend, n, k),
            Work::ReplicaEnsemble {
                family,
                n,
                k,
                lanes,
            } => replica_ensemble_row(family, n, k, lanes),
        }
    }
}

/// The pinned scenario grid (the comparison surface of the CI perf gate —
/// keep it stable across PRs, or regenerate the committed baseline).
fn scenario_set(quick: bool) -> Vec<Scenario> {
    let reg8 = TopologyFamily::Regular { d: 8 };
    let mut set = Vec::new();
    if quick {
        for backend in [
            Backend::Agent,
            Backend::Graph,
            Backend::BatchGraph,
            Backend::ParGraph,
        ] {
            set.push(Scenario {
                backend,
                work: Work::TopoStabilize {
                    family: reg8,
                    n: 20_000,
                    k: 2,
                },
            });
            set.push(Scenario {
                backend,
                work: Work::Frontier {
                    n: 16_384,
                    target: 2_000_000,
                },
            });
        }
        for backend in [Backend::Graph, Backend::BatchGraph, Backend::ParGraph] {
            set.push(Scenario {
                backend,
                work: Work::FrontierStabilize { n: 512 },
            });
            set.push(Scenario {
                backend,
                work: Work::TorusEndgame { n: 4_096, patch: 8 },
            });
        }
        for backend in [Backend::Batch, Backend::SkipAhead] {
            set.push(Scenario {
                backend,
                work: Work::Clique { n: 200_000, k: 4 },
            });
        }
        // The bit-parallel ensemble row: 64 lanes per word on the same
        // expander instance as the scalar rows above, so the amortization
        // ratio (replica sched/s over agent sched/s) is measured in-grid.
        set.push(Scenario {
            backend: Backend::Replica,
            work: Work::ReplicaEnsemble {
                family: Some(reg8),
                n: 20_000,
                k: 2,
                lanes: 64,
            },
        });
    } else {
        // The acceptance regime: random 8-regular at n = 10⁶, the
        // effective-dominated expander where PR 2 measured parity. The
        // pargraph rows run the same instances at the ambient thread
        // resolution, so pargraph/graph on these rows is the measured
        // multi-core scaling factor of the sharded engine on this host.
        for backend in [
            Backend::Agent,
            Backend::Graph,
            Backend::BatchGraph,
            Backend::ParGraph,
        ] {
            for n in [100_000u64, 1_000_000] {
                set.push(Scenario {
                    backend,
                    work: Work::TopoStabilize {
                        family: reg8,
                        n,
                        k: 2,
                    },
                });
            }
            set.push(Scenario {
                backend,
                work: Work::Frontier {
                    n: 65_536,
                    target: 20_000_000,
                },
            });
        }
        for backend in [Backend::Graph, Backend::BatchGraph, Backend::ParGraph] {
            set.push(Scenario {
                backend,
                work: Work::TopoStabilize {
                    family: TopologyFamily::Torus,
                    n: 65_536,
                    k: 2,
                },
            });
            // The no-op-dominated *stabilization* rows (PR 5): pure
            // sparse-phase runs, so the shared block-leaping skipper is
            // inside the >40% regression gate, not just the ungated
            // target-mode frontier drive.
            set.push(Scenario {
                backend,
                work: Work::FrontierStabilize { n: 4_096 },
            });
            set.push(Scenario {
                backend,
                work: Work::TorusEndgame {
                    n: 65_536,
                    patch: 64,
                },
            });
        }
        for backend in [Backend::Count, Backend::Batch, Backend::SkipAhead] {
            set.push(Scenario {
                backend,
                work: Work::Clique { n: 1_000_000, k: 4 },
            });
        }
        // The bit-parallel ensemble rows (the replica engine's acceptance
        // regime): 64 lanes per word on the reg8 n=10⁵ instance the agent
        // row above pins — replica sched/s over agent sched/s is the
        // amortization factor vs 64 sequential agentwise runs — plus a
        // bit-sliced clique ensemble (k = 4 engages the multi-plane path).
        set.push(Scenario {
            backend: Backend::Replica,
            work: Work::ReplicaEnsemble {
                family: Some(reg8),
                n: 100_000,
                k: 2,
                lanes: 64,
            },
        });
        set.push(Scenario {
            backend: Backend::Replica,
            work: Work::ReplicaEnsemble {
                family: None,
                n: 200_000,
                k: 4,
                lanes: 64,
            },
        });
    }
    set
}

/// Whether a scenario's topology label matches a `--topology` filter
/// (exact label, or the family name before the `:` parameter).
fn topology_matches(label: &str, filter: &str) -> bool {
    label == filter || label.split(':').next() == Some(filter)
}

/// Apply `--backend`/`--topology` filters to the grid. An empty selection
/// is an invalid combination and errors.
fn select_scenarios(
    set: Vec<Scenario>,
    backend: Option<Backend>,
    topology: Option<&str>,
) -> Result<Vec<Scenario>, String> {
    if let Some(filter) = topology {
        let known = set
            .iter()
            .any(|s| topology_matches(&s.topology_label(), filter));
        if !known {
            let mut available: Vec<String> = set.iter().map(|s| s.topology_label()).collect();
            available.sort();
            available.dedup();
            return Err(format!(
                "--topology '{filter}' names no scenario in this grid \
                 (available: {})",
                available.join(", ")
            ));
        }
    }
    let selected: Vec<Scenario> = set
        .into_iter()
        .filter(|s| backend.is_none_or(|b| s.backend == b))
        .filter(|s| topology.is_none_or(|t| topology_matches(&s.topology_label(), t)))
        .collect();
    if selected.is_empty() {
        let b = backend.expect("an unfiltered grid is never empty");
        return Err(match topology {
            Some(t) => format!(
                "no scenario combines --backend {b} with --topology {t}: {} \
                 graph families; the clique rows pin count/batch/skip/replica",
                if b.capabilities().topologies {
                    "that backend runs"
                } else {
                    "it cannot run"
                }
            ),
            None => format!(
                "--backend {b} appears in no scenario of this grid (graph \
                 rows pin agent/graph/batchgraph/pargraph/replica; clique \
                 rows pin count/batch/skip, or batch/skip in quick mode, \
                 plus the replica ensemble rows)"
            ),
        });
    }
    Ok(selected)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json: Option<String> = None;
    let mut backend: Option<Backend> = None;
    let mut topology: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--json" => {
                let path = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                    _ => "BENCH_backends.json".to_string(),
                };
                json = Some(path);
            }
            "--seed" => {
                // Accepted for interface stability; the workloads pin their
                // seeds so rows are comparable across PRs.
                let _ = it.next();
            }
            "--backend" => match it.next().map(|v| v.parse::<Backend>()) {
                Some(Ok(b)) => backend = Some(b),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--backend needs a value");
                    std::process::exit(2);
                }
            },
            "--topology" => match it.next() {
                Some(v) => topology = Some(v.clone()),
                None => {
                    eprintln!("--topology needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag '{other}' (flags: --quick --json [path] --seed <u64> \
                     --backend <name> --topology <label>)"
                );
                std::process::exit(2);
            }
        }
    }

    let scenarios = select_scenarios(scenario_set(quick), backend, topology.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let rows: Vec<Row> = scenarios.iter().map(Scenario::run).collect();

    println!(
        "{:<11} {:<14} {:>9} {:>10} {:>9} {:>13} {:>12} {:>12} {:>12}",
        "backend", "topology", "n", "mode", "wall s", "scheduled", "effective", "sched/s", "eff/s"
    );
    for r in &rows {
        println!(
            "{:<11} {:<14} {:>9} {:>10} {:>9.3} {:>13} {:>12} {:>12.3e} {:>12.3e}",
            r.backend,
            r.topology,
            r.n,
            r.mode,
            r.wall_s,
            r.scheduled,
            r.effective,
            r.sched_per_s(),
            r.eff_per_s()
        );
    }

    // Headline ratio the README tracks: batchgraph vs agent effective
    // throughput on the expander rows.
    let eff = |name: &str| {
        rows.iter()
            .filter(|r| r.backend == name && r.topology.starts_with("regular"))
            .map(|r| (r.n, r.eff_per_s()))
            .collect::<Vec<_>>()
    };
    for ((n, agent), (_, bg)) in eff("agent").iter().zip(eff("batchgraph").iter()) {
        println!(
            "speedup batchgraph/agent on regular:8 n={n}: {:.2}x effective throughput",
            bg / agent
        );
    }

    // Multi-core scaling the README tracks: the sharded engine's effective
    // throughput over the scalar graphwise engine's on the same expander
    // instance, at whatever thread count this host resolved.
    for ((n, graph), (_, pg)) in eff("graph").iter().zip(eff("pargraph").iter()) {
        println!(
            "scaling pargraph/graph on regular:8 n={n} (threads={}): \
             {:.2}x effective throughput",
            resolve_threads(),
            pg / graph
        );
    }

    // Ensemble amortization the README tracks: the replica engine's
    // lane-weighted scheduled throughput over the agentwise engine's on
    // the same expander instance — i.e. the speedup over running the
    // 64 lanes as sequential scalar runs.
    let sched = |name: &str| {
        rows.iter()
            .filter(|r| r.backend == name && r.topology.starts_with("regular"))
            .map(|r| (r.n, r.sched_per_s()))
            .collect::<Vec<_>>()
    };
    for (n, rep) in sched("replica") {
        if let Some((_, agent)) = sched("agent").iter().find(|(an, _)| *an == n) {
            println!(
                "amortization replica(64 lanes)/agent on regular:8 n={n}: \
                 {:.2}x effective-replica throughput",
                rep / agent
            );
        }
    }

    if let Some(path) = json {
        let body: Vec<String> = rows.iter().map(|r| format!("  {}", r.json())).collect();
        let doc = format!(
            "{{\n\"workload\": \"bench_backends\",\n\"quick\": {},\n\"rows\": [\n{}\n]\n}}\n",
            quick,
            body.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_grids_cover_both_modes() {
        let quick = scenario_set(true);
        let full = scenario_set(false);
        assert!(!quick.is_empty() && !full.is_empty());
        // The full grid is the gate's comparison surface: it must contain
        // the acceptance-regime rows.
        assert!(full.iter().any(|s| s.backend == Backend::BatchGraph
            && matches!(s.work, Work::TopoStabilize { n: 1_000_000, .. })));
        assert!(full
            .iter()
            .any(|s| matches!(s.work, Work::Clique { .. }) && s.backend == Backend::Batch));
        // The no-op-dominated stabilization rows (PR 5) must be pinned in
        // both grids for both graph engines — they are what puts the
        // shared sparse skipper inside the regression gate.
        for set in [&quick, &full] {
            for backend in [Backend::Graph, Backend::BatchGraph, Backend::ParGraph] {
                assert!(set
                    .iter()
                    .any(|s| s.backend == backend
                        && matches!(s.work, Work::FrontierStabilize { .. })));
                assert!(set
                    .iter()
                    .any(|s| s.backend == backend && matches!(s.work, Work::TorusEndgame { .. })));
            }
            // The sharded engine is pinned on the same expander instance
            // as the scalar graphwise rows, so the in-grid pargraph/graph
            // scaling ratio always has its single-core denominator.
            for backend in [Backend::Graph, Backend::ParGraph] {
                assert!(set
                    .iter()
                    .any(|s| s.backend == backend && matches!(s.work, Work::TopoStabilize { .. })));
            }
            // The bit-parallel ensemble row must be pinned in both grids,
            // on the same reg8 instance as an agent row so the in-grid
            // amortization ratio has its scalar denominator.
            let ensemble_n = set.iter().find_map(|s| match s.work {
                Work::ReplicaEnsemble {
                    family: Some(TopologyFamily::Regular { .. }),
                    n,
                    lanes: 64,
                    ..
                } => Some(n),
                _ => None,
            });
            let n = ensemble_n.expect("a 64-lane reg8 replica ensemble row is pinned");
            assert!(set.iter().any(|s| s.backend == Backend::Agent
                && matches!(s.work, Work::TopoStabilize { n: an, .. } if an == n)));
        }
    }

    #[test]
    fn filters_select_matching_scenarios() {
        let sel = select_scenarios(scenario_set(false), Some(Backend::Graph), None).unwrap();
        assert!(!sel.is_empty());
        assert!(sel.iter().all(|s| s.backend == Backend::Graph));
        let sel = select_scenarios(scenario_set(false), None, Some("regular")).unwrap();
        assert!(!sel.is_empty());
        assert!(sel.iter().all(|s| s.topology_label() == "regular:8"));
        let sel =
            select_scenarios(scenario_set(false), Some(Backend::Batch), Some("clique")).unwrap();
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn invalid_backend_topology_combinations_error() {
        // Clique-only engine on a graph family: nothing to run.
        assert!(
            select_scenarios(scenario_set(false), Some(Backend::Batch), Some("regular:8")).is_err()
        );
        // Graph engine on the clique rows (those pin count/batch/skip).
        assert!(
            select_scenarios(scenario_set(false), Some(Backend::Graph), Some("clique")).is_err()
        );
        // Unknown topology label.
        assert!(select_scenarios(scenario_set(false), None, Some("moebius")).is_err());
        // A backend absent from the (quick) grid entirely.
        assert!(select_scenarios(scenario_set(true), Some(Backend::Count), None).is_err());
    }
}
