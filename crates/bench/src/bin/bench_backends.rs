//! Measured backend × topology × n throughput grid, with machine-readable
//! output for tracking the perf trajectory across PRs.
//!
//! ```text
//! cargo run --release -p usd-bench --bin bench_backends -- \
//!     [--quick] [--seed <u64>] [--json [path]]
//! ```
//!
//! Unlike the Criterion micro-benches, every row here is one *honest
//! workload*: either a full stabilization run (clique and expander rows —
//! wall time to silence, with scheduled/effective interaction throughput
//! derived from the same run) or a fixed scheduled-interaction drive (the
//! cycle-frontier row, whose stabilization is Θ(n²) parallel time and
//! which exists to measure the no-op-dominated regime the sparse skippers
//! leap over). `--json` writes the rows as `BENCH_backends.json`
//! (hand-rolled JSON, no dependencies) so CI can archive the numbers and
//! regressions are visible in review diffs.

use pop_proto::{
    AgentSimulator, BatchGraphSimulator, GraphScheduler, GraphSimulator, Simulator, TopologyFamily,
};
use sim_stats::rng::SimRng;
use usd_core::backend::Backend;
use usd_core::init::InitialConfigBuilder;
use usd_core::protocol::UndecidedStateDynamics;

/// One measured cell.
struct Row {
    backend: &'static str,
    topology: String,
    n: u64,
    mode: &'static str,
    wall_s: f64,
    scheduled: u64,
    effective: u64,
}

impl Row {
    fn sched_per_s(&self) -> f64 {
        self.scheduled as f64 / self.wall_s
    }

    fn eff_per_s(&self) -> f64 {
        self.effective as f64 / self.wall_s
    }

    fn json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"topology\":\"{}\",\"n\":{},\"mode\":\"{}\",\
             \"wall_s\":{:.6},\"scheduled\":{},\"effective\":{},\
             \"scheduled_per_s\":{:.1},\"effective_per_s\":{:.1}}}",
            self.backend,
            self.topology,
            self.n,
            self.mode,
            self.wall_s,
            self.scheduled,
            self.effective,
            self.sched_per_s(),
            self.eff_per_s(),
        )
    }
}

/// Build a topology simulator for one of the graph-capable backends.
fn topo_sim(
    backend: Backend,
    family: TopologyFamily,
    n: u64,
    k: usize,
    rng: &mut SimRng,
) -> Box<dyn Simulator> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    usd_core::backend::make_topology_simulator(backend, &config, family, 7, rng)
}

/// Stabilization run on a topology: wall time to graph silence.
fn topo_stabilize_row(backend: Backend, family: TopologyFamily, n: u64, k: usize) -> Row {
    let n = family.snap_n(n as usize) as u64;
    let mut rng = SimRng::new(1);
    let mut sim = topo_sim(backend, family, n, k, &mut rng);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: backend.name(),
        topology: family.name(),
        n,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
    }
}

/// Fixed scheduled-interaction drive on the cycle frontier (two opinion
/// domains, only the two boundaries active): the no-op-dominated regime.
fn cycle_frontier_row(backend: Backend, n: usize, target: u64) -> Row {
    let graph = TopologyFamily::Cycle.build(n, 0);
    let mut states = vec![0usize; n];
    for s in states.iter_mut().skip(n / 2) {
        *s = 1;
    }
    let proto = UndecidedStateDynamics::new(2);
    let mut rng = SimRng::new(2);
    let mut sim: Box<dyn Simulator> = match backend {
        Backend::Agent => Box::new(AgentSimulator::new(
            proto,
            GraphScheduler::new(graph),
            states,
        )),
        Backend::Graph => Box::new(GraphSimulator::new(proto, &graph, states)),
        Backend::BatchGraph => Box::new(BatchGraphSimulator::new(proto, &graph, states)),
        other => panic!("{other} cannot run graph topologies"),
    };
    let start = std::time::Instant::now();
    loop {
        let done = sim.interactions();
        if done >= target || sim.is_silent() {
            break;
        }
        if sim.advance(&mut rng, target - done) == 0 {
            break;
        }
    }
    Row {
        backend: backend.name(),
        topology: "cycle-frontier".to_string(),
        n: n as u64,
        mode: "target",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
    }
}

/// Clique stabilization through the generic simulator entry point (every
/// clique backend benched here is a generic-substrate engine, including
/// the skip-ahead wrapper, so scheduled *and* effective counts are real).
fn clique_row(backend: Backend, n: u64, k: usize) -> Row {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut rng = SimRng::new(3);
    let mut sim = usd_core::backend::make_simulator(backend, &config);
    let start = std::time::Instant::now();
    sim.run_to_silence(&mut rng, u64::MAX / 2);
    Row {
        backend: backend.name(),
        topology: "clique".to_string(),
        n,
        mode: "stabilize",
        wall_s: start.elapsed().as_secs_f64(),
        scheduled: sim.interactions(),
        effective: sim.effective_interactions(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--json" => {
                let path = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                    _ => "BENCH_backends.json".to_string(),
                };
                json = Some(path);
            }
            "--seed" => {
                // Accepted for interface stability; the workloads pin their
                // seeds so rows are comparable across PRs.
                let _ = it.next();
            }
            other => {
                eprintln!("unknown flag '{other}' (flags: --quick --json [path] --seed <u64>)");
                std::process::exit(2);
            }
        }
    }

    let reg8 = TopologyFamily::Regular { d: 8 };
    let mut rows: Vec<Row> = Vec::new();
    if quick {
        for b in [Backend::Agent, Backend::Graph, Backend::BatchGraph] {
            rows.push(topo_stabilize_row(b, reg8, 20_000, 2));
            rows.push(cycle_frontier_row(b, 16_384, 2_000_000));
        }
        rows.push(clique_row(Backend::Batch, 200_000, 4));
        rows.push(clique_row(Backend::SkipAhead, 200_000, 4));
    } else {
        // The acceptance regime: random 8-regular at n = 10⁶, the
        // effective-dominated expander where PR 2 measured parity.
        for b in [Backend::Agent, Backend::Graph, Backend::BatchGraph] {
            rows.push(topo_stabilize_row(b, reg8, 100_000, 2));
            rows.push(topo_stabilize_row(b, reg8, 1_000_000, 2));
            rows.push(cycle_frontier_row(b, 65_536, 20_000_000));
        }
        rows.push(topo_stabilize_row(
            Backend::Graph,
            TopologyFamily::Torus,
            65_536,
            2,
        ));
        rows.push(topo_stabilize_row(
            Backend::BatchGraph,
            TopologyFamily::Torus,
            65_536,
            2,
        ));
        for b in [Backend::Count, Backend::Batch, Backend::SkipAhead] {
            rows.push(clique_row(b, 1_000_000, 4));
        }
    }

    println!(
        "{:<11} {:<14} {:>9} {:>10} {:>9} {:>13} {:>12} {:>12} {:>12}",
        "backend", "topology", "n", "mode", "wall s", "scheduled", "effective", "sched/s", "eff/s"
    );
    for r in &rows {
        println!(
            "{:<11} {:<14} {:>9} {:>10} {:>9.3} {:>13} {:>12} {:>12.3e} {:>12.3e}",
            r.backend,
            r.topology,
            r.n,
            r.mode,
            r.wall_s,
            r.scheduled,
            r.effective,
            r.sched_per_s(),
            r.eff_per_s()
        );
    }

    // Headline ratio the README tracks: batchgraph vs agent effective
    // throughput on the expander rows.
    let eff = |name: &str| {
        rows.iter()
            .filter(|r| r.backend == name && r.topology.starts_with("regular"))
            .map(|r| (r.n, r.eff_per_s()))
            .collect::<Vec<_>>()
    };
    for ((n, agent), (_, bg)) in eff("agent").iter().zip(eff("batchgraph").iter()) {
        println!(
            "speedup batchgraph/agent on regular:8 n={n}: {:.2}x effective throughput",
            bg / agent
        );
    }

    if let Some(path) = json {
        let body: Vec<String> = rows.iter().map(|r| format!("  {}", r.json())).collect();
        let doc = format!(
            "{{\n\"workload\": \"bench_backends\",\n\"quick\": {},\n\"rows\": [\n{}\n]\n}}\n",
            quick,
            body.join(",\n")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
