//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches measure (see DESIGN.md §3/§7):
//!
//! * `bench_simulators` — per-interaction throughput of the four engines
//!   (agentwise, generic countwise, SequentialUsd, SkipAheadUsd) across
//!   (n, k) — the count-based vs agent-based and Fenwick-vs-naive ablation;
//! * `bench_sampling` — Fenwick vs linear-scan vs alias-table categorical
//!   sampling across category counts (the log k vs k vs O(1) crossover);
//! * `bench_fig1` — the end-to-end Figure 1 run at reduced n (E1/E2's
//!   regeneration cost);
//! * `bench_stabilization` — full stabilization measurement at small n
//!   (what one sweep cell of E6 costs);
//! * `bench_baselines` — baseline protocol round/interaction throughput.

use usd_core::init::InitialConfigBuilder;
use usd_core::UsdConfig;

/// A standard benchmark instance: the Figure-1 initial family at `(n, k)`.
pub fn bench_config(n: u64, k: usize) -> UsdConfig {
    InitialConfigBuilder::new(n, k).figure1()
}

/// The (n, k) grid used by the throughput benches.
pub fn grid() -> Vec<(u64, usize)> {
    vec![(10_000, 8), (100_000, 8), (100_000, 32)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_valid() {
        let c = bench_config(10_000, 8);
        assert_eq!(c.n(), 10_000);
        assert_eq!(c.k(), 8);
        assert!(c.bias() > 0);
    }

    #[test]
    fn grid_is_nonempty() {
        assert!(!grid().is_empty());
    }
}
