//! Categorical-sampling structures: Fenwick vs linear scan vs alias table.
//!
//! The simulation hot path samples from mutating count distributions, so
//! the Fenwick tree's O(log k) update+sample is the design point; the
//! alias table (O(1) sample, O(k) rebuild) only wins for static
//! distributions — exactly the crossover this bench shows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pop_proto::{AliasTable, FenwickSampler};
use sim_stats::multinomial::categorical_index;
use sim_stats::rng::SimRng;
use std::hint::black_box;

const SAMPLES: u64 = 100_000;

fn weights(k: usize) -> Vec<u64> {
    (0..k).map(|i| 1 + (i as u64 * 37) % 100).collect()
}

fn bench_static_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_sampling");
    group.throughput(Throughput::Elements(SAMPLES));
    for &k in &[8usize, 64, 512] {
        let w = weights(k);
        group.bench_with_input(BenchmarkId::new("linear_scan", k), &w, |b, w| {
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0usize;
                for _ in 0..SAMPLES {
                    acc ^= categorical_index(&mut rng, w);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("fenwick", k), &w, |b, w| {
            let f = FenwickSampler::new(w);
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0usize;
                for _ in 0..SAMPLES {
                    acc ^= f.sample(&mut rng);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("alias", k), &w, |b, w| {
            let wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
            let t = AliasTable::new(&wf);
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0usize;
                for _ in 0..SAMPLES {
                    acc ^= t.sample(&mut rng);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_dynamic_sampling(c: &mut Criterion) {
    // The simulation workload: sample, then update the sampled weight.
    let mut group = c.benchmark_group("dynamic_sampling");
    group.throughput(Throughput::Elements(SAMPLES));
    for &k in &[8usize, 64, 512] {
        let w = weights(k);
        group.bench_with_input(BenchmarkId::new("fenwick_sample_update", k), &w, |b, w| {
            b.iter(|| {
                let mut f = FenwickSampler::new(w);
                let mut rng = SimRng::new(1);
                for _ in 0..SAMPLES {
                    let i = f.sample(&mut rng);
                    // Move one unit around the circle: the shape of a USD
                    // transition's bookkeeping.
                    f.add(i, -1);
                    f.add((i + 1) % f.len(), 1);
                }
                black_box(f.total())
            })
        });
        group.bench_with_input(BenchmarkId::new("alias_rebuild", k), &w, |b, w| {
            b.iter(|| {
                let mut wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
                let mut rng = SimRng::new(1);
                // Rebuilding per update is the honest alias-table cost in a
                // dynamic setting; cap iterations to keep the bench sane.
                for _ in 0..(SAMPLES / 100).max(1) {
                    let t = AliasTable::new(&wf);
                    let i = t.sample(&mut rng);
                    wf[i] += 1.0;
                }
                black_box(wf[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static_sampling, bench_dynamic_sampling);
criterion_main!(benches);
