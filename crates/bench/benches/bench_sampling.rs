//! Categorical-sampling structures: Fenwick vs linear scan vs alias table.
//!
//! The simulation hot path samples from mutating count distributions, so
//! the Fenwick tree's O(log k) update+sample is the design point; the
//! alias table (O(1) sample, O(k) rebuild) only wins for static
//! distributions — exactly the crossover this bench shows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pop_proto::{AliasTable, FenwickSampler};
use sim_stats::multinomial::{
    categorical_index, hypergeometric_pairing_table, multivariate_hypergeometric,
    multivariate_hypergeometric_streams,
};
use sim_stats::rng::SimRng;
use std::hint::black_box;

const SAMPLES: u64 = 100_000;

fn weights(k: usize) -> Vec<u64> {
    (0..k).map(|i| 1 + (i as u64 * 37) % 100).collect()
}

fn bench_static_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_sampling");
    group.throughput(Throughput::Elements(SAMPLES));
    for &k in &[8usize, 64, 512] {
        let w = weights(k);
        group.bench_with_input(BenchmarkId::new("linear_scan", k), &w, |b, w| {
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0usize;
                for _ in 0..SAMPLES {
                    acc ^= categorical_index(&mut rng, w);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("fenwick", k), &w, |b, w| {
            let f = FenwickSampler::new(w);
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0usize;
                for _ in 0..SAMPLES {
                    acc ^= f.sample(&mut rng);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("alias", k), &w, |b, w| {
            let wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
            let t = AliasTable::new(&wf);
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0usize;
                for _ in 0..SAMPLES {
                    acc ^= t.sample(&mut rng);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_dynamic_sampling(c: &mut Criterion) {
    // The simulation workload: sample, then update the sampled weight.
    let mut group = c.benchmark_group("dynamic_sampling");
    group.throughput(Throughput::Elements(SAMPLES));
    for &k in &[8usize, 64, 512] {
        let w = weights(k);
        group.bench_with_input(BenchmarkId::new("fenwick_sample_update", k), &w, |b, w| {
            b.iter(|| {
                let mut f = FenwickSampler::new(w);
                let mut rng = SimRng::new(1);
                for _ in 0..SAMPLES {
                    let i = f.sample(&mut rng);
                    // Move one unit around the circle: the shape of a USD
                    // transition's bookkeeping.
                    f.add(i, -1);
                    f.add((i + 1) % f.len(), 1);
                }
                black_box(f.total())
            })
        });
        group.bench_with_input(BenchmarkId::new("alias_rebuild", k), &w, |b, w| {
            b.iter(|| {
                let mut wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
                let mut rng = SimRng::new(1);
                // Rebuilding per update is the honest alias-table cost in a
                // dynamic setting; cap iterations to keep the bench sane.
                for _ in 0..(SAMPLES / 100).max(1) {
                    let t = AliasTable::new(&wf);
                    let i = t.sample(&mut rng);
                    wf[i] += 1.0;
                }
                black_box(wf[0])
            })
        });
    }
    group.finish();
}

fn bench_hypergeometric_splits(c: &mut Criterion) {
    // The batch simulators' per-batch cost is dominated by multivariate
    // hypergeometric splits; k = 2 is the epidemic/voter case, 32 the USD
    // paper scale, 256 the blocked-walk regime (chunks of 32 categories
    // skipped whole when the draw misses them).
    let mut group = c.benchmark_group("hypergeometric_splits");
    const DRAWS_PER_CALL: u64 = 2_000;
    const CALLS: u64 = 2_000;
    group.throughput(Throughput::Elements(CALLS));
    for &k in &[2usize, 32, 256] {
        let pop: Vec<u64> = (0..k).map(|i| 50_000 + (i as u64 * 97) % 1_000).collect();
        group.bench_with_input(BenchmarkId::new("chain_walk", k), &pop, |b, pop| {
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut acc = 0u64;
                for _ in 0..CALLS {
                    acc ^= multivariate_hypergeometric(&mut rng, pop, DRAWS_PER_CALL)[k / 2];
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("tree_streams", k), &pop, |b, pop| {
            b.iter(|| {
                let mut acc = 0u64;
                for master in 0..CALLS {
                    acc ^=
                        multivariate_hypergeometric_streams(master, pop, DRAWS_PER_CALL, 1)[k / 2];
                }
                black_box(acc)
            })
        });
    }
    // The full batch pairing table at USD scale (k states each side).
    for &k in &[2usize, 32] {
        let initiators: Vec<u64> = (0..k).map(|i| 500 + (i as u64 * 13) % 100).collect();
        let responders = {
            let total: u64 = initiators.iter().sum();
            let mut r = vec![total / k as u64; k];
            r[0] += total - r.iter().sum::<u64>();
            r
        };
        group.bench_with_input(
            BenchmarkId::new("pairing_table", k),
            &(initiators, responders),
            |b, (a, r)| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for master in 0..CALLS {
                        acc ^= hypergeometric_pairing_table(master, a, r, 1)[0];
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_static_sampling,
    bench_dynamic_sampling,
    bench_hypergeometric_splits
);
criterion_main!(benches);
