//! Cost of one E6 sweep cell: stabilization from the maximum-admissible-
//! bias family, across k — how the lower bound's Θ(k log(·)) shows up as
//! wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use sim_stats::rng::SimRng;
use std::hint::black_box;
use usd_core::dynamics::{run_until_stable, SkipAheadUsd};
use usd_core::init::InitialConfigBuilder;

fn bench_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilization_sweep_cell");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);
    let n = 10_000u64;
    for &k in &[4usize, 8, 16] {
        let config = InitialConfigBuilder::new(n, k).max_admissible_bias();
        group.bench_with_input(
            BenchmarkId::new("max_admissible_bias", format!("n{n}_k{k}")),
            &config,
            |b, config| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = SkipAheadUsd::new(config);
                    let mut rng = SimRng::new(seed);
                    let budget = (40.0 * k as f64 * n as f64 * (n as f64).ln()) as u64;
                    let (t, stable) = run_until_stable(&mut sim, &mut rng, budget, |_, _| {});
                    assert!(stable);
                    black_box(t)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stabilization);
criterion_main!(benches);
