//! End-to-end Figure 1 regeneration cost at reduced n.
//!
//! One sample = one full run of the E1 workload (paper family, bias
//! √(n ln n), run to stabilization) with the skip-ahead engine — the cost
//! a user pays per `fig1_left` invocation at the benched n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SamplingMode};
use sim_stats::rng::SimRng;
use std::hint::black_box;
use usd_bench::bench_config;
use usd_core::dynamics::{run_until_stable, SkipAheadUsd};
use usd_core::theory;

fn bench_fig1_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_end_to_end");
    group.sampling_mode(SamplingMode::Flat);
    group.sample_size(10);
    for &n in &[5_000u64, 20_000] {
        let k = theory::figure1_k(n);
        let config = bench_config(n, k);
        group.bench_with_input(
            BenchmarkId::new("paper_family_to_stability", format!("n{n}_k{k}")),
            &config,
            |b, config| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = SkipAheadUsd::new(config);
                    let mut rng = SimRng::new(seed);
                    let budget = (40.0 * k as f64 * n as f64 * (n as f64).ln()) as u64;
                    let (t, stable) = run_until_stable(&mut sim, &mut rng, budget, |_, _| {});
                    assert!(stable);
                    black_box(t)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1_runs);
criterion_main!(benches);
