//! Engine throughput: interactions per second for the four exact engines.
//!
//! This is the quantitative backing for DESIGN.md §7's ablation choices:
//! count-based beats agent-based on memory without losing speed, and the
//! skip-ahead engine wins by the no-op fraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pop_proto::{AgentSimulator, CliqueScheduler, CountSimulator};
use sim_stats::rng::SimRng;
use std::hint::black_box;
use usd_bench::bench_config;
use usd_core::dynamics::{SequentialUsd, SkipAheadUsd, UsdSimulator};
use usd_core::protocol::UndecidedStateDynamics;

const INTERACTIONS: u64 = 100_000;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(INTERACTIONS));
    for &(n, k) in &[(10_000u64, 8usize), (10_000, 32)] {
        let config = bench_config(n, k);

        group.bench_with_input(
            BenchmarkId::new("agentwise", format!("n{n}_k{k}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let proto = UndecidedStateDynamics::new(k);
                    let mut sim = AgentSimulator::from_config(
                        proto,
                        CliqueScheduler::new(n as usize),
                        &config.to_count_config(),
                    );
                    let mut rng = SimRng::new(1);
                    for _ in 0..INTERACTIONS {
                        sim.step(&mut rng);
                    }
                    black_box(sim.counts()[0])
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("countwise_generic", format!("n{n}_k{k}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let proto = UndecidedStateDynamics::new(k);
                    let mut sim = CountSimulator::new(proto, &config.to_count_config());
                    let mut rng = SimRng::new(1);
                    for _ in 0..INTERACTIONS {
                        sim.step(&mut rng);
                    }
                    black_box(sim.counts()[0])
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("sequential_usd", format!("n{n}_k{k}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut sim = SequentialUsd::new(config);
                    let mut rng = SimRng::new(1);
                    for _ in 0..INTERACTIONS {
                        sim.step(&mut rng);
                    }
                    black_box(sim.undecided())
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("skip_ahead_usd", format!("n{n}_k{k}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut sim = SkipAheadUsd::new(config);
                    let mut rng = SimRng::new(1);
                    while sim.interactions() < INTERACTIONS {
                        if sim.step_effective(&mut rng).is_none() {
                            break;
                        }
                    }
                    black_box(sim.undecided())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
