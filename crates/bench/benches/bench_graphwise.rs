//! Graphwise vs agentwise throughput across topology regimes.
//!
//! Both engines simulate the identical graph-restricted chain; what differs
//! is the cost model. The agentwise engine pays O(1) per **scheduled**
//! interaction; the graphwise engine steps scheduled interactions at the
//! same O(1) while the configuration is effective-dominated and escalates
//! to its Fenwick skipper (O(d log m) per **effective** interaction) once
//! no-ops dominate. The benches therefore measure *scheduled interactions
//! per second* in the two regimes:
//!
//! * `expander` — USD bulk phase on a random 8-regular graph: effective
//!   fraction 30–50%, nothing to skip, the engines should be comparable;
//! * `noop-dominated` — USD endgame on a cycle (a lone undecided pocket in
//!   an otherwise-converged ring): activity fraction ~1/m, where the
//!   graphwise skipper advances the clock geometrically and the agentwise
//!   engine grinds through every scheduled no-op. This is the regime behind
//!   the order-of-magnitude wins on low-conductance topology sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pop_proto::{
    AgentSimulator, BatchGraphSimulator, GraphScheduler, GraphSimulator, Simulator, TopologyFamily,
};
use sim_stats::rng::SimRng;
use std::hint::black_box;
use usd_core::protocol::UndecidedStateDynamics;

/// Per-agent states for the frontier instance: two opinion domains filling
/// half the ring each. Only the two domain boundaries are active (W = 4 of
/// 2m orientations), and boundary random walks persist for ~n² parallel
/// time — the stable no-op-dominated configuration low-conductance
/// topology runs spend almost their whole schedule in.
fn frontier_states(n: usize) -> Vec<usize> {
    let mut states = vec![0usize; n];
    for s in states.iter_mut().skip(n / 2) {
        *s = 1;
    }
    states
}

/// Drive a simulator through `target` scheduled interactions (or silence).
fn drive<S: Simulator>(sim: &mut S, rng: &mut SimRng, target: u64) -> u64 {
    loop {
        let done = sim.interactions();
        if done >= target || sim.is_silent() {
            return done;
        }
        if sim.advance(rng, target - done) == 0 {
            return done;
        }
    }
}

fn bench_expander(c: &mut Criterion) {
    let n = 100_000usize;
    let graph = TopologyFamily::Regular { d: 8 }.build(n, 7);
    let config = usd_bench::bench_config(n as u64, 2).to_count_config();
    // Well short of stabilization (~20n scheduled for this family), so the
    // workload is the same bulk-phase dynamics on both engines.
    let target = 1_000_000u64;

    let mut group = c.benchmark_group("graphwise_expander");
    group.throughput(Throughput::Elements(target));
    group.bench_with_input(BenchmarkId::new("agent", "reg8-1e5"), &graph, |b, g| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            let states = pop_proto::simulator::shuffled_layout(&config, &mut rng);
            let mut sim = AgentSimulator::new(
                UndecidedStateDynamics::new(2),
                GraphScheduler::new(g.clone()),
                states,
            );
            black_box(drive(&mut sim, &mut rng, target))
        })
    });
    group.bench_with_input(BenchmarkId::new("graph", "reg8-1e5"), &graph, |b, g| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            let states = pop_proto::simulator::shuffled_layout(&config, &mut rng);
            let mut sim = GraphSimulator::new(UndecidedStateDynamics::new(2), g, states);
            black_box(drive(&mut sim, &mut rng, target))
        })
    });
    group.bench_with_input(
        BenchmarkId::new("batchgraph", "reg8-1e5"),
        &graph,
        |b, g| {
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let states = pop_proto::simulator::shuffled_layout(&config, &mut rng);
                let mut sim = BatchGraphSimulator::new(UndecidedStateDynamics::new(2), g, states);
                black_box(drive(&mut sim, &mut rng, target))
            })
        },
    );
    group.finish();
}

fn bench_noop_dominated(c: &mut Criterion) {
    let n = 65_536usize;
    let graph = TopologyFamily::Cycle.build(n, 0);
    let target = 20_000_000u64;

    let mut group = c.benchmark_group("graphwise_noop_dominated");
    group.throughput(Throughput::Elements(target));
    group.bench_with_input(
        BenchmarkId::new("agent", "cycle-frontier"),
        &graph,
        |b, g| {
            b.iter(|| {
                let mut rng = SimRng::new(2);
                let mut sim = AgentSimulator::new(
                    UndecidedStateDynamics::new(2),
                    GraphScheduler::new(g.clone()),
                    frontier_states(n),
                );
                black_box(drive(&mut sim, &mut rng, target))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("graph", "cycle-frontier"),
        &graph,
        |b, g| {
            b.iter(|| {
                let mut rng = SimRng::new(2);
                let mut sim =
                    GraphSimulator::new(UndecidedStateDynamics::new(2), g, frontier_states(n));
                black_box(drive(&mut sim, &mut rng, target))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batchgraph", "cycle-frontier"),
        &graph,
        |b, g| {
            b.iter(|| {
                let mut rng = SimRng::new(2);
                let mut sim =
                    BatchGraphSimulator::new(UndecidedStateDynamics::new(2), g, frontier_states(n));
                black_box(drive(&mut sim, &mut rng, target))
            })
        },
    );
    group.finish();
}

/// Sparse-phase *effective-event* throughput: full stabilization from the
/// frontier configuration, so every measured event goes through the shared
/// block-leaping skipper (deferred coalesced Fenwick updates, cached-log
/// geometric skips). This is the hot path PR 5 batched — the gated
/// `bench_backends` rows measure the same regime at n = 4096; this
/// micro-bench keeps a small instance in the Criterion suite for quick
/// A/B runs.
fn bench_sparse_stabilize(c: &mut Criterion) {
    let n = 512usize;
    let graph = TopologyFamily::Cycle.build(n, 0);

    let mut group = c.benchmark_group("graphwise_sparse_stabilize");
    group.bench_with_input(
        BenchmarkId::new("graph", "cycle-frontier-512"),
        &graph,
        |b, g| {
            b.iter(|| {
                let mut rng = SimRng::new(3);
                let mut sim =
                    GraphSimulator::new(UndecidedStateDynamics::new(2), g, frontier_states(n));
                sim.run_to_silence(&mut rng, u64::MAX / 2);
                black_box(sim.effective_interactions())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batchgraph", "cycle-frontier-512"),
        &graph,
        |b, g| {
            b.iter(|| {
                let mut rng = SimRng::new(3);
                let mut sim =
                    BatchGraphSimulator::new(UndecidedStateDynamics::new(2), g, frontier_states(n));
                sim.run_to_silence(&mut rng, u64::MAX / 2);
                black_box(sim.effective_interactions())
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_expander,
    bench_noop_dominated,
    bench_sparse_stabilize
);
criterion_main!(benches);
