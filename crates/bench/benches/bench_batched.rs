//! Backend throughput across population scales: agent vs count vs batch.
//!
//! Measures interactions per second on the same Figure-1 USD instance at
//! n ∈ {10⁴, 10⁶, 10⁸}. The agent and count backends pay O(1)–O(log k)
//! *per interaction*, so their throughput is flat in n; the batch backend
//! leaps ~√n interactions per O(k²) block, so its throughput *grows* with
//! n — the headline claim of the batched simulation engine. The agentwise
//! backend sits out n = 10⁸ (it would allocate 8 × 10⁸ bytes of per-agent
//! state for a throughput number that is flat in n anyway).
//!
//! Each measured iteration simulates a fixed slice of interactions from a
//! fresh instance (well short of stabilization, so the workload is the
//! same mixing-phase dynamics on every backend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pop_proto::{AgentSimulator, BatchSimulator, CliqueScheduler, CountSimulator, Simulator};
use sim_stats::rng::SimRng;
use std::hint::black_box;
use usd_bench::bench_config;
use usd_core::protocol::UndecidedStateDynamics;
use usd_core::UsdConfig;

const K: usize = 2;

/// Interactions to simulate per measured iteration, scaled so small-n
/// cells stay sub-second on the slow backends and comfortably short of
/// stabilization (~20n interactions for this instance family).
fn workload(n: u64) -> u64 {
    (n * 5).min(20_000_000)
}

/// Drive a backend through `target` interactions via the trait. Stops at
/// silence instead of letting the batch backend free-charge the remaining
/// horizon as no-ops (which would inflate its throughput cell relative to
/// the backends that honestly step them); the workloads below are sized to
/// stay short of stabilization, so this is a guard, not the common path.
fn drive<S: Simulator>(mut sim: S, rng: &mut SimRng, target: u64) -> u64 {
    loop {
        let done = sim.interactions();
        if done >= target || sim.is_silent() {
            return done;
        }
        if sim.advance(rng, target - done) == 0 {
            return done;
        }
    }
}

fn backend_bench(c: &mut Criterion, name: &str, n: u64, config: &UsdConfig) {
    let mut group = c.benchmark_group("backend_throughput");
    let target = workload(n);
    group.throughput(Throughput::Elements(target));

    if n <= 1_000_000 {
        group.bench_with_input(BenchmarkId::new("agent", name), config, |b, config| {
            b.iter(|| {
                let sim = AgentSimulator::from_config(
                    UndecidedStateDynamics::new(K),
                    CliqueScheduler::new(n as usize),
                    &config.to_count_config(),
                );
                black_box(drive(sim, &mut SimRng::new(1), target))
            })
        });
    }

    group.bench_with_input(BenchmarkId::new("count", name), config, |b, config| {
        b.iter(|| {
            let sim =
                CountSimulator::new(UndecidedStateDynamics::new(K), &config.to_count_config());
            black_box(drive(sim, &mut SimRng::new(2), target))
        })
    });

    group.bench_with_input(BenchmarkId::new("batch", name), config, |b, config| {
        b.iter(|| {
            let sim =
                BatchSimulator::new(UndecidedStateDynamics::new(K), &config.to_count_config());
            black_box(drive(sim, &mut SimRng::new(3), target))
        })
    });

    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    for n in [10_000u64, 1_000_000, 100_000_000] {
        let config = bench_config(n, K);
        backend_bench(c, &format!("n1e{}", (n as f64).log10() as u32), n, &config);
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
