//! Baseline-protocol throughput: what one synchronous round (Gossip
//! models) or a fixed block of interactions (PP models) costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pop_proto::{CountConfig, CountSimulator};
use sim_stats::rng::SimRng;
use std::hint::black_box;
use usd_baselines::{FourStateMajority, GossipUsd, SynchronizedUsd, ThreeMajority, VoterDynamics};
use usd_bench::bench_config;

const INTERACTIONS: u64 = 100_000;
const ROUNDS: u64 = 10;

fn bench_pp_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_pp_interactions");
    group.throughput(Throughput::Elements(INTERACTIONS));
    let n = 10_000u64;

    group.bench_function(BenchmarkId::new("four_state", n), |b| {
        b.iter(|| {
            let init = CountConfig::from_counts(vec![n / 2 + 100, n / 2 - 100, 0, 0]);
            let mut sim = CountSimulator::new(FourStateMajority, &init);
            let mut rng = SimRng::new(1);
            for _ in 0..INTERACTIONS {
                sim.step(&mut rng);
            }
            black_box(sim.counts()[0])
        })
    });

    group.bench_function(BenchmarkId::new("voter", n), |b| {
        b.iter(|| {
            let init = CountConfig::from_counts(vec![n / 2, n / 2]);
            let mut sim = CountSimulator::new(VoterDynamics::new(2), &init);
            let mut rng = SimRng::new(1);
            for _ in 0..INTERACTIONS {
                sim.step(&mut rng);
            }
            black_box(sim.counts()[0])
        })
    });
    group.finish();
}

fn bench_gossip_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_gossip_rounds");
    let n = 10_000u64;
    let k = 8usize;
    let config = bench_config(n, k);
    group.throughput(Throughput::Elements(ROUNDS * n));

    group.bench_function(BenchmarkId::new("gossip_usd", format!("n{n}_k{k}")), |b| {
        b.iter(|| {
            let mut sim = GossipUsd::new(&config);
            let mut rng = SimRng::new(1);
            for _ in 0..ROUNDS {
                sim.round(&mut rng);
            }
            black_box(sim.config().u())
        })
    });

    group.bench_function(
        BenchmarkId::new("three_majority", format!("n{n}_k{k}")),
        |b| {
            b.iter(|| {
                let mut sim = ThreeMajority::new(&config);
                let mut rng = SimRng::new(1);
                for _ in 0..ROUNDS {
                    sim.round(&mut rng);
                }
                black_box(sim.config().x(0))
            })
        },
    );

    group.bench_function(
        BenchmarkId::new("synchronized_usd", format!("n{n}_k{k}")),
        |b| {
            b.iter(|| {
                let mut sim = SynchronizedUsd::new(&config);
                let mut rng = SimRng::new(1);
                for _ in 0..ROUNDS {
                    sim.round(&mut rng);
                }
                black_box(sim.config().u())
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_pp_baselines, bench_gossip_baselines);
criterion_main!(benches);
