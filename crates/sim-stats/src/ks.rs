//! Two-sample Kolmogorov–Smirnov statistics.
//!
//! The simulator-equivalence experiment (E12) needs a principled
//! distributional comparison between engines' stabilization-time samples;
//! alongside the χ² histogram comparison we provide the two-sample KS
//! statistic and its asymptotic critical values.

/// The two-sample KS statistic D = sup_x |F₁(x) − F₂(x)|.
///
/// Panics if either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS of empty sample");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).expect("NaN in KS input"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("NaN in KS input"));
    let (n, m) = (xs.len(), ys.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d = 0.0f64;
    while i < n && j < m {
        let x = xs[i].min(ys[j]);
        while i < n && xs[i] <= x {
            i += 1;
        }
        while j < m && ys[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n as f64;
        let f2 = j as f64 / m as f64;
        d = d.max((f1 - f2).abs());
    }
    d
}

/// Asymptotic two-sample KS critical value at significance `alpha`
/// (two-sided): c(α)·√((n+m)/(n·m)) with
/// c(α) = √(−ln(α/2)/2). Reject equality when D exceeds this.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(n > 0 && m > 0, "need nonempty samples");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Convenience: whether two samples are distinguishable at level `alpha`.
pub fn ks_reject(a: &[f64], b: &[f64], alpha: f64) -> bool {
    ks_statistic(a, b) > ks_critical_value(a.len(), b.len(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [1.0, 5.0, 3.0, 9.0, 2.0];
        let b = [2.0, 4.0, 8.0];
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_small_case() {
        // a = {1, 3}, b = {2}: after 1, F1=1/2, F2=0 (gap 1/2);
        // after 2, F1=1/2, F2=1 (gap 1/2); after 3, gap 0. D = 1/2.
        assert!((ks_statistic(&[1.0, 3.0], &[2.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_rarely_rejected() {
        let mut rng = SimRng::new(1);
        let mut rejections = 0;
        let trials = 200;
        for _ in 0..trials {
            let a: Vec<f64> = (0..80).map(|_| rng.f64()).collect();
            let b: Vec<f64> = (0..80).map(|_| rng.f64()).collect();
            if ks_reject(&a, &b, 0.01) {
                rejections += 1;
            }
        }
        // Nominal level 1%; allow up to 4%.
        assert!(rejections <= 8, "{rejections}/{trials} false rejections");
    }

    #[test]
    fn shifted_distribution_reliably_rejected() {
        let mut rng = SimRng::new(2);
        let a: Vec<f64> = (0..300).map(|_| rng.f64()).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.f64() + 0.4).collect();
        assert!(ks_reject(&a, &b, 0.01));
    }

    #[test]
    fn critical_value_shrinks_with_samples() {
        let small = ks_critical_value(20, 20, 0.05);
        let large = ks_critical_value(2_000, 2_000, 0.05);
        assert!(large < small);
        assert!(small < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        ks_statistic(&[], &[1.0]);
    }
}
