//! Trajectory containers for simulation traces.
//!
//! A [`TimeSeries`] holds one shared time axis (e.g. parallel time) and any
//! number of named value [`Series`]; the figure-regeneration binaries build
//! one per run and hand it to [`plot`](crate::plot) and the CSV writer.

use std::fmt::Write as _;

/// One named series of values aligned with a [`TimeSeries`] time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name (used as plot legend and CSV header).
    pub name: String,
    /// Values, one per time point.
    pub values: Vec<f64>,
}

impl Series {
    /// Create a named series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// A set of series sharing one time axis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// The shared time axis.
    pub time: Vec<f64>,
    /// The value series (each must match `time.len()`; enforced on push).
    pub series: Vec<Series>,
}

impl TimeSeries {
    /// An empty time series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Create with a time axis and no series yet.
    pub fn with_time(time: Vec<f64>) -> Self {
        TimeSeries {
            time,
            series: Vec::new(),
        }
    }

    /// Add a series; panics if its length does not match the time axis.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        assert_eq!(
            series.values.len(),
            self.time.len(),
            "series '{}' length {} does not match time axis length {}",
            series.name,
            series.values.len(),
            self.time.len()
        );
        self.series.push(series);
        self
    }

    /// Look up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the time axis is empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Keep at most `max_points` points by uniform index striding (always
    /// retains the first and last point). Returns a new `TimeSeries`.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        assert!(max_points >= 2, "need at least two points");
        if self.time.len() <= max_points {
            return self.clone();
        }
        let last = self.time.len() - 1;
        let mut idx: Vec<usize> = (0..max_points)
            .map(|i| i * last / (max_points - 1))
            .collect();
        idx.dedup();
        let pick = |v: &[f64]| idx.iter().map(|&i| v[i]).collect::<Vec<_>>();
        TimeSeries {
            time: pick(&self.time),
            series: self
                .series
                .iter()
                .map(|s| Series::new(s.name.clone(), pick(&s.values)))
                .collect(),
        }
    }

    /// Render as CSV text: header `time,<name>,...` then one row per point.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("time");
        for s in &self.series {
            // Quote names containing commas to keep the CSV parseable.
            if s.name.contains(',') {
                let _ = write!(out, ",\"{}\"", s.name.replace('"', "\"\""));
            } else {
                let _ = write!(out, ",{}", s.name);
            }
        }
        out.push('\n');
        for (i, &t) in self.time.iter().enumerate() {
            let _ = write!(out, "{t}");
            for s in &self.series {
                let _ = write!(out, ",{}", s.values[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// A one-line unicode sparkline of a sample (block characters ▁…█).
/// Handy for quick terminal inspection of a trajectory.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let level = ((v - min) / span * 7.0).round() as usize;
            BLOCKS[level.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ts() -> TimeSeries {
        let mut ts = TimeSeries::with_time((0..10).map(|i| i as f64).collect());
        ts.push_series(Series::new("a", (0..10).map(|i| (i * i) as f64).collect()));
        ts.push_series(Series::new("b", vec![1.0; 10]));
        ts
    }

    #[test]
    fn push_and_get() {
        let ts = sample_ts();
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.get("a").unwrap().values[3], 9.0);
        assert!(ts.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_series_panics() {
        let mut ts = TimeSeries::with_time(vec![0.0, 1.0]);
        ts.push_series(Series::new("bad", vec![1.0]));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let ts = sample_ts();
        let d = ts.downsample(4);
        assert!(d.len() <= 4);
        assert_eq!(d.time[0], 0.0);
        assert_eq!(*d.time.last().unwrap(), 9.0);
        assert_eq!(d.get("a").unwrap().values.len(), d.len());
    }

    #[test]
    fn downsample_noop_when_small() {
        let ts = sample_ts();
        let d = ts.downsample(100);
        assert_eq!(d, ts);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let ts = sample_ts();
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,0,1");
    }

    #[test]
    fn csv_quotes_commas_in_names() {
        let mut ts = TimeSeries::with_time(vec![0.0]);
        ts.push_series(Series::new("x, scaled", vec![2.0]));
        assert!(ts.to_csv().starts_with("time,\"x, scaled\""));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_constant_input() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }
}
