//! Streaming and batch summary statistics.
//!
//! [`Summary`] accumulates mean/variance/extrema in one pass using Welford's
//! numerically stable recurrence, which the sweep runner uses to aggregate
//! stabilization times across seeds without storing every sample. Batch
//! helpers ([`quantile`], [`median`]) operate on sample vectors.

/// One-pass summary accumulator (count, mean, variance, min, max) using
/// Welford's algorithm.
///
/// ```
/// use sim_stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice in one call.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction), using
    /// Chan et al.'s pairwise update.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n−1 denominator); 0 when n < 2.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (n denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observed value (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// z-score (e.g. 1.96 for 95%). Returns `(lo, hi)`.
    pub fn mean_ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.stderr();
        (self.mean() - half, self.mean() + half)
    }
}

/// Empirical quantile (linear interpolation between order statistics, the
/// "type 7" estimator used by R and NumPy). `q` is clamped to `[0, 1]`.
///
/// Panics on an empty slice.
pub fn quantile(sorted_or_not: &[f64], q: f64) -> f64 {
    assert!(!sorted_or_not.is_empty(), "quantile of empty sample");
    let mut xs = sorted_or_not.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&xs, q)
}

/// Like [`quantile`] but assumes `xs` is already ascending (not checked).
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let h = q * (xs.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo])
    }
}

/// Median convenience wrapper around [`quantile`].
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn welford_matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(123);
        let mut sa = Summary::of(a);
        let sb = Summary::of(b);
        sa.merge(&sb);
        let s = Summary::of(&xs);
        assert_eq!(sa.count(), s.count());
        assert!((sa.mean() - s.mean()).abs() < 1e-10);
        assert!((sa.sample_variance() - s.sample_variance()).abs() < 1e-8);
        assert_eq!(sa.min(), s.min());
        assert_eq!(sa.max(), s.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        let ys = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&ys, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ci_narrows_with_samples() {
        let mut small = Summary::new();
        let mut large = Summary::new();
        for i in 0..10 {
            small.add((i % 5) as f64);
        }
        for i in 0..1000 {
            large.add((i % 5) as f64);
        }
        let (lo_s, hi_s) = small.mean_ci(1.96);
        let (lo_l, hi_l) = large.mean_ci(1.96);
        assert!(hi_s - lo_s > hi_l - lo_l);
    }
}
