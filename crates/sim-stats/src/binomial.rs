//! Exact binomial and hypergeometric samplers for the batch simulator.
//!
//! The batch-leaping simulator in `pop-proto` advances thousands of
//! interactions per step by sampling *how many* agents of each state take
//! part, which reduces to repeated binomial / hypergeometric draws with
//! trial counts in the millions. The O(trials) urn samplers in
//! [`multinomial`](crate::multinomial) are exact but linear; the samplers
//! here are exact in distribution (up to `f64` evaluation of log-gamma,
//! ~1e-13 relative) at O(1)–O(√trials) cost:
//!
//! * [`sample_binomial`] — inverse-CDF chop-down for small `n·p`, and a
//!   BTPE-style transformed rejection (Hörmann's BTRS) for large `n·p`;
//! * [`sample_hypergeometric_fast`] — inverse CDF walked outward from the
//!   mode, O(standard deviation) expected steps;
//! * [`ln_gamma`] / [`ln_factorial`] / [`ln_binomial`] — the log-combinatorics
//!   primitives behind both (Lanczos approximation, |error| < 1e-13).

use crate::rng::SimRng;

/// Lanczos coefficients (g = 7, 9 terms) for [`ln_gamma`].
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Lanczos approximation with g = 7; absolute error below 1e-13 over the
/// range the samplers use. Panics on non-positive input.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` via [`ln_gamma`], with a small-n lookup table for speed and
/// exactness where it matters most.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 128;
    // Built once per thread; ln of exact factorials up to 127!.
    thread_local! {
        static TABLE: [f64; TABLE_LEN] = {
            let mut t = [0.0f64; TABLE_LEN];
            let mut acc = 0.0f64;
            for (i, slot) in t.iter_mut().enumerate().skip(1) {
                acc += (i as f64).ln();
                *slot = acc;
            }
            t
        };
    }
    if (n as usize) < TABLE_LEN {
        TABLE.with(|t| t[n as usize])
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`. Panics if `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial needs k <= n, got C({n},{k})");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Sample `X ~ Binomial(n, p)` exactly.
///
/// Strategy selection:
/// * `p` is symmetrized to ≤ ½ (sampling `n − X'` for `p' = 1 − p`);
/// * `n·p < 30`: inverse-CDF chop-down from zero (expected O(n·p) steps);
/// * otherwise: BTPE-style transformed rejection (Hörmann's BTRS), O(1)
///   expected RNG draws regardless of `n`.
pub fn sample_binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "binomial needs p in [0,1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - sample_binomial(rng, n, 1.0 - p);
    }
    let np = n as f64 * p;
    if np < 30.0 {
        binomial_inverse_cdf(rng, n, p)
    } else {
        binomial_btrs(rng, n, p)
    }
}

/// Inverse-CDF chop-down: walk the pmf from 0 using the recurrence
/// `P(x+1)/P(x) = (n−x)/(x+1) · p/(1−p)`.
fn binomial_inverse_cdf(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    // P(0) = q^n; for n·p < 30 and p ≤ ½ this does not underflow until
    // n ~ 1e4 / p, and the loop guard below keeps us safe regardless.
    let mut pmf = q.powf(n as f64);
    let mut cdf = pmf;
    let mut x = 0u64;
    let u = rng.f64();
    while cdf < u && x < n {
        pmf *= s * (n - x) as f64 / (x + 1) as f64;
        cdf += pmf;
        x += 1;
        if pmf < 1e-300 && x as f64 > n as f64 * p * 8.0 {
            break; // numerical tail; mass this deep is < 1e-12
        }
    }
    x
}

/// Hörmann's BTRS transformed-rejection binomial sampler (valid for
/// `n·min(p, 1−p) ≥ 10`, called with p ≤ ½ and n·p ≥ 30).
fn binomial_btrs(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let spq = (nf * p * q).sqrt();
    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let alpha = (2.83 + 5.1 / b) * spq;
    let lpq = (p / q).ln();
    let m = ((nf + 1.0) * p).floor(); // mode
    let h = ln_factorial(m as u64) + ln_factorial(n - m as u64);
    loop {
        let u = rng.f64() - 0.5;
        let v = rng.f64();
        let us = 0.5 - u.abs();
        let kf = (2.0 * a / us + b) * u + c;
        if kf < 0.0 || kf >= nf + 1.0 {
            continue;
        }
        let k = kf.floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        // Acceptance test against the exact (log) pmf.
        let v = (v * alpha / (a / (us * us) + b)).ln();
        let accept_bound = h - ln_factorial(k as u64) - ln_factorial(n - k as u64) + (k - m) * lpq;
        if v <= accept_bound {
            return k as u64;
        }
    }
}

/// Sample `X ~ Hypergeometric(total, successes, draws)` — the number of
/// successes when drawing `draws` items without replacement — in
/// O(standard deviation) expected time, independent of `draws`.
///
/// Inverse CDF walked outward from the mode: the pmf at the mode is
/// computed once from [`ln_binomial`], neighbouring values follow from the
/// O(1) pmf recurrence, and terms are consumed in decreasing-probability
/// order (mode, mode+1, mode−1, …) until the uniform draw is covered.
///
/// Agrees in distribution with the O(draws) urn sampler
/// [`sample_hypergeometric`](crate::multinomial::sample_hypergeometric)
/// (verified in the unit tests). Panics on an invalid parameter triple.
pub fn sample_hypergeometric_fast(rng: &mut SimRng, total: u64, successes: u64, draws: u64) -> u64 {
    assert!(draws <= total, "cannot draw more than the population");
    assert!(successes <= total, "successes exceed population");
    // Degenerate and tiny cases: the urn walk is both exact and fastest.
    if draws == 0 || successes == 0 {
        return 0;
    }
    if successes == total {
        return draws;
    }
    if draws <= 24 {
        return crate::multinomial::sample_hypergeometric(rng, total, successes, draws);
    }
    // Symmetry reductions keep the support small: X ~ H(N, K, m) satisfies
    // X =d m − H(N, N−K, m).
    if 2 * successes > total {
        return draws - sample_hypergeometric_fast(rng, total, total - successes, draws);
    }
    // And H(N, K, m) =d H(N, m, K) (successes/draws exchange).
    if draws > successes {
        return sample_hypergeometric_fast(rng, total, draws, successes);
    }

    let (nn, kk, mm) = (total, successes, draws);
    let lo = (kk + mm).saturating_sub(nn); // support minimum
    let hi = kk.min(mm); // support maximum
    let mode = (((mm + 1) as f64) * ((kk + 1) as f64) / ((nn + 2) as f64)).floor() as u64;
    let mode = mode.clamp(lo, hi);
    let ln_pmf_mode = ln_binomial(kk, mode) + ln_binomial(nn - kk, mm - mode) - ln_binomial(nn, mm);
    let pmf_mode = ln_pmf_mode.exp();

    // Ratio P(x+1)/P(x) = (K−x)(m−x) / ((x+1)(N−K−m+x+1)).
    let up_ratio = |x: u64| -> f64 {
        ((kk - x) as f64 * (mm - x) as f64) / ((x + 1) as f64 * (nn - kk - mm + x + 1) as f64)
    };

    let u = rng.f64();
    let mut cum = pmf_mode;
    if u < cum {
        return mode;
    }
    let mut up_x = mode;
    let mut up_pmf = pmf_mode;
    let mut down_x = mode;
    let mut down_pmf = pmf_mode;
    loop {
        let mut advanced = false;
        if up_x < hi {
            up_pmf *= up_ratio(up_x);
            up_x += 1;
            cum += up_pmf;
            advanced = true;
            if u < cum {
                return up_x;
            }
        }
        if down_x > lo {
            down_pmf /= up_ratio(down_x - 1);
            down_x -= 1;
            cum += down_pmf;
            advanced = true;
            if u < cum {
                return down_x;
            }
        }
        if !advanced {
            // Floating-point residue: the support is exhausted but `cum`
            // fell short of u by ~1e-15. Return the likeliest edge.
            return if up_pmf >= down_pmf { up_x } else { down_x };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multinomial::sample_hypergeometric;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Large argument: Stirling regime consistency Γ(x+1) = xΓ(x).
        for &x in &[10.0, 1e3, 1e6, 1e9] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0), "x={x}");
        }
    }

    #[test]
    fn ln_factorial_table_and_gamma_agree() {
        let mut acc = 0.0;
        for n in 1..200u64 {
            acc += (n as f64).ln();
            assert!(
                (ln_factorial(n) - acc).abs() < 1e-9 * acc.max(1.0),
                "n={n}: {} vs {acc}",
                ln_factorial(n)
            );
        }
    }

    #[test]
    fn ln_binomial_symmetry_and_pascal() {
        assert!((ln_binomial(10, 3) - 120f64.ln()).abs() < 1e-10);
        for n in 1..40u64 {
            for k in 0..=n {
                let a = ln_binomial(n, k);
                let b = ln_binomial(n, n - k);
                assert!((a - b).abs() < 1e-10, "C({n},{k})");
            }
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SimRng::new(1);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        for _ in 0..100 {
            let x = sample_binomial(&mut rng, 1, 0.5);
            assert!(x <= 1);
        }
    }

    #[test]
    fn binomial_moments_small_np() {
        // Inverse-CDF path: n·p = 8.
        let mut rng = SimRng::new(2);
        let (n, p) = (80u64, 0.1);
        let reps = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p) as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sq / reps as f64 - mean * mean;
        let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - em).abs() < 0.05, "mean {mean} vs {em}");
        assert!((var - ev).abs() < 0.15, "var {var} vs {ev}");
    }

    #[test]
    fn binomial_moments_btrs_path() {
        // Rejection path: n·p = 5000.
        let mut rng = SimRng::new(3);
        let (n, p) = (100_000u64, 0.05);
        let reps = 40_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..reps {
            let x = sample_binomial(&mut rng, n, p) as f64;
            assert!(x <= n as f64);
            sum += x;
            sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sq / reps as f64 - mean * mean;
        let (em, ev) = (5_000.0, 4_750.0);
        assert!((mean - em).abs() < em * 0.005, "mean {mean} vs {em}");
        assert!((var - ev).abs() < ev * 0.05, "var {var} vs {ev}");
    }

    #[test]
    fn binomial_high_p_symmetrizes() {
        let mut rng = SimRng::new(4);
        let (n, p) = (10_000u64, 0.93);
        let reps = 20_000;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += sample_binomial(&mut rng, n, p) as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean - 9_300.0).abs() < 9_300.0 * 0.005, "mean {mean}");
    }

    #[test]
    fn binomial_btrs_matches_inverse_cdf_distribution() {
        // The two paths must agree in distribution; compare the empirical
        // CDFs at n·p just above/below the crossover with a generous bound.
        let (n, p) = (600u64, 0.0499);
        let reps = 60_000;
        let mut a = Vec::with_capacity(reps);
        let mut b = Vec::with_capacity(reps);
        let mut rng = SimRng::new(5);
        for _ in 0..reps {
            a.push(binomial_inverse_cdf(&mut rng, n, p) as f64);
            b.push(binomial_btrs(&mut rng, n, p) as f64);
        }
        let d = crate::ks::ks_statistic(&a, &b);
        let crit = crate::ks::ks_critical_value(reps, reps, 0.001);
        assert!(d < crit, "KS {d} >= crit {crit}");
    }

    #[test]
    fn hypergeometric_fast_edge_cases() {
        let mut rng = SimRng::new(6);
        assert_eq!(sample_hypergeometric_fast(&mut rng, 10, 10, 5), 5);
        assert_eq!(sample_hypergeometric_fast(&mut rng, 10, 0, 5), 0);
        assert_eq!(sample_hypergeometric_fast(&mut rng, 10, 3, 0), 0);
        assert_eq!(sample_hypergeometric_fast(&mut rng, 10, 3, 10), 3);
        // Support bounds always hold (lo = 80 + 60 − 100 = 40, hi = 60).
        for _ in 0..2_000 {
            let x = sample_hypergeometric_fast(&mut rng, 100, 80, 60);
            assert!(x <= 60, "x={x}");
            assert!(x >= 40, "x={x}");
        }
    }

    #[test]
    fn hypergeometric_fast_moments() {
        let mut rng = SimRng::new(7);
        let (nn, kk, mm) = (1_000_000u64, 300_000u64, 50_000u64);
        let reps = 4_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..reps {
            let x = sample_hypergeometric_fast(&mut rng, nn, kk, mm) as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sq / reps as f64 - mean * mean;
        let p = kk as f64 / nn as f64;
        let em = mm as f64 * p;
        let ev = mm as f64 * p * (1.0 - p) * (nn - mm) as f64 / (nn - 1) as f64;
        assert!((mean - em).abs() < em * 0.002, "mean {mean} vs {em}");
        assert!((var - ev).abs() < ev * 0.1, "var {var} vs {ev}");
    }

    #[test]
    fn hypergeometric_fast_matches_urn_distribution() {
        let (nn, kk, mm) = (500u64, 200u64, 120u64);
        let reps = 50_000;
        let mut fast = Vec::with_capacity(reps);
        let mut urn = Vec::with_capacity(reps);
        let mut rng = SimRng::new(8);
        for _ in 0..reps {
            fast.push(sample_hypergeometric_fast(&mut rng, nn, kk, mm) as f64);
            urn.push(sample_hypergeometric(&mut rng, nn, kk, mm) as f64);
        }
        let d = crate::ks::ks_statistic(&fast, &urn);
        let crit = crate::ks::ks_critical_value(reps, reps, 0.001);
        assert!(d < crit, "KS {d} >= crit {crit}");
    }
}
