//! Plain-text table formatting for experiment reports.
//!
//! Each experiment binary prints one or more tables in the same "rows the
//! paper reports" spirit; this builder handles column alignment, headers and
//! separators so the binaries stay focused on content.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (default for text).
    Left,
    /// Right-aligned (default for numbers).
    Right,
}

/// A simple aligned text table.
///
/// ```
/// use sim_stats::TextTable;
/// let mut t = TextTable::new(&["n", "k", "parallel time"]);
/// t.row(&["1000", "8", "41.2"]);
/// t.row(&["10000", "16", "103.9"]);
/// let s = t.to_string();
/// assert!(s.contains("parallel time"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers (numbers right-aligned
    /// by default; call [`TextTable::aligns`] to override).
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Right; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Override per-column alignment. Panics on length mismatch.
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row of already-formatted cells. Panics on length mismatch.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Append a row of owned cells (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as CSV (no alignment padding).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for ((cell, &w), align) in cells.iter().zip(&widths).zip(&self.aligns) {
                let pad = w - cell.chars().count();
                match align {
                    Align::Left => write!(f, " {}{} |", cell, " ".repeat(pad))?,
                    Align::Right => write!(f, " {}{} |", " ".repeat(pad), cell)?,
                }
            }
            writeln!(f)
        };
        render_row(&self.headers, f)?;
        write!(f, "|")?;
        for &w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(row, f)?;
        }
        Ok(())
    }
}

/// Format a float with a sensible number of significant digits for tables.
pub fn fmt_sig(v: f64, digits: usize) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let magnitude = v.abs().log10().floor() as i32;
    let decimals = (digits as i32 - 1 - magnitude).max(0) as usize;
    format!("{v:.decimals$}")
}

/// Format a large integer with thousands separators (`1_234_567`-style with
/// commas), as used in interaction-count columns.
pub fn fmt_thousands(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]).aligns(&[Align::Left, Align::Right]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
        assert!(lines[2].starts_with("| a "));
        assert!(lines[3].contains("12345"));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_length_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_output_escapes() {
        let mut t = TextTable::new(&["x", "note"]);
        t.row(&["1", "has, comma"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has, comma\""));
        assert!(csv.starts_with("x,note\n"));
    }

    #[test]
    fn fmt_sig_behaves() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        assert_eq!(fmt_sig(1234.5, 3), "1234");
        assert_eq!(fmt_sig(0.012345, 3), "0.0123");
        assert_eq!(fmt_sig(9.87654, 3), "9.88");
    }

    #[test]
    fn fmt_thousands_behaves() {
        assert_eq!(fmt_thousands(0), "0");
        assert_eq!(fmt_thousands(999), "999");
        assert_eq!(fmt_thousands(1_000), "1,000");
        assert_eq!(fmt_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
    }
}
