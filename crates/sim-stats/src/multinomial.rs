//! Categorical, multinomial, and hypergeometric sampling.
//!
//! These primitives back the initial-configuration builders (randomized
//! opinion assignments) and the Gossip-model round simulation. All samplers
//! take a [`SimRng`](crate::SimRng) and are exact (no normal approximations),
//! trading asymptotic speed for correctness — the hot simulation loop in
//! `usd-core` uses its own specialized sampling instead.

use crate::rng::SimRng;

/// Sample a category index proportional to `weights` (linear scan).
///
/// Panics if all weights are zero or any weight is negative.
pub fn categorical_index(rng: &mut SimRng, weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    assert!(total > 0, "categorical with all-zero weights");
    let mut r = rng.below(total);
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return i;
        }
        r -= w;
    }
    unreachable!("categorical scan exhausted weights");
}

/// Sample a category index proportional to float `weights` (linear scan).
///
/// Panics on negative weights or a non-positive total.
pub fn categorical_index_f64(rng: &mut SimRng, weights: &[f64]) -> usize {
    let mut total = 0.0;
    for &w in weights {
        assert!(w >= 0.0, "negative weight {w}");
        total += w;
    }
    assert!(total > 0.0, "categorical with non-positive total weight");
    let r = rng.f64() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if r < acc {
            return i;
        }
    }
    // Floating point edge: return last category with positive weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("positive total implies a positive weight")
}

/// Exact multinomial sample: distribute `n` trials over categories with the
/// given integer `weights`, by O(n) repeated categorical draws.
///
/// This is intentionally the simple exact algorithm: it is used only for
/// building initial configurations (once per run), never in the interaction
/// loop.
pub fn multinomial_counts(rng: &mut SimRng, n: u64, weights: &[u64]) -> Vec<u64> {
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..n {
        counts[categorical_index(rng, weights)] += 1;
    }
    counts
}

/// Exact hypergeometric sample: number of "successes" when drawing `draws`
/// items without replacement from a population of `total` items of which
/// `successes` are successes. O(draws) urn simulation.
///
/// Panics if `draws > total` or `successes > total`.
pub fn sample_hypergeometric(rng: &mut SimRng, total: u64, successes: u64, draws: u64) -> u64 {
    assert!(draws <= total, "cannot draw more than the population");
    assert!(successes <= total, "successes exceed population");
    let mut remaining_total = total;
    let mut remaining_succ = successes;
    let mut got = 0u64;
    for _ in 0..draws {
        if rng.below(remaining_total) < remaining_succ {
            got += 1;
            remaining_succ -= 1;
        }
        remaining_total -= 1;
    }
    got
}

/// Exact multinomial sample in O(k) binomial draws instead of O(n)
/// categorical draws: category `i` receives
/// `Binomial(remaining trials, wᵢ / remaining weight)` conditioned on the
/// earlier categories — the standard conditional-binomial decomposition.
///
/// Identical in distribution to [`multinomial_counts`]; use this for large
/// `n` (the batch simulator and bulk initial configurations).
pub fn multinomial_counts_fast(rng: &mut SimRng, n: u64, weights: &[u64]) -> Vec<u64> {
    let mut total: u64 = weights.iter().sum();
    assert!(total > 0, "multinomial with all-zero weights");
    let mut counts = vec![0u64; weights.len()];
    let mut remaining = n;
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if w == 0 {
            continue;
        }
        if w == total {
            counts[i] = remaining;
            break;
        }
        let draw = crate::binomial::sample_binomial(rng, remaining, w as f64 / total as f64);
        counts[i] = draw;
        remaining -= draw;
        total -= w;
    }
    counts
}

/// Exact multivariate hypergeometric sample: the per-category counts of
/// `draws` items drawn **without replacement** from a population with
/// `pop[i]` items of category `i`. O(k) hypergeometric draws via the chain
/// rule; each draw uses the O(sd) mode-centered sampler in
/// [`binomial`](crate::binomial).
///
/// Panics if `draws` exceeds the population size.
pub fn multivariate_hypergeometric(rng: &mut SimRng, pop: &[u64], draws: u64) -> Vec<u64> {
    let mut total: u64 = pop.iter().sum();
    assert!(draws <= total, "cannot draw more than the population");
    let mut counts = vec![0u64; pop.len()];
    let mut remaining = draws;
    for (i, &p) in pop.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if p == 0 {
            continue;
        }
        if p == total {
            counts[i] = remaining;
            break;
        }
        let draw = crate::binomial::sample_hypergeometric_fast(rng, total, p, remaining);
        counts[i] = draw;
        remaining -= draw;
        total -= p;
    }
    counts
}

/// Draw an ordered pair of **distinct** indices uniformly from `[0, n)`,
/// i.e. the population-protocol scheduler's choice of (initiator, responder).
///
/// Panics if `n < 2`.
pub fn distinct_pair(rng: &mut SimRng, n: u64) -> (u64, u64) {
    assert!(n >= 2, "need at least two agents for an interaction");
    let a = rng.below(n);
    let mut b = rng.below(n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SimRng::new(1);
        let weights = [1u64, 0, 3];
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[categorical_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_f64_respects_weights() {
        let mut rng = SimRng::new(2);
        let weights = [0.25, 0.75];
        let mut counts = [0u64; 2];
        for _ in 0..40_000 {
            counts[categorical_index_f64(&mut rng, &weights)] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn categorical_zero_weights_panics() {
        let mut rng = SimRng::new(3);
        categorical_index(&mut rng, &[0, 0]);
    }

    #[test]
    fn multinomial_conserves_total_and_matches_proportions() {
        let mut rng = SimRng::new(4);
        let counts = multinomial_counts(&mut rng, 60_000, &[1, 2, 3]);
        assert_eq!(counts.iter().sum::<u64>(), 60_000);
        assert!((counts[0] as f64 - 10_000.0).abs() < 600.0);
        assert!((counts[1] as f64 - 20_000.0).abs() < 800.0);
        assert!((counts[2] as f64 - 30_000.0).abs() < 900.0);
    }

    #[test]
    fn multinomial_fast_conserves_total_and_matches_proportions() {
        let mut rng = SimRng::new(14);
        let counts = multinomial_counts_fast(&mut rng, 600_000, &[1, 0, 2, 3]);
        assert_eq!(counts.iter().sum::<u64>(), 600_000);
        assert_eq!(counts[1], 0);
        assert!((counts[0] as f64 - 100_000.0).abs() < 2_500.0, "{counts:?}");
        assert!((counts[2] as f64 - 200_000.0).abs() < 3_500.0, "{counts:?}");
        assert!((counts[3] as f64 - 300_000.0).abs() < 4_000.0, "{counts:?}");
    }

    #[test]
    fn multinomial_fast_matches_slow_distribution() {
        // Compare first-category marginals of the two algorithms via KS.
        let reps = 30_000;
        let mut fast = Vec::with_capacity(reps);
        let mut slow = Vec::with_capacity(reps);
        let mut rng = SimRng::new(15);
        for _ in 0..reps {
            fast.push(multinomial_counts_fast(&mut rng, 200, &[2, 3, 5])[0] as f64);
            slow.push(multinomial_counts(&mut rng, 200, &[2, 3, 5])[0] as f64);
        }
        let d = crate::ks::ks_statistic(&fast, &slow);
        let crit = crate::ks::ks_critical_value(reps, reps, 0.001);
        assert!(d < crit, "KS {d} >= crit {crit}");
    }

    #[test]
    fn multivariate_hypergeometric_invariants() {
        let mut rng = SimRng::new(16);
        let pop = [500u64, 0, 1_200, 300];
        for _ in 0..200 {
            let c = multivariate_hypergeometric(&mut rng, &pop, 800);
            assert_eq!(c.iter().sum::<u64>(), 800);
            for (got, cap) in c.iter().zip(pop.iter()) {
                assert!(got <= cap, "{c:?} exceeds {pop:?}");
            }
        }
        // Drawing the whole population returns it exactly.
        let all = multivariate_hypergeometric(&mut rng, &pop, 2_000);
        assert_eq!(all, pop.to_vec());
    }

    #[test]
    fn multivariate_hypergeometric_marginal_mean() {
        let mut rng = SimRng::new(17);
        let pop = [30_000u64, 70_000];
        let reps = 5_000;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += multivariate_hypergeometric(&mut rng, &pop, 10_000)[0] as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean - 3_000.0).abs() < 3_000.0 * 0.01, "mean {mean}");
    }

    #[test]
    fn hypergeometric_mean_matches_theory() {
        let mut rng = SimRng::new(5);
        let (total, succ, draws) = (100u64, 30u64, 20u64);
        let reps = 20_000;
        let mut sum = 0u64;
        for _ in 0..reps {
            let got = sample_hypergeometric(&mut rng, total, succ, draws);
            assert!(got <= draws.min(succ));
            sum += got;
        }
        let mean = sum as f64 / reps as f64;
        let expect = draws as f64 * succ as f64 / total as f64; // 6.0
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn hypergeometric_degenerate_cases() {
        let mut rng = SimRng::new(6);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 10, 5), 5);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 0, 5), 0);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 3, 10), 3);
    }

    #[test]
    fn distinct_pair_is_distinct_and_uniform() {
        let mut rng = SimRng::new(7);
        let n = 5u64;
        let mut counts = vec![0u64; (n * n) as usize];
        for _ in 0..100_000 {
            let (a, b) = distinct_pair(&mut rng, n);
            assert_ne!(a, b);
            assert!(a < n && b < n);
            counts[(a * n + b) as usize] += 1;
        }
        // 20 ordered distinct pairs, each expecting 5000.
        for a in 0..n {
            for b in 0..n {
                let c = counts[(a * n + b) as usize];
                if a == b {
                    assert_eq!(c, 0);
                } else {
                    assert!((4_400..=5_600).contains(&c), "pair ({a},{b}) count {c}");
                }
            }
        }
    }
}
