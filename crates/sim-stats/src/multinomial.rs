//! Categorical, multinomial, and hypergeometric sampling.
//!
//! These primitives back the initial-configuration builders (randomized
//! opinion assignments) and the Gossip-model round simulation. All samplers
//! take a [`SimRng`] and are exact (no normal approximations),
//! trading asymptotic speed for correctness — the hot simulation loop in
//! `usd-core` uses its own specialized sampling instead.

use crate::rng::SimRng;

/// Sample a category index proportional to `weights` (linear scan).
///
/// Panics if all weights are zero or any weight is negative.
pub fn categorical_index(rng: &mut SimRng, weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    assert!(total > 0, "categorical with all-zero weights");
    let mut r = rng.below(total);
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return i;
        }
        r -= w;
    }
    unreachable!("categorical scan exhausted weights");
}

/// Sample a category index proportional to float `weights` (linear scan).
///
/// Panics on negative weights or a non-positive total.
pub fn categorical_index_f64(rng: &mut SimRng, weights: &[f64]) -> usize {
    let mut total = 0.0;
    for &w in weights {
        assert!(w >= 0.0, "negative weight {w}");
        total += w;
    }
    assert!(total > 0.0, "categorical with non-positive total weight");
    let r = rng.f64() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if r < acc {
            return i;
        }
    }
    // Floating point edge: return last category with positive weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("positive total implies a positive weight")
}

/// Exact multinomial sample: distribute `n` trials over categories with the
/// given integer `weights`, by O(n) repeated categorical draws.
///
/// This is intentionally the simple exact algorithm: it is used only for
/// building initial configurations (once per run), never in the interaction
/// loop.
pub fn multinomial_counts(rng: &mut SimRng, n: u64, weights: &[u64]) -> Vec<u64> {
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..n {
        counts[categorical_index(rng, weights)] += 1;
    }
    counts
}

/// Exact hypergeometric sample: number of "successes" when drawing `draws`
/// items without replacement from a population of `total` items of which
/// `successes` are successes. O(draws) urn simulation.
///
/// Panics if `draws > total` or `successes > total`.
pub fn sample_hypergeometric(rng: &mut SimRng, total: u64, successes: u64, draws: u64) -> u64 {
    assert!(draws <= total, "cannot draw more than the population");
    assert!(successes <= total, "successes exceed population");
    let mut remaining_total = total;
    let mut remaining_succ = successes;
    let mut got = 0u64;
    for _ in 0..draws {
        if rng.below(remaining_total) < remaining_succ {
            got += 1;
            remaining_succ -= 1;
        }
        remaining_total -= 1;
    }
    got
}

/// Exact multinomial sample in O(k) binomial draws instead of O(n)
/// categorical draws: category `i` receives
/// `Binomial(remaining trials, wᵢ / remaining weight)` conditioned on the
/// earlier categories — the standard conditional-binomial decomposition.
///
/// Identical in distribution to [`multinomial_counts`]; use this for large
/// `n` (the batch simulator and bulk initial configurations).
pub fn multinomial_counts_fast(rng: &mut SimRng, n: u64, weights: &[u64]) -> Vec<u64> {
    let mut total: u64 = weights.iter().sum();
    assert!(total > 0, "multinomial with all-zero weights");
    let mut counts = vec![0u64; weights.len()];
    let mut remaining = n;
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if w == 0 {
            continue;
        }
        if w == total {
            counts[i] = remaining;
            break;
        }
        let draw = crate::binomial::sample_binomial(rng, remaining, w as f64 / total as f64);
        counts[i] = draw;
        remaining -= draw;
        total -= w;
    }
    counts
}

/// Chunk width for the blocked chain-rule walk in
/// [`multivariate_hypergeometric`]: categories are grouped 32 at a time and
/// a whole chunk is skipped with one hypergeometric draw when it receives
/// nothing.
const MVH_CHUNK: usize = 32;
/// Category count above which the blocked walk pays for its chunk-sum pass.
const MVH_CHUNK_MIN_K: usize = 64;

/// Chain-rule walk over `pop[range]`: allocate `draws` items category by
/// category, writing into `counts[range]`. `total` must equal the sum of
/// `pop[range]`.
fn mvh_walk(rng: &mut SimRng, pop: &[u64], counts: &mut [u64], mut total: u64, mut remaining: u64) {
    debug_assert_eq!(pop.len(), counts.len());
    for (slot, &p) in counts.iter_mut().zip(pop.iter()) {
        if remaining == 0 {
            break;
        }
        if p == 0 {
            continue;
        }
        if p == total {
            *slot = remaining;
            break;
        }
        let draw = crate::binomial::sample_hypergeometric_fast(rng, total, p, remaining);
        *slot = draw;
        remaining -= draw;
        total -= p;
    }
}

/// Exact multivariate hypergeometric sample: the per-category counts of
/// `draws` items drawn **without replacement** from a population with
/// `pop[i]` items of category `i`. O(k) hypergeometric draws via the chain
/// rule; each draw uses the O(sd) mode-centered sampler in
/// [`binomial`](crate::binomial).
///
/// For k ≥ 64 the walk is *blocked*: categories are grouped into chunks of
/// 32, one chain-rule pass allocates `draws` among the chunk totals, and
/// only chunks that received something are walked internally — the chain
/// rule at coarser granularity followed by refinement, identical in
/// distribution to the flat walk but skipping 32 categories per draw on
/// the (common, when draws ≪ Σpop) empty chunks.
///
/// Panics if `draws` exceeds the population size.
pub fn multivariate_hypergeometric(rng: &mut SimRng, pop: &[u64], draws: u64) -> Vec<u64> {
    let total: u64 = pop.iter().sum();
    assert!(draws <= total, "cannot draw more than the population");
    let mut counts = vec![0u64; pop.len()];
    if pop.len() < MVH_CHUNK_MIN_K {
        mvh_walk(rng, pop, &mut counts, total, draws);
        return counts;
    }
    // Blocked walk: allocate among chunk totals, then refine within the
    // nonzero chunks.
    let chunk_sums: Vec<u64> = pop.chunks(MVH_CHUNK).map(|c| c.iter().sum()).collect();
    let mut remaining = draws;
    let mut grand = total;
    for (ci, &cs) in chunk_sums.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if cs == 0 {
            continue;
        }
        let chunk_draw = if cs == grand {
            remaining
        } else {
            crate::binomial::sample_hypergeometric_fast(rng, grand, cs, remaining)
        };
        if chunk_draw > 0 {
            let lo = ci * MVH_CHUNK;
            let hi = (lo + MVH_CHUNK).min(pop.len());
            mvh_walk(rng, &pop[lo..hi], &mut counts[lo..hi], cs, chunk_draw);
        }
        remaining -= chunk_draw;
        grand -= cs;
    }
    counts
}

/// Minimum `draws · categories` product below which
/// [`multivariate_hypergeometric_streams`] and
/// [`hypergeometric_pairing_table`] stay sequential even when offered
/// threads: a scoped-thread spawn costs tens of microseconds, which only
/// repays on genuinely large splits.
const PAR_MIN_WORK: u128 = 1 << 22;

/// Stream tag mixed into a node's master seed for its own draw (vs its
/// children's subtrees). Arbitrary distinct constants; see
/// [`multivariate_hypergeometric_streams`].
const TAG_SELF: u64 = 0;
const TAG_LEFT: u64 = 1;
const TAG_RIGHT: u64 = 2;

/// Whether a subtree of this size is worth a thread spawn.
#[inline]
fn par_worthwhile(threads: usize, draws: u64, len: usize) -> bool {
    threads > 1 && len >= 2 && (draws as u128) * (len as u128) >= PAR_MIN_WORK
}

/// Recursive half of [`multivariate_hypergeometric_streams`]: allocate
/// `draws` over `pop` (whose sum is `total`) into `counts`, all randomness
/// derived from `master`.
fn mvh_streams_rec(
    master: u64,
    pop: &[u64],
    counts: &mut [u64],
    total: u64,
    draws: u64,
    threads: usize,
) {
    if draws == 0 || total == 0 {
        return;
    }
    if pop.len() == 1 {
        counts[0] = draws;
        return;
    }
    let mid = pop.len() / 2;
    let left_sum: u64 = pop[..mid].iter().sum();
    let left_draw = if left_sum == 0 {
        0
    } else if left_sum == total {
        draws
    } else {
        let mut rng = SimRng::new(crate::rng::derive_seed(master, TAG_SELF));
        crate::binomial::sample_hypergeometric_fast(&mut rng, total, left_sum, draws)
    };
    let (lpop, rpop) = pop.split_at(mid);
    let (lcounts, rcounts) = counts.split_at_mut(mid);
    let lmaster = crate::rng::derive_seed(master, TAG_LEFT);
    let rmaster = crate::rng::derive_seed(master, TAG_RIGHT);
    if par_worthwhile(threads, draws, pop.len()) {
        let (lt, rt) = (threads / 2 + threads % 2, threads / 2);
        crate::threads::WorkerPool::global().join(
            || mvh_streams_rec(lmaster, lpop, lcounts, left_sum, left_draw, lt),
            || {
                mvh_streams_rec(
                    rmaster,
                    rpop,
                    rcounts,
                    total - left_sum,
                    draws - left_draw,
                    rt.max(1),
                )
            },
        );
    } else {
        mvh_streams_rec(lmaster, lpop, lcounts, left_sum, left_draw, 1);
        mvh_streams_rec(
            rmaster,
            rpop,
            rcounts,
            total - left_sum,
            draws - left_draw,
            1,
        );
    }
}

/// [`multivariate_hypergeometric`] with **deterministic per-subtree RNG
/// streams** instead of one sequential generator: the category range is
/// split recursively, each split draws its left-half total from a stream
/// derived from `(master, path)` alone, and the two halves recurse
/// independently. Because every draw's stream is a pure function of its
/// position in the recursion — never of execution order — the result is
/// **bit-identical for any thread count**, and subtrees above a work
/// threshold are fanned out over scoped threads (`threads` is a cap, not a
/// demand; pass [`crate::threads::resolve_threads`] to honor
/// `USD_THREADS`/`--threads`).
///
/// This is the parallel row-sampling primitive behind the batch
/// simulators' per-batch pair tables. Identical in distribution to
/// [`multivariate_hypergeometric`] (chain rule regrouped as a binary
/// tree); a different bitstream, so seeded runs differ from the sequential
/// sampler run-for-run but not in law.
///
/// Panics if `draws` exceeds the population size.
pub fn multivariate_hypergeometric_streams(
    master: u64,
    pop: &[u64],
    draws: u64,
    threads: usize,
) -> Vec<u64> {
    let total: u64 = pop.iter().sum();
    assert!(draws <= total, "cannot draw more than the population");
    let mut counts = vec![0u64; pop.len()];
    mvh_streams_rec(master, pop, &mut counts, total, draws, threads.max(1));
    counts
}

/// Recursive half of [`hypergeometric_pairing_table`]: fill the row window
/// `out` (rows `initiators.len() × k`, row-major) given the responder
/// population `resp` available to this row range.
fn pairing_rec(
    master: u64,
    initiators: &[u64],
    resp: Vec<u64>,
    out: &mut [u64],
    k: usize,
    threads: usize,
) {
    let range_draws: u64 = initiators.iter().sum();
    if range_draws == 0 {
        return;
    }
    if initiators.len() == 1 {
        let row = multivariate_hypergeometric_streams(master, &resp, range_draws, threads);
        out[..k].copy_from_slice(&row);
        return;
    }
    let mid = initiators.len() / 2;
    let left_draws: u64 = initiators[..mid].iter().sum();
    // Aggregate responder counts consumed by the first half of the rows,
    // then refine each half recursively (chain rule over row blocks).
    let left_resp = multivariate_hypergeometric_streams(
        crate::rng::derive_seed(master, TAG_SELF),
        &resp,
        left_draws,
        threads,
    );
    let right_resp: Vec<u64> = resp
        .iter()
        .zip(left_resp.iter())
        .map(|(&r, &l)| r - l)
        .collect();
    let lmaster = crate::rng::derive_seed(master, TAG_LEFT);
    let rmaster = crate::rng::derive_seed(master, TAG_RIGHT);
    let (linit, rinit) = initiators.split_at(mid);
    let (lout, rout) = out.split_at_mut(mid * k);
    if par_worthwhile(threads, range_draws, initiators.len() * k) {
        let (lt, rt) = (threads / 2 + threads % 2, threads / 2);
        crate::threads::WorkerPool::global().join(
            || pairing_rec(lmaster, linit, left_resp, lout, k, lt),
            || pairing_rec(rmaster, rinit, right_resp, rout, k, rt.max(1)),
        );
    } else {
        pairing_rec(lmaster, linit, left_resp, lout, k, 1);
        pairing_rec(rmaster, rinit, right_resp, rout, k, 1);
    }
}

/// Sample the **pairing table** of a collision-free interaction batch: a
/// `k × k` row-major table `M` where `M[i][j]` counts the batch's ordered
/// interactions between an initiator in state `i` and a responder in state
/// `j`, given the batch's initiator counts (`initiators[i]` agents
/// initiate from state `i`) and responder counts (`responders[j]` agents
/// respond from state `j`). This is the uniform random bipartite matching
/// of initiators to responders marginalized onto states — the law the
/// batch simulators need — sampled by the chain rule over a binary tree of
/// row blocks with the same deterministic per-subtree streams as
/// [`multivariate_hypergeometric_streams`]: bit-identical for any thread
/// count, parallel above the work threshold.
///
/// Panics unless `Σ initiators == Σ responders`.
pub fn hypergeometric_pairing_table(
    master: u64,
    initiators: &[u64],
    responders: &[u64],
    threads: usize,
) -> Vec<u64> {
    let a: u64 = initiators.iter().sum();
    let r: u64 = responders.iter().sum();
    assert_eq!(a, r, "initiator and responder totals must match");
    let k = responders.len();
    let mut out = vec![0u64; initiators.len() * k];
    if a > 0 {
        pairing_rec(
            master,
            initiators,
            responders.to_vec(),
            &mut out,
            k,
            threads.max(1),
        );
    }
    out
}

/// Draw an ordered pair of **distinct** indices uniformly from `[0, n)`,
/// i.e. the population-protocol scheduler's choice of (initiator, responder).
///
/// Panics if `n < 2`.
pub fn distinct_pair(rng: &mut SimRng, n: u64) -> (u64, u64) {
    assert!(n >= 2, "need at least two agents for an interaction");
    let a = rng.below(n);
    let mut b = rng.below(n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SimRng::new(1);
        let weights = [1u64, 0, 3];
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[categorical_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_f64_respects_weights() {
        let mut rng = SimRng::new(2);
        let weights = [0.25, 0.75];
        let mut counts = [0u64; 2];
        for _ in 0..40_000 {
            counts[categorical_index_f64(&mut rng, &weights)] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn categorical_zero_weights_panics() {
        let mut rng = SimRng::new(3);
        categorical_index(&mut rng, &[0, 0]);
    }

    #[test]
    fn multinomial_conserves_total_and_matches_proportions() {
        let mut rng = SimRng::new(4);
        let counts = multinomial_counts(&mut rng, 60_000, &[1, 2, 3]);
        assert_eq!(counts.iter().sum::<u64>(), 60_000);
        assert!((counts[0] as f64 - 10_000.0).abs() < 600.0);
        assert!((counts[1] as f64 - 20_000.0).abs() < 800.0);
        assert!((counts[2] as f64 - 30_000.0).abs() < 900.0);
    }

    #[test]
    fn multinomial_fast_conserves_total_and_matches_proportions() {
        let mut rng = SimRng::new(14);
        let counts = multinomial_counts_fast(&mut rng, 600_000, &[1, 0, 2, 3]);
        assert_eq!(counts.iter().sum::<u64>(), 600_000);
        assert_eq!(counts[1], 0);
        assert!((counts[0] as f64 - 100_000.0).abs() < 2_500.0, "{counts:?}");
        assert!((counts[2] as f64 - 200_000.0).abs() < 3_500.0, "{counts:?}");
        assert!((counts[3] as f64 - 300_000.0).abs() < 4_000.0, "{counts:?}");
    }

    #[test]
    fn multinomial_fast_matches_slow_distribution() {
        // Compare first-category marginals of the two algorithms via KS.
        let reps = 30_000;
        let mut fast = Vec::with_capacity(reps);
        let mut slow = Vec::with_capacity(reps);
        let mut rng = SimRng::new(15);
        for _ in 0..reps {
            fast.push(multinomial_counts_fast(&mut rng, 200, &[2, 3, 5])[0] as f64);
            slow.push(multinomial_counts(&mut rng, 200, &[2, 3, 5])[0] as f64);
        }
        let d = crate::ks::ks_statistic(&fast, &slow);
        let crit = crate::ks::ks_critical_value(reps, reps, 0.001);
        assert!(d < crit, "KS {d} >= crit {crit}");
    }

    #[test]
    fn multivariate_hypergeometric_invariants() {
        let mut rng = SimRng::new(16);
        let pop = [500u64, 0, 1_200, 300];
        for _ in 0..200 {
            let c = multivariate_hypergeometric(&mut rng, &pop, 800);
            assert_eq!(c.iter().sum::<u64>(), 800);
            for (got, cap) in c.iter().zip(pop.iter()) {
                assert!(got <= cap, "{c:?} exceeds {pop:?}");
            }
        }
        // Drawing the whole population returns it exactly.
        let all = multivariate_hypergeometric(&mut rng, &pop, 2_000);
        assert_eq!(all, pop.to_vec());
    }

    #[test]
    fn multivariate_hypergeometric_marginal_mean() {
        let mut rng = SimRng::new(17);
        let pop = [30_000u64, 70_000];
        let reps = 5_000;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += multivariate_hypergeometric(&mut rng, &pop, 10_000)[0] as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean - 3_000.0).abs() < 3_000.0 * 0.01, "mean {mean}");
    }

    #[test]
    fn hypergeometric_mean_matches_theory() {
        let mut rng = SimRng::new(5);
        let (total, succ, draws) = (100u64, 30u64, 20u64);
        let reps = 20_000;
        let mut sum = 0u64;
        for _ in 0..reps {
            let got = sample_hypergeometric(&mut rng, total, succ, draws);
            assert!(got <= draws.min(succ));
            sum += got;
        }
        let mean = sum as f64 / reps as f64;
        let expect = draws as f64 * succ as f64 / total as f64; // 6.0
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn hypergeometric_degenerate_cases() {
        let mut rng = SimRng::new(6);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 10, 5), 5);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 0, 5), 0);
        assert_eq!(sample_hypergeometric(&mut rng, 10, 3, 10), 3);
    }

    #[test]
    fn blocked_walk_matches_flat_walk_distribution() {
        // k = 256 engages the chunked path; compare a marginal against the
        // flat chain-rule walk via KS.
        let k = 256usize;
        let pop: Vec<u64> = (0..k).map(|i| 1 + (i as u64 * 13) % 40).collect();
        let total: u64 = pop.iter().sum();
        let reps = 20_000;
        let mut blocked = Vec::with_capacity(reps);
        let mut flat = Vec::with_capacity(reps);
        let mut rng = SimRng::new(31);
        for _ in 0..reps {
            let b = multivariate_hypergeometric(&mut rng, &pop, 500);
            assert_eq!(b.iter().sum::<u64>(), 500);
            blocked.push(b[17] as f64);
            let mut counts = vec![0u64; k];
            mvh_walk(&mut rng, &pop, &mut counts, total, 500);
            assert_eq!(counts.iter().sum::<u64>(), 500);
            flat.push(counts[17] as f64);
        }
        let d = crate::ks::ks_statistic(&blocked, &flat);
        let crit = crate::ks::ks_critical_value(reps, reps, 0.001);
        assert!(d < crit, "KS {d} >= crit {crit}");
    }

    #[test]
    fn blocked_walk_small_draws_sparse_result() {
        let pop = vec![1_000u64; 512];
        let mut rng = SimRng::new(32);
        let c = multivariate_hypergeometric(&mut rng, &pop, 3);
        assert_eq!(c.iter().sum::<u64>(), 3);
    }

    #[test]
    fn streams_invariants_and_caps() {
        let pop = [500u64, 0, 1_200, 300, 7, 0, 90];
        for master in 0..200u64 {
            let c = multivariate_hypergeometric_streams(master, &pop, 800, 1);
            assert_eq!(c.iter().sum::<u64>(), 800);
            for (got, cap) in c.iter().zip(pop.iter()) {
                assert!(got <= cap, "{c:?} exceeds {pop:?}");
            }
        }
        let all = multivariate_hypergeometric_streams(1, &pop, 2_097, 1);
        assert_eq!(all, pop.to_vec());
        assert_eq!(
            multivariate_hypergeometric_streams(1, &pop, 0, 1),
            vec![0; 7]
        );
    }

    #[test]
    fn streams_bit_identical_across_thread_counts() {
        // The regression the parallel sampler must never fail: results are
        // a pure function of (master, pop, draws), independent of the
        // thread budget. Use draws large enough to engage the spawn path.
        let pop: Vec<u64> = (0..64).map(|i| 100_000 + i * 7).collect();
        for master in [0u64, 1, 0xDEAD_BEEF] {
            let one = multivariate_hypergeometric_streams(master, &pop, 3_000_000, 1);
            let two = multivariate_hypergeometric_streams(master, &pop, 3_000_000, 2);
            let eight = multivariate_hypergeometric_streams(master, &pop, 3_000_000, 8);
            assert_eq!(one, two, "threads=2 diverged at master {master}");
            assert_eq!(one, eight, "threads=8 diverged at master {master}");
        }
    }

    #[test]
    fn streams_matches_sequential_distribution() {
        let pop = [300u64, 500, 200];
        let reps = 30_000;
        let mut tree = Vec::with_capacity(reps);
        let mut seq = Vec::with_capacity(reps);
        let mut rng = SimRng::new(33);
        for rep in 0..reps {
            tree.push(multivariate_hypergeometric_streams(rep as u64, &pop, 400, 1)[1] as f64);
            seq.push(multivariate_hypergeometric(&mut rng, &pop, 400)[1] as f64);
        }
        let d = crate::ks::ks_statistic(&tree, &seq);
        let crit = crate::ks::ks_critical_value(reps, reps, 0.001);
        assert!(d < crit, "KS {d} >= crit {crit}");
    }

    #[test]
    fn pairing_table_margins_and_determinism() {
        let initiators = [40u64, 0, 25, 35];
        let responders = [10u64, 60, 30];
        for master in 0..100u64 {
            let t = hypergeometric_pairing_table(master, &initiators, &responders, 1);
            assert_eq!(t.len(), 12);
            for (i, &a) in initiators.iter().enumerate() {
                let row: u64 = t[i * 3..(i + 1) * 3].iter().sum();
                assert_eq!(row, a, "row {i} margin");
            }
            for (j, &r) in responders.iter().enumerate() {
                let col: u64 = (0..4).map(|i| t[i * 3 + j]).sum();
                assert_eq!(col, r, "col {j} margin");
            }
            let again = hypergeometric_pairing_table(master, &initiators, &responders, 4);
            assert_eq!(t, again, "thread count changed the table");
        }
    }

    #[test]
    fn pairing_table_cell_mean_matches_theory() {
        // E M[i][j] = a_i r_j / L for the uniform bipartite pairing.
        let initiators = [30u64, 70];
        let responders = [40u64, 60];
        let reps = 20_000u64;
        let mut sum = 0.0;
        for master in 0..reps {
            sum += hypergeometric_pairing_table(master, &initiators, &responders, 1)[0] as f64;
        }
        let mean = sum / reps as f64;
        let expect = 30.0 * 40.0 / 100.0; // = 12
        assert!((mean - expect).abs() < 0.15, "mean {mean} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "totals must match")]
    fn pairing_table_margin_mismatch_panics() {
        hypergeometric_pairing_table(1, &[3], &[2], 1);
    }

    #[test]
    fn distinct_pair_is_distinct_and_uniform() {
        let mut rng = SimRng::new(7);
        let n = 5u64;
        let mut counts = vec![0u64; (n * n) as usize];
        for _ in 0..100_000 {
            let (a, b) = distinct_pair(&mut rng, n);
            assert_ne!(a, b);
            assert!(a < n && b < n);
            counts[(a * n + b) as usize] += 1;
        }
        // 20 ordered distinct pairs, each expecting 5000.
        for a in 0..n {
            for b in 0..n {
                let c = counts[(a * n + b) as usize];
                if a == b {
                    assert_eq!(c, 0);
                } else {
                    assert!((4_400..=5_600).contains(&c), "pair ({a},{b}) count {c}");
                }
            }
        }
    }
}
