//! Statistics, RNG, and reporting substrate for the plurality-consensus
//! reproduction.
//!
//! This crate contains everything the simulation and experiment crates need
//! that is not specific to population protocols:
//!
//! * [`rng`] — deterministic, splittable random number generation
//!   (Xoshiro256++ seeded through SplitMix64) so every experiment is
//!   reproducible from a single master seed;
//! * [`summary`] — streaming and batch summary statistics (Welford mean and
//!   variance, quantiles, confidence intervals);
//! * [`histogram`] — fixed-width and logarithmic histograms;
//! * [`ks`] — two-sample Kolmogorov–Smirnov statistics for the
//!   simulator-equivalence experiments;
//! * [`regression`] — ordinary least squares and log–log scaling fits, used
//!   to extract empirical exponents from stabilization-time sweeps;
//! * [`multinomial`] — categorical, multinomial, and hypergeometric sampling
//!   (O(n) urn references plus O(k)-draw fast paths);
//! * [`binomial`] — exact binomial and hypergeometric samplers with
//!   inverse-CDF and BTPE-style rejection paths, the statistical substrate
//!   of the batch-leaping simulator;
//! * [`timeseries`] — trajectory containers with downsampling;
//! * [`plot`] — ASCII line charts for terminal experiment output;
//! * [`tables`] — plain-text table formatting for experiment reports.
//!
//! All functionality is dependency-light and deterministic under a fixed
//! seed, which the test suites across the workspace rely on.

// `deny` rather than `forbid`: the one sanctioned exception is the
// type-erased job handoff inside [`threads`] (the persistent worker pool),
// which carries stack-borrowed closures to pool workers and is annotated
// item-by-item with its safety contract. Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod histogram;
pub mod ks;
pub mod multinomial;
pub mod plot;
pub mod regression;
pub mod rng;
pub mod summary;
pub mod tables;
pub mod threads;
pub mod timeseries;

pub use binomial::{
    ln_binomial, ln_factorial, ln_gamma, sample_binomial, sample_hypergeometric_fast,
};
pub use histogram::{Histogram, LogHistogram};
pub use ks::{ks_critical_value, ks_reject, ks_statistic};
pub use multinomial::{
    categorical_index, hypergeometric_pairing_table, multinomial_counts, multinomial_counts_fast,
    multivariate_hypergeometric, multivariate_hypergeometric_streams, sample_hypergeometric,
};
pub use plot::AsciiChart;
pub use regression::{loglog_fit, ols_fit, LinearFit};
pub use rng::{RngFactory, SimRng};
pub use summary::{quantile, Summary};
pub use tables::TextTable;
pub use timeseries::{Series, TimeSeries};
