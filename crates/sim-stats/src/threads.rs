//! Process-wide worker-thread-count resolution and the persistent
//! [`WorkerPool`].
//!
//! Every parallel facility in the workspace — the experiment sweep runner
//! in `usd-experiments`, the parallel hypergeometric row sampling the
//! batch simulators use, and the sharded `pargraph` engine's domain
//! fan-out — answers the question "how many worker threads?" the same
//! way, in precedence order:
//!
//! 1. the process-wide override set by [`set_thread_override`] (wired to
//!    the binaries' `--threads` flag),
//! 2. the `USD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! This module is the **only** first-party reader of `USD_THREADS`:
//! everything above it resolves once (the run builders cache the count in
//! `RunSpec::threads`; the simulators resolve at construction) and passes
//! an explicit thread count down.
//!
//! This lives in `sim-stats` (the workspace's lowest layer) so that the
//! sampling primitives can honor `--threads` without depending on the
//! experiment crates; `usd_experiments::runner` re-exports these functions
//! so existing callers are unaffected. Thread count never changes any
//! sampled result, only wall clock: all parallel samplers in this crate
//! derive deterministic per-task RNG streams (see
//! [`multivariate_hypergeometric_streams`](crate::multinomial::multivariate_hypergeometric_streams)).
//!
//! [`WorkerPool`] is the shared execution substrate for the per-block
//! parallel work inside a simulation run: a process-wide set of persistent
//! workers parked on a condvar, so a hot loop that fans out every few
//! hundred microseconds pays a wake-up, not a `thread::spawn` (the
//! measured overhead that kept the scoped-spawn version of the
//! hypergeometric fan-out sequential below a large work threshold).
//! Scheduling never influences results: callers decide *what* runs from
//! deterministic state, the pool only decides *where*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Process-wide thread-count override (0 = unset). Highest precedence.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set (or clear, with `None`) the process-wide worker-thread count. Takes
/// precedence over `USD_THREADS` and auto-detection. A count of 0 clears.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolve the worker-thread count: override > `USD_THREADS` env >
/// available parallelism. Always at least 1.
pub fn resolve_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("USD_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t > 0 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Hard cap on pool workers, far above any sane `--threads` ask — a
/// backstop against a typo'd `USD_THREADS=100000` spawning the machine
/// into the ground, not a tuning knob.
const MAX_POOL_WORKERS: usize = 256;

/// A queued unit of work: a type-erased pointer back into the submitting
/// call's stack frame plus the handler that knows its concrete type.
///
/// Safety contract: the submitting call ([`WorkerPool::run`] /
/// [`WorkerPool::join`]) must not return until the job it pushed has been
/// fully handled (every handler signals completion through the job's own
/// synchronization), so the pointee outlives every access.
#[derive(Clone, Copy)]
struct JobRef {
    ptr: *const (),
    handle: unsafe fn(*const ()),
}

// SAFETY: the pointee is synchronized by the job's own Mutex/Condvar and
// atomics, and outlives the reference per the contract above.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

struct PoolShared {
    queue: Mutex<VecDeque<JobRef>>,
    /// Workers park here; every push notifies.
    work_cv: Condvar,
}

/// A persistent worker pool for deterministic fan-out.
///
/// Two entry points:
///
/// * [`run`](WorkerPool::run) — execute `f(0..tasks)` with up to `threads`
///   participants (the caller is one of them). The task *index* is the
///   unit of determinism: which thread runs which index is unspecified,
///   so `f` must derive everything from the index (per-domain RNG
///   streams, disjoint slices), never from execution order.
/// * [`join`](WorkerPool::join) — run two closures, the second inline and
///   the first on a pool worker when one is free (stolen back and run
///   inline otherwise), for recursive binary fan-out like the
///   hypergeometric samplers' subtree splits.
///
/// Both block until all submitted work has finished, which is what makes
/// the borrowed-closure submission sound. Waits only ever park on work
/// that is *actively executing* — a queued-but-unclaimed job is removed
/// from the queue and run by the submitter instead — so the pool cannot
/// deadlock even under recursive `join` from inside workers.
///
/// The process-wide instance is [`WorkerPool::global`]; workers are
/// spawned on demand up to the largest count any call has asked for and
/// then persist for the process lifetime, parked on a condvar while idle.
pub struct WorkerPool {
    shared: &'static PoolShared,
    /// Workers spawned so far (grow-on-demand, never shrinks).
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// The process-wide pool. Never shuts down; idle workers are parked.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool {
            shared: Box::leak(Box::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
            })),
            spawned: Mutex::new(0),
        })
    }

    /// Ensure at least `want` workers exist (capped at
    /// [`MAX_POOL_WORKERS`]).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
        while *spawned < want {
            let shared = self.shared;
            std::thread::Builder::new()
                .name(format!("usd-pool-{spawned}"))
                .spawn(move || worker_loop(shared))
                .expect("spawning pool worker");
            *spawned += 1;
        }
    }

    fn push(&self, job: JobRef) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        q.push_back(job);
        drop(q);
        self.shared.work_cv.notify_one();
    }

    /// Remove a previously pushed job from the queue if no worker has
    /// claimed it yet. Returns whether it was removed (the submitting call
    /// then owns handling it).
    fn steal_back(&self, job: JobRef) -> bool {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.ptr, job.ptr)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Execute `f(i)` for every `i in 0..tasks`, with up to `threads`
    /// participants including the calling thread. Blocks until every task
    /// has finished. `threads <= 1` (or a single task) runs inline with no
    /// synchronization at all, so the single-threaded path is exactly the
    /// sequential loop.
    ///
    /// Determinism contract: `f` must be a pure function of the task index
    /// and of state it owns per-index (disjoint slices, derived RNG
    /// streams). The pool guarantees every index runs exactly once and the
    /// call does not return before the last one completes; it guarantees
    /// nothing about which thread runs which index or in what order.
    pub fn run(&self, threads: usize, tasks: usize, f: impl Fn(usize) + Sync) {
        if threads <= 1 || tasks <= 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let helpers = threads.min(tasks) - 1;
        self.ensure_workers(helpers);
        let region = RegionJob {
            f: &f,
            next: AtomicUsize::new(0),
            tasks,
            outstanding: AtomicUsize::new(tasks + helpers),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        };
        let job = JobRef {
            ptr: &region as *const RegionJob<'_> as *const (),
            handle: handle_region,
        };
        for _ in 0..helpers {
            self.push(job);
        }
        // The caller is participant 0: claim and run indices like any
        // worker would.
        region.claim_loop();
        // Un-popped queue entries are useless now (all indices claimed or
        // being run); reclaim them so the wait below only ever parks on
        // *actively executing* tasks.
        while self.steal_back(job) {
            region.finish(1);
        }
        region.wait_outstanding();
    }

    /// Run `fork` on a pool worker (when one picks it up in time — it is
    /// stolen back and run inline otherwise) while the calling thread runs
    /// `inline`. Returns when both have finished. The recursive-fan-out
    /// primitive: safe to call from inside pool workers.
    pub fn join<F: FnOnce() + Send>(&self, fork: F, inline: impl FnOnce()) {
        self.ensure_workers(1);
        let job = JoinJob {
            f: Mutex::new(Some(fork)),
            outstanding: AtomicUsize::new(2), // the task + the queue entry
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        };
        let job_ref = JobRef {
            ptr: &job as *const JoinJob<F> as *const (),
            handle: handle_join::<F>,
        };
        self.push(job_ref);
        inline();
        if self.steal_back(job_ref) {
            // No worker claimed it: run the forked half here.
            job.execute();
            job.finish(1); // the reclaimed queue entry
        }
        job.wait_outstanding();
    }
}

struct RegionJob<'f> {
    f: &'f (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    tasks: usize,
    /// Unfinished tasks + unconsumed queue entries.
    outstanding: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
}

impl RegionJob<'_> {
    fn finish(&self, n: usize) {
        if self.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
            let _guard = self.done.lock().expect("job done lock poisoned");
            self.done_cv.notify_all();
        }
    }

    fn wait_outstanding(&self) {
        let mut guard = self.done.lock().expect("job done lock poisoned");
        while self.outstanding.load(Ordering::Acquire) > 0 {
            guard = self.done_cv.wait(guard).expect("job done lock poisoned");
        }
    }

    /// Claim and run indices until they run out.
    fn claim_loop(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                return;
            }
            (self.f)(i);
            self.finish(1);
        }
    }
}

/// Worker-side handler for a popped region entry: participate in the
/// claim loop, then release the queue entry.
#[allow(unsafe_code)]
unsafe fn handle_region(ptr: *const ()) {
    // SAFETY: the pointee outlives this call per the JobRef contract (run()
    // waits for `outstanding` — which counts this queue entry — to drain).
    let region = unsafe { &*(ptr as *const RegionJob<'_>) };
    region.claim_loop();
    region.finish(1);
}

struct JoinJob<F: FnOnce() + Send> {
    /// The forked closure; taken exactly once (by a worker or stolen back).
    f: Mutex<Option<F>>,
    /// The task itself + the queue entry referencing it.
    outstanding: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
}

impl<F: FnOnce() + Send> JoinJob<F> {
    fn finish(&self, n: usize) {
        if self.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
            let _guard = self.done.lock().expect("job done lock poisoned");
            self.done_cv.notify_all();
        }
    }

    fn wait_outstanding(&self) {
        let mut guard = self.done.lock().expect("job done lock poisoned");
        while self.outstanding.load(Ordering::Acquire) > 0 {
            guard = self.done_cv.wait(guard).expect("job done lock poisoned");
        }
    }

    fn execute(&self) {
        let f = self
            .f
            .lock()
            .expect("join job lock poisoned")
            .take()
            .expect("join closure executed twice");
        f();
        self.finish(1); // the task itself
    }
}

#[allow(unsafe_code)]
unsafe fn handle_join<F: FnOnce() + Send>(ptr: *const ()) {
    // SAFETY: the pointee outlives this call per the JobRef contract
    // (join() waits for `outstanding` — which counts this queue entry —
    // to drain, and steal_back guarantees pop/claim exclusivity).
    let job = unsafe { &*(ptr as *const JoinJob<F>) };
    job.execute();
    job.finish(1); // the queue entry
}

#[allow(unsafe_code)]
fn worker_loop(shared: &'static PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.work_cv.wait(q).expect("pool queue poisoned");
            }
        };
        // SAFETY: handler/pointer pairing established at push time.
        unsafe { (job.handle)(job.ptr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_takes_precedence_and_clears() {
        set_thread_override(Some(3));
        assert_eq!(resolve_threads(), 3);
        set_thread_override(None);
        assert!(resolve_threads() >= 1);
    }

    #[test]
    fn pool_run_executes_every_index_exactly_once() {
        let pool = WorkerPool::global();
        for threads in [1usize, 2, 8, 64] {
            let tasks = 257;
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(threads, tasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "index {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn pool_run_results_are_thread_count_invariant() {
        // The canonical usage: every task derives its output from its
        // index alone, written to a disjoint slot.
        let pool = WorkerPool::global();
        let reference: Vec<u64> = (0..100u64)
            .map(|i| crate::rng::derive_seed(42, i))
            .collect();
        for threads in [1usize, 2, 8] {
            let out: Vec<Mutex<u64>> = (0..100).map(|_| Mutex::new(0)).collect();
            pool.run(threads, 100, |i| {
                *out[i].lock().unwrap() = crate::rng::derive_seed(42, i as u64);
            });
            let got: Vec<u64> = out.iter().map(|m| *m.lock().unwrap()).collect();
            assert_eq!(got, reference, "{threads} threads");
        }
    }

    #[test]
    fn pool_join_runs_both_halves() {
        let pool = WorkerPool::global();
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        pool.join(
            || a.store(7, Ordering::Release),
            || b.store(9, Ordering::Release),
        );
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert_eq!(b.load(Ordering::Acquire), 9);
    }

    #[test]
    fn pool_join_nests_recursively_without_deadlock() {
        // Binary fan-out like the hypergeometric samplers': depth 6 = up
        // to 64 leaves contending for far fewer workers, exercising both
        // worker-side execution and steal-back.
        fn recurse(pool: &WorkerPool, depth: usize, sum: &AtomicUsize) {
            if depth == 0 {
                sum.fetch_add(1, Ordering::Relaxed);
                return;
            }
            pool.join(
                || recurse(WorkerPool::global(), depth - 1, sum),
                || recurse(pool, depth - 1, sum),
            );
        }
        let sum = AtomicUsize::new(0);
        recurse(WorkerPool::global(), 6, &sum);
        assert_eq!(sum.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn pool_run_zero_and_one_task_edge_cases() {
        let pool = WorkerPool::global();
        pool.run(8, 0, |_| panic!("no tasks to run"));
        let hit = AtomicUsize::new(0);
        pool.run(8, 1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
