//! Process-wide worker-thread-count resolution.
//!
//! Every parallel facility in the workspace — the experiment sweep runner
//! in `usd-experiments` and the parallel hypergeometric row sampling the
//! batch simulators use — answers the question "how many worker threads?"
//! the same way, in precedence order:
//!
//! 1. the process-wide override set by [`set_thread_override`] (wired to
//!    the binaries' `--threads` flag),
//! 2. the `USD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! This lives in `sim-stats` (the workspace's lowest layer) so that the
//! sampling primitives can honor `--threads` without depending on the
//! experiment crates; `usd_experiments::runner` re-exports these functions
//! so existing callers are unaffected. Thread count never changes any
//! sampled result, only wall clock: all parallel samplers in this crate
//! derive deterministic per-task RNG streams (see
//! [`multivariate_hypergeometric_streams`](crate::multinomial::multivariate_hypergeometric_streams)).
//!
//! The environment variable is read once per call; callers on hot paths
//! should resolve once and cache (the simulators resolve at construction).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override (0 = unset). Highest precedence.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set (or clear, with `None`) the process-wide worker-thread count. Takes
/// precedence over `USD_THREADS` and auto-detection. A count of 0 clears.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolve the worker-thread count: override > `USD_THREADS` env >
/// available parallelism. Always at least 1.
pub fn resolve_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("USD_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t > 0 {
                return t;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_takes_precedence_and_clears() {
        set_thread_override(Some(3));
        assert_eq!(resolve_threads(), 3);
        set_thread_override(None);
        assert!(resolve_threads() >= 1);
    }
}
