//! ASCII line charts for terminal experiment output.
//!
//! The figure-regeneration binaries render the same series the paper plots
//! (Figure 1 left/right) directly into the terminal, so the reproduction can
//! be inspected without any plotting toolchain. Charts support multiple
//! series with distinct glyphs, axis labels, and an automatic legend.

use crate::timeseries::TimeSeries;

/// Glyphs assigned to successive series.
const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

/// A configurable ASCII chart renderer.
///
/// ```
/// use sim_stats::{AsciiChart, Series, TimeSeries};
/// let mut ts = TimeSeries::with_time((0..50).map(|i| i as f64).collect());
/// ts.push_series(Series::new("linear", (0..50).map(|i| i as f64).collect()));
/// let chart = AsciiChart::new(60, 12).title("demo");
/// let rendered = chart.render(&ts);
/// assert!(rendered.contains("demo"));
/// assert!(rendered.contains("linear"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    title: String,
    x_label: String,
    y_label: String,
}

impl AsciiChart {
    /// Create a chart with the given plot-area width and height (in
    /// characters). Both are clamped to at least 8 × 4.
    pub fn new(width: usize, height: usize) -> Self {
        AsciiChart {
            width: width.max(8),
            height: height.max(4),
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Set the chart title.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = t.into();
        self
    }

    /// Set the x-axis label.
    pub fn x_label(mut self, l: impl Into<String>) -> Self {
        self.x_label = l.into();
        self
    }

    /// Set the y-axis label.
    pub fn y_label(mut self, l: impl Into<String>) -> Self {
        self.y_label = l.into();
        self
    }

    /// Render all series of `ts` into a multi-line string.
    ///
    /// Returns a short placeholder string when there is nothing to plot.
    pub fn render(&self, ts: &TimeSeries) -> String {
        if ts.is_empty() || ts.series.is_empty() {
            return "(empty chart)\n".to_string();
        }
        let (tmin, tmax) = min_max(&ts.time);
        let mut vmin = f64::INFINITY;
        let mut vmax = f64::NEG_INFINITY;
        for s in &ts.series {
            let (lo, hi) = min_max(&s.values);
            vmin = vmin.min(lo);
            vmax = vmax.max(hi);
        }
        if !vmin.is_finite() || !vmax.is_finite() {
            return "(chart: non-finite values)\n".to_string();
        }
        let vspan = (vmax - vmin).max(f64::MIN_POSITIVE);
        let tspan = (tmax - tmin).max(f64::MIN_POSITIVE);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in ts.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (&t, &v) in ts.time.iter().zip(&s.values) {
                if !v.is_finite() {
                    continue;
                }
                let col = (((t - tmin) / tspan) * (self.width - 1) as f64).round() as usize;
                let row_from_bottom =
                    (((v - vmin) / vspan) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row_from_bottom.min(self.height - 1);
                grid[row][col.min(self.width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("  {}\n", self.title));
        }
        if !self.y_label.is_empty() {
            out.push_str(&format!("  [y: {}]\n", self.y_label));
        }
        let y_labels = [vmax, vmin + vspan / 2.0, vmin];
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format_axis(y_labels[0])
            } else if r == self.height / 2 {
                format_axis(y_labels[1])
            } else if r == self.height - 1 {
                format_axis(y_labels[2])
            } else {
                " ".repeat(10)
            };
            out.push_str(&format!("{label} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{} +{}\n", " ".repeat(10), "-".repeat(self.width)));
        out.push_str(&format!(
            "{}  {:<12}{}{:>12}\n",
            " ".repeat(10),
            format_axis(tmin).trim(),
            " ".repeat(self.width.saturating_sub(24)),
            format_axis(tmax).trim()
        ));
        if !self.x_label.is_empty() {
            out.push_str(&format!("{}  [x: {}]\n", " ".repeat(10), self.x_label));
        }
        out.push_str("  legend:");
        for (si, s) in ts.series.iter().enumerate() {
            out.push_str(&format!(" {}={}", GLYPHS[si % GLYPHS.len()], s.name));
        }
        out.push('\n');
        out
    }
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    (lo, hi)
}

/// Format an axis tick into a fixed 10-character field, using engineering
/// suffixes (k, M, G) for large magnitudes like the paper's 1M-agent runs.
fn format_axis(v: f64) -> String {
    let formatted = if v.abs() >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v.abs() >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if v == v.trunc() && v.abs() < 1e4 {
        format!("{v}")
    } else {
        format!("{v:.3}")
    };
    format!("{formatted:>10}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::Series;

    fn demo_ts() -> TimeSeries {
        let mut ts = TimeSeries::with_time((0..100).map(|i| i as f64).collect());
        ts.push_series(Series::new("up", (0..100).map(|i| i as f64).collect()));
        ts.push_series(Series::new(
            "down",
            (0..100).map(|i| (99 - i) as f64).collect(),
        ));
        ts
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let chart = AsciiChart::new(40, 10)
            .title("t")
            .x_label("parallel time")
            .y_label("nodes");
        let out = chart.render(&demo_ts());
        assert!(out.contains("t\n"));
        assert!(out.contains("[x: parallel time]"));
        assert!(out.contains("[y: nodes]"));
        assert!(out.contains("*=up"));
        assert!(out.contains("+=down"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let chart = AsciiChart::new(40, 10);
        assert_eq!(chart.render(&TimeSeries::new()), "(empty chart)\n");
    }

    #[test]
    fn grid_contains_both_glyphs() {
        let out = AsciiChart::new(40, 10).render(&demo_ts());
        assert!(out.contains('*'));
        assert!(out.contains('+'));
    }

    #[test]
    fn line_count_is_bounded() {
        let out = AsciiChart::new(40, 10).title("x").render(&demo_ts());
        // title + rows + axis + ticks + legend ≈ height + 4..6
        let lines = out.lines().count();
        assert!((12..=16).contains(&lines), "lines {lines}");
    }

    #[test]
    fn axis_formatting_suffixes() {
        assert_eq!(format_axis(1_500_000.0).trim(), "1.50M");
        assert_eq!(format_axis(25_000.0).trim(), "25.0k");
        assert_eq!(format_axis(3.0).trim(), "3");
        assert_eq!(format_axis(2.5e9).trim(), "2.50G");
    }

    #[test]
    fn constant_series_does_not_panic() {
        let mut ts = TimeSeries::with_time(vec![0.0, 1.0, 2.0]);
        ts.push_series(Series::new("flat", vec![5.0, 5.0, 5.0]));
        let out = AsciiChart::new(20, 6).render(&ts);
        assert!(out.contains('*'));
    }
}
