//! Deterministic, splittable random number generation.
//!
//! Every stochastic component in the workspace draws randomness through this
//! module so that a single master seed reproduces an entire experiment,
//! including multi-threaded parameter sweeps: each logical stream (one
//! simulation run, one walk, one bootstrap resample) derives its own
//! independent generator via [`RngFactory::stream`].
//!
//! The generator is Xoshiro256++ (Blackman–Vigna), seeded through SplitMix64
//! as its authors recommend. We implement it locally (~30 lines) rather than
//! pulling an extra dependency; the implementation is checked against the
//! reference test vectors in the unit tests below.

use rand::{RngCore, SeedableRng};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding Xoshiro state and for deriving per-stream seeds from a
/// `(master, stream)` pair. This is the exact algorithm from Steele et al.,
/// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a well-mixed 64-bit seed for logical stream `stream` of a master
/// seed. Distinct `(master, stream)` pairs produce (with overwhelming
/// probability) unrelated generator states.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Mix the stream id in with two SplitMix64 steps so that low-entropy
    // stream ids (0, 1, 2, ...) land far apart in state space.
    let mut s = master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// The workspace-wide simulation RNG: Xoshiro256++.
///
/// Fast (sub-nanosecond per `u64` on current hardware), equidistributed in
/// 4 dimensions, with a 2^256 − 1 period. Implements [`rand::RngCore`] so it
/// can be used with the whole `rand` API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed by expanding it through
    /// SplitMix64 (the seeding procedure recommended by the Xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is the single invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    /// The raw 256-bit generator state, for round-trippable persistence
    /// (checkpoint/resume). The returned words fully determine every future
    /// draw: `SimRng::from_state(rng.state())` continues the stream
    /// bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured
    /// [`SimRng::state`]. Returns `None` for the all-zero state — the
    /// single invalid Xoshiro256++ state, which no live generator can
    /// reach, so encountering it means the stored state is corrupt.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0, 0, 0, 0] {
            None
        } else {
            Some(SimRng { s })
        }
    }

    /// Next raw 64-bit output (Xoshiro256++ scrambler).
    #[allow(clippy::should_implement_trait)] // `next` matches the Xoshiro reference naming
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's nearly-divisionless
    /// multiply-shift rejection method. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `u128` in `[0, bound)` via masked rejection sampling
    /// (expected < 2 draws). Exact — no floating-point rounding — which the
    /// skip-ahead simulator needs when splitting interaction probabilities
    /// whose weights exceed `u64`. Panics if `bound == 0`.
    #[inline]
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below_u128(0) is meaningless");
        if bound <= u64::MAX as u128 {
            return self.below(bound as u64) as u128;
        }
        let bits = 128 - (bound - 1).leading_zeros();
        let mask = if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        };
        loop {
            let hi = self.next() as u128;
            let lo = self.next() as u128;
            let x = ((hi << 64) | lo) & mask;
            if x < bound {
                return x;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Geometric number of failures before the first success for success
    /// probability `p` ∈ (0, 1]: returns `G ≥ 0` with `P[G = g] = (1−p)^g p`.
    ///
    /// Uses inversion: `G = floor(ln U / ln(1−p))`, with `ln(1−p)` computed
    /// as `ln_1p(−p)` so tiny `p` keeps full precision — `1.0 − p` rounds
    /// to exactly 1.0 below `p ≈ 1e−16`, which would collapse every draw to
    /// 0 instead of the correct ~1/p scale (the batch simulator feeds
    /// per-pair probabilities as small as 1/n² here). For `p = 1` returns
    /// 0. This is the primitive behind the skip-ahead simulators (no-op
    /// runs between effective interactions are geometric).
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric requires p in (0,1], got {p}"
        );
        if p >= 1.0 {
            return 0;
        }
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let g = (u.ln() / (-p).ln_1p()).floor();
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// Negative-binomial total: the number of failures accumulated over `r`
    /// independent geometric runs with success probability `p` ∈ (0, 1] —
    /// `NB(r, p) = Σᵢ Gᵢ` with `Gᵢ ~ Geom(p)` i.i.d. This is the exact law
    /// of the *aggregate* no-op skip a block-leaping sparse engine charges
    /// for `r` consecutive effective events while the active weight (hence
    /// `p`) is unchanged. Sampled by inversion as the literal sum of `r`
    /// geometric draws, but with `ln(1−p)` computed **once** for the whole
    /// block instead of once per event; for `p = 1` returns 0.
    #[inline]
    pub fn negative_binomial(&mut self, r: u64, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "negative_binomial requires p in (0,1], got {p}"
        );
        if p >= 1.0 || r == 0 {
            return 0;
        }
        let ln_q = (-p).ln_1p();
        let mut total = 0u64;
        for _ in 0..r {
            let u = loop {
                let u = self.f64();
                if u > 0.0 {
                    break u;
                }
            };
            let g = (u.ln() / ln_q).floor();
            total = if g >= u64::MAX as f64 {
                u64::MAX
            } else {
                total.saturating_add(g as u64)
            };
        }
        total
    }

    /// Standard normal variate via the polar (Marsaglia) method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::new(state)
    }
}

/// A factory that hands out independent [`SimRng`] streams derived from one
/// master seed.
///
/// ```
/// use sim_stats::RngFactory;
/// let factory = RngFactory::new(42);
/// let mut run0 = factory.stream(0);
/// let mut run1 = factory.stream(1);
/// assert_ne!(run0.next(), run1.next());
/// // Reproducible: the same (master, stream) pair gives the same sequence.
/// assert_eq!(factory.stream(0).next(), RngFactory::new(42).stream(0).next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Create a factory for the given master seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the generator for logical stream `stream`.
    pub fn stream(&self, stream: u64) -> SimRng {
        SimRng::new(derive_seed(self.master, stream))
    }

    /// Derive a sub-factory, e.g. one per experiment cell, so that nested
    /// structures (sweep → cell → repetition) stay reproducible.
    pub fn subfactory(&self, stream: u64) -> RngFactory {
        RngFactory::new(derive_seed(self.master, stream ^ 0x5EED_FAC7_0123_4567))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 (e.g. from the public domain C code).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Seeding with SplitMix64(0) must match the reference
        // xoshiro256++ outputs for that canonical seeding procedure.
        let mut rng = SimRng::new(0);
        // First state words are the first four SplitMix64(0) outputs; check
        // outputs are deterministic and nonzero.
        let a = rng.next();
        let b = rng.next();
        assert_ne!(a, b);
        let mut rng2 = SimRng::new(0);
        assert_eq!(rng2.next(), a);
        assert_eq!(rng2.next(), b);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(7);
        let bound = 10u64;
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            let v = rng.below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±6%.
            assert!((9_400..=10_600).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = SimRng::new(11);
        let p = 0.2;
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += rng.geometric(p);
        }
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p; // = 4.0
        assert!(
            (mean - expect).abs() < 0.1,
            "geometric mean {mean} vs {expect}"
        );
    }

    #[test]
    fn geometric_tiny_p_does_not_collapse() {
        // Below p ~ 1e-16, `1.0 - p == 1.0` exactly; the ln_1p form must
        // still produce draws on the ~1/p scale instead of 0.
        let mut rng = SimRng::new(19);
        for _ in 0..8 {
            let g = rng.geometric(1e-18);
            assert!(g > 1_000_000_000_000, "g={g} collapsed for tiny p");
        }
        // And moderate small p keeps a sane scale (P[G < 1e6] ~ 1e-6).
        for _ in 0..8 {
            let g = rng.geometric(1e-12);
            assert!(g > 1_000_000, "g={g} too small for p=1e-12");
        }
    }

    #[test]
    fn negative_binomial_mean_matches_theory() {
        let mut rng = SimRng::new(23);
        let (r, p) = (16u64, 0.05);
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            sum += rng.negative_binomial(r, p);
        }
        let mean = sum as f64 / n as f64;
        let expect = r as f64 * (1.0 - p) / p; // = 304
        assert!(
            (mean - expect).abs() < expect * 0.02,
            "negative binomial mean {mean} vs {expect}"
        );
    }

    #[test]
    fn negative_binomial_degenerate_cases() {
        let mut rng = SimRng::new(24);
        assert_eq!(rng.negative_binomial(0, 0.3), 0);
        for _ in 0..50 {
            assert_eq!(rng.negative_binomial(5, 1.0), 0);
        }
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(rng.geometric(1.0), 0);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.standard_normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let f = RngFactory::new(99);
        let seq0: Vec<u64> = (0..8).map(|_| 0).collect::<Vec<_>>();
        let _ = seq0;
        let mut a = f.stream(0);
        let mut b = f.stream(1);
        let va: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(va, vb);
        let mut a2 = RngFactory::new(99).stream(0);
        let va2: Vec<u64> = (0..8).map(|_| a2.next()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn rngcore_fill_bytes_covers_remainder() {
        let mut rng = SimRng::new(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn below_u128_small_bounds_match_range() {
        let mut rng = SimRng::new(17);
        for _ in 0..1000 {
            assert!(rng.below_u128(10) < 10);
        }
    }

    #[test]
    fn below_u128_large_bounds_uniform_halves() {
        let mut rng = SimRng::new(18);
        let bound = (u64::MAX as u128) * 3; // forces the 128-bit path
        let mut low = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let v = rng.below_u128(bound);
            assert!(v < bound);
            if v < bound / 2 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn derive_seed_spreads_adjacent_streams() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        // Hamming distance between adjacent stream seeds should be large.
        let dist = (s0 ^ s1).count_ones();
        assert!(dist > 10, "hamming distance {dist}");
    }
}
