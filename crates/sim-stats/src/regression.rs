//! Ordinary least squares and log–log scaling fits.
//!
//! The scaling experiments (E6, E10) measure stabilization times across a
//! parameter sweep and need to extract an empirical exponent or verify a
//! linear relationship against a theoretical bound curve; this module
//! provides the small amount of regression machinery required.

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares fit of `y` on `x`.
///
/// Panics if the slices have different lengths or fewer than two points, or
/// if `x` is constant (the design matrix would be singular).
pub fn ols_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "x is constant; OLS undefined");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // y constant and (by sxx > 0) perfectly predicted by slope 0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
        n: x.len(),
    }
}

/// Fit `y ≈ c · x^α` by OLS on `(ln x, ln y)`; returns the fit in log space,
/// so `slope` is the empirical exponent α and `exp(intercept)` the constant.
///
/// Points with non-positive `x` or `y` are skipped; panics if fewer than two
/// usable points remain.
pub fn loglog_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let mut lx = Vec::with_capacity(x.len());
    let mut ly = Vec::with_capacity(y.len());
    for (&xi, &yi) in x.iter().zip(y) {
        if xi > 0.0 && yi > 0.0 {
            lx.push(xi.ln());
            ly.push(yi.ln());
        }
    }
    ols_fit(&lx, &ly)
}

/// Pearson correlation coefficient between two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let fit = ols_fit(x, y);
    fit.r_squared.sqrt() * fit.slope.signum()
}

/// Mean of pointwise ratios `y[i] / t[i]`, with min and max — the experiment
/// harness uses this to report "measured / bound" tables where a bounded,
/// stable ratio demonstrates matching asymptotics.
///
/// Skips points where `t[i] == 0`. Returns `(mean, min, max)`.
pub fn ratio_stats(y: &[f64], t: &[f64]) -> (f64, f64, f64) {
    assert_eq!(y.len(), t.len());
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (&yi, &ti) in y.iter().zip(t) {
        if ti != 0.0 {
            let r = yi / ti;
            sum += r;
            count += 1;
            min = min.min(r);
            max = max.max(r);
        }
    }
    assert!(count > 0, "no usable ratio points");
    (sum / count as f64, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v - 2.0).collect();
        let f = ols_fit(&x, &y);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 58.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f = ols_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r_squared < 1.0 && f.r_squared > 0.99);
    }

    #[test]
    fn loglog_recovers_power_law() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64 * 10.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v.powf(1.7)).collect();
        let f = loglog_fit(&x, &y);
        assert!((f.slope - 1.7).abs() < 1e-9, "exponent {}", f.slope);
        assert!((f.intercept.exp() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_nonpositive_points() {
        let x = [0.0, 1.0, 2.0, 4.0];
        let y = [5.0, 1.0, 2.0, 4.0];
        let f = loglog_fit(&x, &y);
        assert_eq!(f.n, 3);
        assert!((f.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "x is constant")]
    fn constant_x_panics() {
        ols_fit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_stats_basic() {
        let y = [2.0, 4.0, 6.0];
        let t = [1.0, 2.0, 2.0];
        let (mean, min, max) = ratio_stats(&y, &t);
        assert!((mean - (2.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
        assert_eq!(min, 2.0);
        assert_eq!(max, 3.0);
    }

    #[test]
    fn ratio_stats_skips_zero_denominator() {
        let (mean, _, _) = ratio_stats(&[1.0, 5.0], &[0.0, 1.0]);
        assert_eq!(mean, 5.0);
    }
}
