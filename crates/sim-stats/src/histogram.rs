//! Fixed-width and logarithmic histograms.
//!
//! Used by the experiment harness to summarize stabilization-time
//! distributions and by the statistical equivalence tests (E12) that compare
//! simulator variants.

/// A histogram with equal-width bins over `[lo, hi)`; values outside the
/// range are counted in underflow/overflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Pearson χ² statistic against another histogram with identical binning,
    /// over bins where the pooled expectation is positive. Used for
    /// distributional-equivalence checks between simulator variants.
    ///
    /// Returns `(chi2, degrees_of_freedom)`.
    pub fn chi2_against(&self, other: &Histogram) -> (f64, usize) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        assert_eq!((self.lo, self.hi), (other.lo, other.hi), "range mismatch");
        let n1: f64 = self.total() as f64;
        let n2: f64 = other.total() as f64;
        let mut chi2 = 0.0;
        let mut dof = 0usize;
        let cells = self
            .bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| (a as f64, b as f64))
            .chain([
                (self.underflow as f64, other.underflow as f64),
                (self.overflow as f64, other.overflow as f64),
            ]);
        for (a, b) in cells {
            let pooled = a + b;
            if pooled == 0.0 {
                continue;
            }
            // Two-sample chi-square with unequal sample sizes.
            let k1 = (n2 / n1).sqrt();
            let k2 = (n1 / n2).sqrt();
            chi2 += (k1 * a - k2 * b).powi(2) / pooled;
            dof += 1;
        }
        (chi2, dof.saturating_sub(1))
    }
}

/// A histogram with logarithmically spaced bins, for heavy-tailed samples
/// such as hitting times. Bin `i` covers `[base^i, base^(i+1))` scaled by
/// `scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    base: f64,
    scale: f64,
    bins: Vec<u64>,
    zero_or_negative: u64,
}

impl LogHistogram {
    /// Create a log histogram with the given `base` (> 1), `scale` (> 0) and
    /// number of bins.
    pub fn new(base: f64, scale: f64, bins: usize) -> Self {
        assert!(base > 1.0 && scale > 0.0 && bins > 0);
        LogHistogram {
            base,
            scale,
            bins: vec![0; bins],
            zero_or_negative: 0,
        }
    }

    /// Record one observation. Non-positive values go to a dedicated bucket;
    /// values beyond the last bin clamp into it.
    pub fn add(&mut self, x: f64) {
        if x <= 0.0 {
            self.zero_or_negative += 1;
            return;
        }
        let idx = (x / self.scale).log(self.base).floor();
        let idx = if idx < 0.0 {
            0
        } else {
            (idx as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
    }

    /// Record one non-negative integer observation. For the canonical
    /// event-histogram parameters (`base = 2`, `scale = 1`) the bin index
    /// is the bit length, computed without any floating-point log — the
    /// hot path for per-event engine harvests. Other parameterizations
    /// fall back to [`LogHistogram::add`].
    #[inline]
    pub fn add_u64(&mut self, x: u64) {
        if x == 0 {
            self.zero_or_negative += 1;
            return;
        }
        if self.base == 2.0 && self.scale == 1.0 {
            let idx = ((63 - x.leading_zeros()) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        } else {
            self.add(x as f64);
        }
    }

    /// The logarithmic base.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The scale factor (bin `i` covers `[scale·baseⁱ, scale·baseⁱ⁺¹)`).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of non-positive observations.
    pub fn non_positive(&self) -> u64 {
        self.zero_or_negative
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.zero_or_negative
    }

    /// The lower edge of bin `i`: `scale · baseⁱ`.
    pub fn bin_lower_edge(&self, i: usize) -> f64 {
        self.scale * self.base.powi(i as i32)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the recorded sample, resolved to
    /// bin lower edges: the smallest bin edge whose cumulative count
    /// reaches `q · total`. Non-positive observations count as `0.0` and
    /// sort below every bin. Returns `0.0` on an empty histogram.
    ///
    /// Bin-edge resolution makes the quantile deterministic and
    /// schema-stable across runs (no interpolation into a bin whose
    /// interior distribution is unknown), which is what the perf-trend
    /// diffing relies on: a quantile only moves when the sample mass
    /// actually crosses a bin boundary.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level out of [0, 1]");
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        // Rank of the order statistic to locate, 1-based and clamped so
        // q = 1.0 resolves to the maximum-occupied bin.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = self.zero_or_negative;
        if rank <= cum {
            return 0.0;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if rank <= cum {
                return self.bin_lower_edge(i);
            }
        }
        // Unreachable: the cumulative sum over all buckets equals total.
        self.bin_lower_edge(self.bins.len() - 1)
    }

    /// Median (bin-edge resolution; see [`LogHistogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bin-edge resolution).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bin-edge resolution).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Rebuild a histogram from previously captured counts (checkpoint
    /// restore). The inverse of reading [`LogHistogram::counts`] /
    /// [`LogHistogram::non_positive`] off a histogram with the same
    /// parameters. Returns `None` when the parameters are invalid
    /// (`base ≤ 1`, `scale ≤ 0`, or no bins) — restore paths report that
    /// as corruption instead of panicking.
    pub fn from_parts(base: f64, scale: f64, bins: Vec<u64>, non_positive: u64) -> Option<Self> {
        let valid = base > 1.0 && scale > 0.0 && !bins.is_empty();
        if !valid {
            return None;
        }
        Some(LogHistogram {
            base,
            scale,
            bins,
            zero_or_negative: non_positive,
        })
    }

    /// Merge another histogram's counts into this one. Panics unless the
    /// two histograms share base, scale, and bin count — merging across
    /// binnings would silently misattribute mass.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            (self.base, self.scale, self.bins.len()),
            (other.base, other.scale, other.bins.len()),
            "cannot merge log histograms with different binnings"
        );
        for (a, &b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.zero_or_negative += other.zero_or_negative;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(5.0);
        h.add(0.999);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 3.0));
        assert_eq!(h.bin_edges(3), (5.0, 6.0));
    }

    #[test]
    fn boundary_value_lands_in_correct_bin() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.1); // exactly a bin edge -> bin 1
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn chi2_of_identical_samples_is_small() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        for i in 0..1000 {
            let v = (i % 10) as f64 + 0.5;
            a.add(v);
            b.add(v);
        }
        let (chi2, dof) = a.chi2_against(&b);
        assert!(chi2 < 1e-9, "chi2 {chi2}");
        assert!(dof > 0);
    }

    #[test]
    fn chi2_detects_different_distributions() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        for i in 0..1000 {
            a.add((i % 5) as f64 + 0.25); // mass on [0,5)
            b.add((i % 5) as f64 + 5.25); // mass on [5,10)
        }
        let (chi2, _) = a.chi2_against(&b);
        assert!(chi2 > 100.0, "chi2 {chi2}");
    }

    #[test]
    fn log_quantiles_resolve_to_bin_edges() {
        let mut h = LogHistogram::new(2.0, 1.0, 16);
        // 90 observations in [1,2), 9 in [8,16), 1 in [128,256).
        for _ in 0..90 {
            h.add(1.0);
        }
        for _ in 0..9 {
            h.add(9.0);
        }
        h.add(200.0);
        assert_eq!(h.p50(), 1.0);
        assert_eq!(h.p90(), 1.0); // rank 90 is the last [1,2) observation
        assert_eq!(h.quantile(0.95), 8.0);
        assert_eq!(h.p99(), 8.0);
        assert_eq!(h.quantile(1.0), 128.0);
        assert_eq!(h.quantile(0.0), 1.0); // rank clamps to 1
    }

    #[test]
    fn log_quantile_counts_zero_bucket_below_every_bin() {
        let mut h = LogHistogram::new(2.0, 1.0, 8);
        for _ in 0..60 {
            h.add_u64(0);
        }
        for _ in 0..40 {
            h.add_u64(5);
        }
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p90(), 4.0);
        assert_eq!(LogHistogram::new(2.0, 1.0, 8).quantile(0.5), 0.0);
    }

    #[test]
    fn log_quantiles_are_monotone_in_q() {
        // Property: for any recorded sample, q ↦ quantile(q) is
        // non-decreasing, bounded by the occupied bin edges, and p50/p90/
        // p99 agree with direct quantile calls.
        let mut rng = crate::rng::SimRng::new(1234);
        for _ in 0..20 {
            let mut h = LogHistogram::new(2.0, 1.0, 48);
            for _ in 0..500 {
                h.add_u64(rng.below(100_000));
            }
            let qs: Vec<f64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
            for w in qs.windows(2) {
                assert!(w[0] <= w[1], "quantile not monotone: {qs:?}");
            }
            assert_eq!(h.p50(), h.quantile(0.5));
            assert_eq!(h.p90(), h.quantile(0.9));
            assert_eq!(h.p99(), h.quantile(0.99));
        }
    }

    #[test]
    fn add_u64_matches_float_add_binning() {
        // The bit-length fast path must land every integer in the same
        // bin as the general float path.
        let mut fast = LogHistogram::new(2.0, 1.0, 48);
        let mut slow = LogHistogram::new(2.0, 1.0, 48);
        let mut rng = crate::rng::SimRng::new(7);
        for _ in 0..2_000 {
            let x = rng.below(1 << 40);
            fast.add_u64(x);
            if x == 0 {
                slow.add(0.0);
            } else {
                slow.add(x as f64);
            }
        }
        // Spot the exact boundaries too.
        for x in [1u64, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            fast.add_u64(x);
            slow.add(x as f64);
        }
        assert_eq!(fast.counts(), slow.counts());
        assert_eq!(fast.non_positive(), slow.non_positive());
    }

    #[test]
    fn merge_is_count_addition() {
        // Property: merging two histograms equals histogramming the
        // concatenated sample, and quantiles of the merge are bracketed
        // by the inputs' occupied range.
        let mut rng = crate::rng::SimRng::new(99);
        for _ in 0..10 {
            let mut a = LogHistogram::new(2.0, 1.0, 32);
            let mut b = LogHistogram::new(2.0, 1.0, 32);
            let mut both = LogHistogram::new(2.0, 1.0, 32);
            for _ in 0..300 {
                let x = rng.below(10_000);
                a.add_u64(x);
                both.add_u64(x);
            }
            for _ in 0..200 {
                let x = rng.below(1_000_000);
                b.add_u64(x);
                both.add_u64(x);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            assert_eq!(merged.counts(), both.counts());
            assert_eq!(merged.non_positive(), both.non_positive());
            assert_eq!(merged.total(), a.total() + b.total());
            assert_eq!(merged.p90(), both.p90());
        }
        // Merging an empty histogram is the identity.
        let mut a = LogHistogram::new(2.0, 1.0, 32);
        a.add_u64(17);
        let before = a.clone();
        a.merge(&LogHistogram::new(2.0, 1.0, 32));
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "different binnings")]
    fn merge_rejects_mismatched_binnings() {
        let mut a = LogHistogram::new(2.0, 1.0, 32);
        a.merge(&LogHistogram::new(2.0, 1.0, 16));
    }

    #[test]
    fn log_histogram_buckets_powers() {
        let mut h = LogHistogram::new(2.0, 1.0, 8);
        h.add(1.5); // [1,2) -> bin 0
        h.add(3.0); // [2,4) -> bin 1
        h.add(100.0); // [64,128) -> bin 6
        h.add(1e9); // clamps into last bin
        h.add(0.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[6], 1);
        assert_eq!(h.counts()[7], 1);
        assert_eq!(h.non_positive(), 1);
        assert_eq!(h.total(), 5);
    }
}
