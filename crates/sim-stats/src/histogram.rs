//! Fixed-width and logarithmic histograms.
//!
//! Used by the experiment harness to summarize stabilization-time
//! distributions and by the statistical equivalence tests (E12) that compare
//! simulator variants.

/// A histogram with equal-width bins over `[lo, hi)`; values outside the
/// range are counted in underflow/overflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Pearson χ² statistic against another histogram with identical binning,
    /// over bins where the pooled expectation is positive. Used for
    /// distributional-equivalence checks between simulator variants.
    ///
    /// Returns `(chi2, degrees_of_freedom)`.
    pub fn chi2_against(&self, other: &Histogram) -> (f64, usize) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        assert_eq!((self.lo, self.hi), (other.lo, other.hi), "range mismatch");
        let n1: f64 = self.total() as f64;
        let n2: f64 = other.total() as f64;
        let mut chi2 = 0.0;
        let mut dof = 0usize;
        let cells = self
            .bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| (a as f64, b as f64))
            .chain([
                (self.underflow as f64, other.underflow as f64),
                (self.overflow as f64, other.overflow as f64),
            ]);
        for (a, b) in cells {
            let pooled = a + b;
            if pooled == 0.0 {
                continue;
            }
            // Two-sample chi-square with unequal sample sizes.
            let k1 = (n2 / n1).sqrt();
            let k2 = (n1 / n2).sqrt();
            chi2 += (k1 * a - k2 * b).powi(2) / pooled;
            dof += 1;
        }
        (chi2, dof.saturating_sub(1))
    }
}

/// A histogram with logarithmically spaced bins, for heavy-tailed samples
/// such as hitting times. Bin `i` covers `[base^i, base^(i+1))` scaled by
/// `scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    base: f64,
    scale: f64,
    bins: Vec<u64>,
    zero_or_negative: u64,
}

impl LogHistogram {
    /// Create a log histogram with the given `base` (> 1), `scale` (> 0) and
    /// number of bins.
    pub fn new(base: f64, scale: f64, bins: usize) -> Self {
        assert!(base > 1.0 && scale > 0.0 && bins > 0);
        LogHistogram {
            base,
            scale,
            bins: vec![0; bins],
            zero_or_negative: 0,
        }
    }

    /// Record one observation. Non-positive values go to a dedicated bucket;
    /// values beyond the last bin clamp into it.
    pub fn add(&mut self, x: f64) {
        if x <= 0.0 {
            self.zero_or_negative += 1;
            return;
        }
        let idx = (x / self.scale).log(self.base).floor();
        let idx = if idx < 0.0 {
            0
        } else {
            (idx as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of non-positive observations.
    pub fn non_positive(&self) -> u64 {
        self.zero_or_negative
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.zero_or_negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(5.0);
        h.add(0.999);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_edges(0), (2.0, 3.0));
        assert_eq!(h.bin_edges(3), (5.0, 6.0));
    }

    #[test]
    fn boundary_value_lands_in_correct_bin() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.add(0.1); // exactly a bin edge -> bin 1
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn chi2_of_identical_samples_is_small() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        for i in 0..1000 {
            let v = (i % 10) as f64 + 0.5;
            a.add(v);
            b.add(v);
        }
        let (chi2, dof) = a.chi2_against(&b);
        assert!(chi2 < 1e-9, "chi2 {chi2}");
        assert!(dof > 0);
    }

    #[test]
    fn chi2_detects_different_distributions() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        for i in 0..1000 {
            a.add((i % 5) as f64 + 0.25); // mass on [0,5)
            b.add((i % 5) as f64 + 5.25); // mass on [5,10)
        }
        let (chi2, _) = a.chi2_against(&b);
        assert!(chi2 > 100.0, "chi2 {chi2}");
    }

    #[test]
    fn log_histogram_buckets_powers() {
        let mut h = LogHistogram::new(2.0, 1.0, 8);
        h.add(1.5); // [1,2) -> bin 0
        h.add(3.0); // [2,4) -> bin 1
        h.add(100.0); // [64,128) -> bin 6
        h.add(1e9); // clamps into last bin
        h.add(0.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[6], 1);
        assert_eq!(h.counts()[7], 1);
        assert_eq!(h.non_positive(), 1);
        assert_eq!(h.total(), 5);
    }
}
