//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use sim_stats::ks::{ks_critical_value, ks_statistic};
use sim_stats::rng::{derive_seed, RngFactory, SimRng};
use sim_stats::summary::{quantile, Summary};
use sim_stats::timeseries::{Series, TimeSeries};

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e9f64..1e9f64).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford summary equals the two-pass computation on any sample.
    #[test]
    fn summary_matches_two_pass(xs in proptest::collection::vec(finite_f64(), 2..200)) {
        let s = Summary::of(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.sample_variance() - var).abs() / scale.powi(2) < 1e-6);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging any split of a sample equals summarizing the whole.
    #[test]
    fn summary_merge_associative(
        xs in proptest::collection::vec(finite_f64(), 2..200),
        cut in 0usize..200,
    ) {
        let cut = cut % xs.len();
        let (a, b) = xs.split_at(cut);
        let mut sa = Summary::of(a);
        sa.merge(&Summary::of(b));
        let s = Summary::of(&xs);
        let scale = 1.0 + s.mean().abs();
        prop_assert!((sa.mean() - s.mean()).abs() / scale < 1e-9);
        prop_assert_eq!(sa.count(), s.count());
        prop_assert_eq!(sa.min(), s.min());
        prop_assert_eq!(sa.max(), s.max());
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_monotone_and_bounded(xs in proptest::collection::vec(finite_f64(), 1..100)) {
        let s = Summary::of(&xs);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile(&xs, i as f64 / 10.0);
            prop_assert!(q >= last - 1e-12);
            prop_assert!(q >= s.min() - 1e-12 && q <= s.max() + 1e-12);
            last = q;
        }
    }

    /// KS statistic is in [0,1], symmetric, and zero against itself.
    #[test]
    fn ks_statistic_properties(
        a in proptest::collection::vec(finite_f64(), 1..60),
        b in proptest::collection::vec(finite_f64(), 1..60),
    ) {
        let d = ks_statistic(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        prop_assert!((d - ks_statistic(&b, &a)).abs() < 1e-12);
        prop_assert!(ks_statistic(&a, &a) < 1e-12);
        prop_assert!(ks_critical_value(a.len(), b.len(), 0.05) > 0.0);
    }

    /// Distinct RNG streams never collide on their first outputs, and the
    /// same stream is perfectly reproducible.
    #[test]
    fn rng_streams_distinct_and_reproducible(master in any::<u64>(), s1 in 0u64..1000, s2 in 0u64..1000) {
        prop_assume!(s1 != s2);
        let f = RngFactory::new(master);
        let mut a = f.stream(s1);
        let mut b = f.stream(s2);
        let va: Vec<u64> = (0..4).map(|_| a.next()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next()).collect();
        prop_assert_ne!(&va, &vb, "streams {} and {} collided", s1, s2);
        let mut a2 = RngFactory::new(master).stream(s1);
        let va2: Vec<u64> = (0..4).map(|_| a2.next()).collect();
        prop_assert_eq!(va, va2);
        // derive_seed differs from master-with-different-stream.
        prop_assert_ne!(derive_seed(master, s1), derive_seed(master, s2));
    }

    /// `below` is always within bounds for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// below_u128 is always within bounds, including > u64 bounds.
    #[test]
    fn rng_below_u128_in_range(seed in any::<u64>(), hi in 1u128..(u128::MAX / 2)) {
        let mut rng = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below_u128(hi) < hi);
        }
    }

    /// Downsampling preserves endpoints and per-series alignment.
    #[test]
    fn timeseries_downsample_invariants(
        len in 2usize..300,
        max_points in 2usize..50,
    ) {
        let mut ts = TimeSeries::with_time((0..len).map(|i| i as f64).collect());
        ts.push_series(Series::new("v", (0..len).map(|i| (i * i) as f64).collect()));
        let d = ts.downsample(max_points);
        prop_assert!(d.len() <= max_points.max(2));
        prop_assert_eq!(d.time[0], 0.0);
        prop_assert_eq!(*d.time.last().unwrap(), (len - 1) as f64);
        prop_assert_eq!(d.get("v").unwrap().values.len(), d.len());
        // Time stays strictly increasing.
        prop_assert!(d.time.windows(2).all(|w| w[0] < w[1]));
    }

    /// CSV rendering always has header + one line per point, and each data
    /// line has the same number of commas.
    #[test]
    fn timeseries_csv_shape(len in 1usize..50) {
        let mut ts = TimeSeries::with_time((0..len).map(|i| i as f64).collect());
        ts.push_series(Series::new("a", vec![1.0; len]));
        ts.push_series(Series::new("b", vec![2.0; len]));
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), len + 1);
        let commas = lines[0].matches(',').count();
        for l in &lines {
            prop_assert_eq!(l.matches(',').count(), commas);
        }
    }
}
