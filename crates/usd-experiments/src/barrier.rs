//! E13 — probing the lower-bound barrier with synchronization + memory.
//!
//! The paper's conclusion (§4) asks at which point slightly more memory
//! and some synchronization break the Ω(k·log(√n/(k log n))) barrier.
//! This experiment runs the plain (unsynchronized) USD head to head with
//! the idealized elimination-tournament USD
//! ([`usd_baselines::TournamentUsd`]: perfect phase barriers, O(log k)
//! extra state) across a k sweep.
//!
//! **Finding (the honest answer at simulable scales):** the tournament's
//! *scaling* in k is indeed logarithmic (⌈log₂ k⌉ phases — the barrier
//! shape is broken), but its *absolute* time does not beat plain USD at
//! practical (n, k): every non-majority match is a dead heat costing
//! Θ(log n) parallel time per phase, while plain USD's measured constant
//! per opinion is small (≈ 3, cf. Figure 1's 90 parallel-time units at
//! k = 27). The asymptotic crossover needs k ≫ log² n *inside* the
//! admissible regime k = o(√n/log n), i.e. populations far beyond
//! simulation. So synchronization + O(log k) memory change the growth
//! law immediately, but pay a multiplicative log n toll that dominates
//! at realistic sizes — a quantitative sharpening of the open question.

use crate::cli::ExpArgs;
use crate::report::Report;
use crate::runner;
use sim_stats::regression::loglog_fit;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use usd_baselines::TournamentUsd;
use usd_core::backend::Backend;
use usd_core::init::InitialConfigBuilder;
use usd_core::theory::Bounds;
use usd_core::RunSpec;

/// One E13 sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct BarrierCell {
    /// Number of opinions.
    pub k: usize,
    /// Plain USD mean parallel time.
    pub usd_parallel: f64,
    /// Tournament mean parallel time (span: phases overlap on disjoint
    /// agents).
    pub tournament_parallel: f64,
    /// Tournament plurality win rate.
    pub tournament_win_rate: f64,
    /// Plain USD plurality win rate.
    pub usd_win_rate: f64,
}

/// Measure one (n, k) cell for both protocols; the plain-USD side runs on
/// the chosen generic backend.
pub fn barrier_cell(
    backend: Backend,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> BarrierCell {
    let config = InitialConfigBuilder::new(n, k).figure1();

    let usd: Vec<(f64, bool)> = runner::repeat(master_seed ^ 0xB1, seeds, |_r, rng| {
        let result = RunSpec::new(&config)
            .backend(backend)
            .budget(crate::fig1::default_budget(n, k))
            .run(rng);
        (result.parallel_time(n), result.plurality_won())
    });

    let tournament: Vec<(f64, bool)> = runner::repeat(master_seed ^ 0xB2, seeds, |_r, rng| {
        let t = TournamentUsd::new(config.clone());
        let result = t.run(rng);
        (result.parallel_time, result.winner == Some(0))
    });

    let mean = |v: &[(f64, bool)]| Summary::of(&v.iter().map(|x| x.0).collect::<Vec<_>>()).mean();
    let wins = |v: &[(f64, bool)]| v.iter().filter(|x| x.1).count() as f64 / v.len() as f64;
    BarrierCell {
        k,
        usd_parallel: mean(&usd),
        tournament_parallel: mean(&tournament),
        tournament_win_rate: wins(&tournament),
        usd_win_rate: wins(&usd),
    }
}

/// E13 report.
pub fn barrier_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n.min(20_000), 4_000);
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let ks = match args.k {
        Some(k) => vec![k],
        None => {
            let mut ks = vec![4usize, 8, 16, 32];
            ks.retain(|&k| (k as u64) * 8 <= n);
            ks
        }
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        barrier_cell(backend, n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E13 / Breaking the barrier (paper §4 open question), n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Plain USD (no synchronization, k+1 states) vs an idealized \
         elimination tournament (perfect phase barriers, O(log k) extra \
         state per node). The tournament needs only ceil(log2 k) phases, \
         so its growth in k is logarithmic — the barrier's *shape* is \
         broken — but each phase costs Theta(log n) (dead-heat matches), \
         and at simulable scales that toll exceeds plain USD's small \
         constants. Watch the scaling exponents, not the absolute times.",
    );
    let mut t = TextTable::new(&[
        "k",
        "USD T parallel",
        "tournament T parallel",
        "speedup",
        "lower bound (USD)",
        "USD wins",
        "tournament wins",
    ]);
    let mut k_vals = Vec::new();
    let mut usd_vals = Vec::new();
    let mut tour_vals = Vec::new();
    for c in &cells {
        k_vals.push(c.k as f64);
        usd_vals.push(c.usd_parallel);
        tour_vals.push(c.tournament_parallel);
        t.row_owned(vec![
            c.k.to_string(),
            fmt_sig(c.usd_parallel, 4),
            fmt_sig(c.tournament_parallel, 4),
            fmt_sig(c.usd_parallel / c.tournament_parallel.max(1e-9), 3),
            fmt_sig(Bounds::new(n, c.k).lower_bound_parallel(), 4),
            fmt_sig(c.usd_win_rate, 3),
            fmt_sig(c.tournament_win_rate, 3),
        ]);
    }
    report.table("barrier", t);
    if k_vals.len() >= 2 {
        let usd_fit = loglog_fit(&k_vals, &usd_vals);
        let tour_fit = loglog_fit(&k_vals, &tour_vals);
        let phases_small = (k_vals[0]).log2().ceil();
        let phases_large = (k_vals[k_vals.len() - 1]).log2().ceil();
        report.text(format!(
            "measured scaling exponents in k: plain USD {:.2}, tournament \
             {:.2}. Structurally the tournament runs {} -> {} phases over \
             this k range while plain USD contends with k times more \
             opinions; at simulable n the admissible-k window is narrow \
             (the theorem needs k = o(sqrt n/log n)), compressing both \
             exponents, and the tournament's Theta(log n) per-phase toll \
             keeps its absolute time above plain USD's. The barrier \
             question's answer at these scales: synchronization + O(log k) \
             memory change the phase structure but do not yet pay off.",
            usd_fit.slope, tour_fit.slope, phases_small, phases_large
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_protocols_correct_and_comparable_at_moderate_k() {
        let cell = barrier_cell(Backend::SkipAhead, 8_000, 16, 3, 7);
        assert!(cell.usd_win_rate > 0.5, "{cell:?}");
        assert!(cell.tournament_win_rate > 0.5, "{cell:?}");
        // The E13 finding: at simulable scales the tournament does not
        // beat plain USD outright, but stays within a constant factor
        // (its log n per-phase toll vs USD's small constants).
        let ratio = cell.tournament_parallel / cell.usd_parallel;
        assert!(
            (0.2..=20.0).contains(&ratio),
            "unexpected tournament/USD ratio {ratio}: {cell:?}"
        );
    }

    #[test]
    fn tournament_growth_in_k_is_sublinear() {
        // The structural claim that survives at simulable scales: going
        // from k = 8 to k = 48 multiplies plain USD's opinion count by 6
        // but only adds 3 tournament phases (3 → 6, a factor of 2 in the
        // phase count). The tournament's time must therefore grow by far
        // less than the 6x opinion-count factor.
        let c8 = barrier_cell(Backend::SkipAhead, 8_000, 8, 3, 8);
        let c48 = barrier_cell(Backend::SkipAhead, 8_000, 48, 3, 8);
        let growth = c48.tournament_parallel / c8.tournament_parallel;
        assert!(
            growth < 3.5,
            "tournament time grew {growth:.2}x from k=8 to k=48; expected ~2x (phase count)"
        );
        assert!(c48.tournament_win_rate > 0.5);
    }

    #[test]
    fn report_renders_quick() {
        let args = ExpArgs {
            quick: true,
            seeds: 2,
            ..ExpArgs::default()
        };
        let s = barrier_report(&args).render();
        assert!(s.contains("Breaking the barrier"));
        assert!(s.contains("speedup"));
    }
}
