//! E8/E9/E11/E12 — robustness, model, baseline, and engine comparisons.
//!
//! * **E8 (bias sensitivity)**: how the majority's win probability and the
//!   stabilization time depend on the initial bias, sweeping from 0
//!   through √n to the maximum admissible ω(√(n log n)) bias — the
//!   regime boundary the paper's conclusion discusses.
//! * **E9 (population protocol vs Gossip)**: the same initial
//!   configurations run in both models, with the per-node opinion-change
//!   statistics that §1.2 argues make the models qualitatively different.
//! * **E11 (baseline comparison)**: USD vs the four-state exact-majority
//!   protocol, voter dynamics, 3-majority, and synchronized USD.
//! * **E12 (simulator ablation)**: distributional equivalence and relative
//!   speed of the three exact engines (DESIGN.md §7).
//!
//! The USD measurements in E8 and E11 run through the generic backend
//! layer and honor `--backend`; E12 is inherently engine-specific (it *is*
//! the engine comparison) and E9 needs the literal per-agent model for its
//! per-node flip statistic, so both pin their engines.

use crate::cli::ExpArgs;
use crate::report::Report;
use crate::runner;
use pop_proto::{
    AgentSimulator, BatchGraphSimulator, BatchSimulator, CliqueScheduler, CountSimulator,
    GraphSimulator, Simulator,
};
use sim_stats::histogram::Histogram;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use usd_baselines::{FourStateMajority, GossipUsd, SynchronizedUsd, ThreeMajority, VoterDynamics};
use usd_core::analysis::monochromatic_distance;
use usd_core::backend::Backend;
use usd_core::dynamics::{SequentialUsd, SkipAheadUsd, UsdSimulator};
use usd_core::init::InitialConfigBuilder;
use usd_core::protocol::UndecidedStateDynamics;
use usd_core::stabilization::stabilize;
use usd_core::theory;
use usd_core::RunSpec;
use usd_core::UsdConfig;

// ---------------------------------------------------------------------------
// E8: bias sensitivity
// ---------------------------------------------------------------------------

/// One bias-sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct BiasCell {
    /// The initial bias.
    pub bias: u64,
    /// Bias expressed in √(n ln n) units.
    pub bias_units: f64,
    /// Majority win rate across seeds.
    pub win_rate: f64,
    /// Mean parallel stabilization time.
    pub parallel_mean: f64,
}

/// The default bias grid for E8 at `(n, k)`.
pub fn bias_grid(n: u64, k: usize) -> Vec<u64> {
    let sqrt_n = (n as f64).sqrt();
    let unit = theory::sqrt_n_log_n(n) as f64;
    let max_adm = theory::max_admissible_bias(n, k) as f64;
    let mut grid: Vec<u64> = [
        0.0,
        sqrt_n / 4.0,
        sqrt_n / 2.0,
        sqrt_n,
        unit / 2.0,
        unit,
        2.0 * unit,
        max_adm,
    ]
    .iter()
    .map(|&b| b.round() as u64)
    .collect();
    grid.sort_unstable();
    grid.dedup();
    grid.retain(|&b| b + (k as u64) <= n);
    grid
}

/// Run E8 for one bias value on the chosen backend.
pub fn bias_cell(
    backend: Backend,
    n: u64,
    k: usize,
    bias: u64,
    seeds: u64,
    master_seed: u64,
) -> BiasCell {
    let config = InitialConfigBuilder::new(n, k).equal_minorities(bias);
    let outcomes: Vec<(bool, f64)> = runner::repeat(master_seed ^ bias, seeds, |_rep, rng| {
        let result = RunSpec::new(&config)
            .backend(backend)
            .budget(crate::fig1::default_budget(n, k))
            .run(rng);
        (result.plurality_won(), result.parallel_time(n))
    });
    let wins = outcomes.iter().filter(|o| o.0).count() as f64;
    let times: Vec<f64> = outcomes.iter().map(|o| o.1).collect();
    BiasCell {
        bias,
        bias_units: bias as f64 / theory::sqrt_n_log_n(n) as f64,
        win_rate: wins / outcomes.len() as f64,
        parallel_mean: Summary::of(&times).mean(),
    }
}

/// E8 report.
pub fn bias_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(8_000));
    let k = args.k_or(8.min((n / 100) as usize).max(2));
    let seeds = args.unless_quick(args.seeds.max(10), 3);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let grid = bias_grid(n, k);
    let cells = runner::sweep(args.seed, grid, |_, &b, _| {
        bias_cell(backend, n, k, b, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E8 / Bias sensitivity, n={}, k={k}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "With bias O(sqrt n) the minority can win with noticeable \
         probability [Clementi et al.]; from Omega(sqrt(n ln n)) the \
         majority wins w.h.p. [Amir et al.] — and per this paper, even \
         biases omega(sqrt(n ln n)) do not make stabilization fast.",
    );
    let mut t = TextTable::new(&[
        "bias",
        "bias/sqrt(n ln n)",
        "majority win rate",
        "T parallel",
    ]);
    for c in &cells {
        t.row_owned(vec![
            fmt_thousands(c.bias),
            fmt_sig(c.bias_units, 3),
            fmt_sig(c.win_rate, 3),
            fmt_sig(c.parallel_mean, 4),
        ]);
    }
    report.table("bias_sensitivity", t);
    report
}

// ---------------------------------------------------------------------------
// E9: population protocol vs Gossip
// ---------------------------------------------------------------------------

/// One PP-vs-Gossip cell.
#[derive(Debug, Clone, Copy)]
pub struct GossipCell {
    /// Number of opinions.
    pub k: usize,
    /// Monochromatic distance of the initial configuration.
    pub md: f64,
    /// Mean PP parallel stabilization time.
    pub pp_parallel: f64,
    /// Max per-node state flips within any one parallel round (PP model).
    pub pp_max_flips: u64,
    /// Mean Gossip rounds to stabilization.
    pub gossip_rounds: f64,
    /// Gossip bound scale md(c)·ln n.
    pub gossip_bound_scale: f64,
}

/// Run E9 for one k.
pub fn gossip_cell(n: u64, k: usize, seeds: u64, master_seed: u64) -> GossipCell {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let md = monochromatic_distance(&config);

    // PP side: agent-level simulation counting, per parallel round (a
    // window of n interactions), how many times each node changed state —
    // the §1.2 statistic. A node can interact several times within one
    // window, so flips per round can exceed 1 (impossible in Gossip).
    let pp: Vec<(f64, u64)> = runner::repeat(master_seed ^ 0x99, seeds, |_rep, rng| {
        let proto = UndecidedStateDynamics::new(k);
        let mut sim = AgentSimulator::from_config(
            proto,
            CliqueScheduler::new(n as usize),
            &config.to_count_config(),
        );
        let mut flips = vec![0u32; n as usize];
        let mut max_flips = 0u32;
        let budget = crate::fig1::default_budget(n, k);
        while sim.interactions() < budget && !sim.is_usd_silent(k) {
            for _ in 0..n {
                let rec = sim.step_recorded(rng);
                if rec.initiator_changed() {
                    flips[rec.initiator] += 1;
                    max_flips = max_flips.max(flips[rec.initiator]);
                }
                if rec.responder_changed() {
                    flips[rec.responder] += 1;
                    max_flips = max_flips.max(flips[rec.responder]);
                }
            }
            flips.iter_mut().for_each(|f| *f = 0);
        }
        (sim.parallel_time(), max_flips as u64)
    });

    // Gossip side.
    let gossip: Vec<f64> = runner::repeat(master_seed ^ 0xAA, seeds, |_rep, rng| {
        let mut sim = GossipUsd::new(&config);
        let (rounds, _) = sim.run(rng, 100_000);
        rounds as f64
    });

    GossipCell {
        k,
        md,
        pp_parallel: Summary::of(&pp.iter().map(|x| x.0).collect::<Vec<_>>()).mean(),
        pp_max_flips: pp.iter().map(|x| x.1).max().unwrap_or(0),
        gossip_rounds: Summary::of(&gossip).mean(),
        gossip_bound_scale: md * (n as f64).ln(),
    }
}

/// Helper trait: USD silence check for the generic agent simulator.
trait UsdSilence {
    fn is_usd_silent(&self, k: usize) -> bool;
}

impl UsdSilence for AgentSimulator<UndecidedStateDynamics, CliqueScheduler> {
    fn is_usd_silent(&self, k: usize) -> bool {
        let counts = self.counts();
        let n: u64 = counts.iter().sum();
        counts[k] == n || (counts[k] == 0 && counts[..k].iter().filter(|&&c| c > 0).count() <= 1)
    }
}

/// E9 report.
pub fn gossip_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n.min(20_000), 3_000);
    let seeds = args.unless_quick(args.seeds, 2);
    let ks = match args.k {
        Some(k) => vec![k],
        None => vec![2, 4, 8],
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        gossip_cell(n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E9 / Population protocol vs Gossip model, n={}",
        fmt_thousands(n)
    ));
    report.text(
        "Section 1.2: in the Gossip model every node updates once per \
         round, while in the PP model a node can change state several \
         times within n interactions ('max flips' column — values > 1 are \
         impossible in Gossip by construction). Gossip stabilization obeys \
         the O(md(c) log n) bound of Becchetti et al.",
    );
    let mut t = TextTable::new(&[
        "k",
        "md(c)",
        "PP T parallel",
        "PP max flips/round",
        "Gossip rounds",
        "md ln n",
        "Gossip/(md ln n)",
    ]);
    for c in &cells {
        t.row_owned(vec![
            c.k.to_string(),
            fmt_sig(c.md, 4),
            fmt_sig(c.pp_parallel, 4),
            c.pp_max_flips.to_string(),
            fmt_sig(c.gossip_rounds, 4),
            fmt_sig(c.gossip_bound_scale, 4),
            fmt_sig(c.gossip_rounds / c.gossip_bound_scale, 3),
        ]);
    }
    report.table("gossip_vs_pp", t);
    report
}

// ---------------------------------------------------------------------------
// E11: baseline comparison
// ---------------------------------------------------------------------------

/// One baseline-protocol row.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Protocol name.
    pub name: &'static str,
    /// Time unit: parallel time or synchronous rounds.
    pub unit: &'static str,
    /// Mean time to stabilization.
    pub time_mean: f64,
    /// Fraction of runs in which the initial plurality won.
    pub correct_rate: f64,
}

/// Run E11 at `(n, k)` with the Figure-1 bias; the USD row runs on the
/// chosen generic backend.
pub fn baseline_rows(
    backend: Backend,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> Vec<BaselineRow> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let mut rows = Vec::new();

    // USD (population protocol).
    let usd: Vec<(f64, bool)> = runner::repeat(master_seed ^ 1, seeds, |_r, rng| {
        let result = RunSpec::new(&config)
            .backend(backend)
            .budget(crate::fig1::default_budget(n, k))
            .run(rng);
        (result.parallel_time(n), result.plurality_won())
    });
    rows.push(summarize_baseline("USD (PP)", "parallel", &usd));

    // Voter dynamics.
    let voter: Vec<(f64, bool)> = runner::repeat(master_seed ^ 2, seeds, |_r, rng| {
        let mut sim = CountSimulator::new(VoterDynamics::new(k), &config.to_count_config_no_u());
        sim.run(rng, 500 * n * n, |s| s.is_silent());
        let won = sim.config().consensus_state() == Some(0);
        (sim.parallel_time(), won)
    });
    rows.push(summarize_baseline("Voter (PP)", "parallel", &voter));

    // 3-majority (Gossip).
    let three: Vec<(f64, bool)> = runner::repeat(master_seed ^ 3, seeds, |_r, rng| {
        let mut sim = ThreeMajority::new(&config);
        let (rounds, _) = sim.run(rng, 1_000_000);
        (rounds as f64, sim.winner() == Some(0))
    });
    rows.push(summarize_baseline("3-majority (Gossip)", "rounds", &three));

    // Synchronized USD.
    let sync: Vec<(f64, bool)> = runner::repeat(master_seed ^ 4, seeds, |_r, rng| {
        let mut sim = SynchronizedUsd::new(&config);
        let (rounds, _) = sim.run(rng, 1_000_000);
        (rounds as f64, sim.winner() == Some(0))
    });
    rows.push(summarize_baseline("Synchronized USD", "rounds", &sync));

    // Four-state exact majority (k = 2 only).
    if k == 2 {
        let four: Vec<(f64, bool)> = runner::repeat(master_seed ^ 5, seeds, |_r, rng| {
            let init = pop_proto::CountConfig::from_counts(vec![config.x(0), config.x(1), 0, 0]);
            let mut sim = CountSimulator::new(FourStateMajority, &init);
            sim.run(rng, 500 * n * n, |s| s.is_silent());
            let (a, b) = FourStateMajority::sides(sim.counts());
            (sim.parallel_time(), a == n && b == 0)
        });
        rows.push(summarize_baseline("4-state exact (PP)", "parallel", &four));
    }
    rows
}

fn summarize_baseline(
    name: &'static str,
    unit: &'static str,
    outcomes: &[(f64, bool)],
) -> BaselineRow {
    let times: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
    let correct = outcomes.iter().filter(|o| o.1).count() as f64;
    BaselineRow {
        name,
        unit,
        time_mean: Summary::of(&times).mean(),
        correct_rate: correct / outcomes.len() as f64,
    }
}

/// Extension helper: a `UsdConfig` without the undecided slot (for
/// protocols that have no ⊥ state).
trait NoU {
    fn to_count_config_no_u(&self) -> pop_proto::CountConfig;
}

impl NoU for UsdConfig {
    fn to_count_config_no_u(&self) -> pop_proto::CountConfig {
        assert_eq!(self.u(), 0, "undecided agents present");
        pop_proto::CountConfig::from_counts(self.opinions().to_vec())
    }
}

/// E11 report.
pub fn baseline_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n.min(10_000), 2_000);
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let mut report = Report::new();
    report.heading(format!(
        "E11 / Baseline comparison at the Figure-1 bias, n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "USD solves approximate plurality consensus fast given the bias; \
         voter dynamics is near-chance on the winner and Theta(n) parallel \
         time; the 4-state protocol is always-correct but slow; \
         Gossip-model dynamics stabilize in rounds (n interactions each).",
    );
    for k in [2usize, 5] {
        if (k as u64) * 4 > n {
            continue;
        }
        let rows = baseline_rows(backend, n, k, seeds, args.seed ^ (k as u64));
        let mut t = TextTable::new(&["protocol", "unit", "mean time", "plurality wins"]);
        for r in &rows {
            t.row_owned(vec![
                r.name.to_string(),
                r.unit.to_string(),
                fmt_sig(r.time_mean, 4),
                fmt_sig(r.correct_rate, 3),
            ]);
        }
        report.text(format!("k = {k}:"));
        report.table(format!("baselines_k{k}"), t);
    }
    report
}

// ---------------------------------------------------------------------------
// E12: simulator ablation
// ---------------------------------------------------------------------------

/// One engine's ablation measurements.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Engine name.
    pub name: &'static str,
    /// Stabilization-time summary (interactions).
    pub time: Summary,
    /// Histogram of stabilization times for χ² comparison.
    pub histogram: Histogram,
    /// Measured wall-clock throughput, interactions per second.
    pub throughput: f64,
}

/// Throughput measurement loop shared by the generic-engine ablation rows:
/// drive `target` scheduled interactions, rebuilding the simulator whenever
/// it stabilizes mid-measurement, and return interactions per wall second.
fn restart_throughput<S: Simulator>(
    master_seed: u64,
    target: u64,
    mut rebuild: impl FnMut(&mut sim_stats::rng::SimRng) -> S,
) -> f64 {
    let mut rng = sim_stats::rng::SimRng::new(master_seed);
    let mut sim = rebuild(&mut rng);
    let start = std::time::Instant::now();
    let mut done = 0u64;
    while done + sim.interactions() < target {
        let before = sim.interactions();
        if Simulator::advance(&mut sim, &mut rng, target - done - before) == 0 || sim.is_silent() {
            done += sim.interactions();
            sim = rebuild(&mut rng);
        }
    }
    target as f64 / start.elapsed().as_secs_f64()
}

/// Run E12: the three exact engines on the same instance.
pub fn ablation_rows(n: u64, k: usize, seeds: u64, master_seed: u64) -> Vec<AblationRow> {
    let config = InitialConfigBuilder::new(n, k).figure1();
    let budget = crate::fig1::default_budget(n, k);
    // Common histogram range from theory: 0 .. 4×upper bound.
    let hi = 4.0 * theory::Bounds::new(n, k).upper_bound_interactions();

    let mut rows = Vec::new();

    // SequentialUsd.
    let seq: Vec<u64> = runner::repeat(master_seed ^ 0xE1, seeds, |_r, rng| {
        let mut sim = SequentialUsd::new(&config);
        stabilize(&mut sim, rng, budget).interactions
    });
    rows.push(make_ablation_row("SequentialUsd", &seq, hi, || {
        let mut rng = sim_stats::rng::SimRng::new(master_seed);
        let mut sim = SequentialUsd::new(&config);
        let start = std::time::Instant::now();
        let target = (n * 200).min(2_000_000);
        // Accumulate interactions across restarts: a run may stabilize
        // before reaching the target, in which case we start a fresh one.
        let mut done = 0u64;
        while done + sim.interactions() < target {
            if sim.step_effective(&mut rng).is_none() {
                done += sim.interactions();
                sim = SequentialUsd::new(&config);
            }
        }
        target as f64 / start.elapsed().as_secs_f64()
    }));

    // SkipAheadUsd.
    let skip: Vec<u64> = runner::repeat(master_seed ^ 0xE2, seeds, |_r, rng| {
        let mut sim = SkipAheadUsd::new(&config);
        stabilize(&mut sim, rng, budget).interactions
    });
    rows.push(make_ablation_row("SkipAheadUsd", &skip, hi, || {
        let mut rng = sim_stats::rng::SimRng::new(master_seed);
        let mut sim = SkipAheadUsd::new(&config);
        let start = std::time::Instant::now();
        let target = (n * 200).min(2_000_000);
        let mut done = 0u64;
        while done + sim.interactions() < target {
            if sim.step_effective(&mut rng).is_none() {
                done += sim.interactions();
                sim = SkipAheadUsd::new(&config);
            }
        }
        target as f64 / start.elapsed().as_secs_f64()
    }));

    // Generic CountSimulator.
    let generic: Vec<u64> = runner::repeat(master_seed ^ 0xE3, seeds, |_r, rng| {
        let proto = UndecidedStateDynamics::new(k);
        let mut sim = CountSimulator::new(proto, &config.to_count_config());
        sim.run(rng, budget, |s| {
            let counts = s.counts();
            let total: u64 = counts.iter().sum();
            counts[k] == total
                || (counts[k] == 0 && counts[..k].iter().filter(|&&c| c > 0).count() <= 1)
        });
        sim.interactions()
    });
    rows.push(make_ablation_row(
        "CountSimulator (generic)",
        &generic,
        hi,
        || {
            let mut rng = sim_stats::rng::SimRng::new(master_seed);
            let proto = UndecidedStateDynamics::new(k);
            let mut sim = CountSimulator::new(proto, &config.to_count_config());
            let start = std::time::Instant::now();
            let target = (n * 200).min(2_000_000);
            for _ in 0..target {
                sim.step(&mut rng);
            }
            target as f64 / start.elapsed().as_secs_f64()
        },
    ));

    // Generic BatchSimulator (collision-aware leaping).
    let batch: Vec<u64> = runner::repeat(master_seed ^ 0xE4, seeds, |_r, rng| {
        let proto = UndecidedStateDynamics::new(k);
        let mut sim = BatchSimulator::new(proto, &config.to_count_config());
        let (t, _) = sim.run_to_silence(rng, budget);
        t
    });
    rows.push(make_ablation_row(
        "BatchSimulator (generic)",
        &batch,
        hi,
        || {
            // The batch engine is fast enough that the other engines' target
            // would finish below timer resolution; use a larger workload.
            restart_throughput(master_seed, (n * 2_000).min(200_000_000), |_| {
                BatchSimulator::new(UndecidedStateDynamics::new(k), &config.to_count_config())
            })
        },
    ));

    // GraphSimulator on the complete graph — the graphwise engine's
    // degenerate clique instance (same Markov chain as all rows above).
    let complete = pop_proto::TopologyFamily::Complete.build(n as usize, 0);
    let graph: Vec<u64> = runner::repeat(master_seed ^ 0xE5, seeds, |_r, rng| {
        let proto = UndecidedStateDynamics::new(k);
        let mut sim =
            GraphSimulator::from_config_shuffled(proto, &complete, &config.to_count_config(), rng);
        let (t, _) = sim.run_to_silence(rng, budget);
        t
    });
    rows.push(make_ablation_row(
        "GraphSimulator (complete)",
        &graph,
        hi,
        || {
            restart_throughput(master_seed, (n * 200).min(2_000_000), |rng| {
                GraphSimulator::from_config_shuffled(
                    UndecidedStateDynamics::new(k),
                    &complete,
                    &config.to_count_config(),
                    rng,
                )
            })
        },
    ));

    // BatchGraphSimulator on the complete graph — the block-leaping
    // engine's degenerate clique instance.
    let batchgraph: Vec<u64> = runner::repeat(master_seed ^ 0xE6, seeds, |_r, rng| {
        let proto = UndecidedStateDynamics::new(k);
        let mut sim = BatchGraphSimulator::from_config_shuffled(
            proto,
            &complete,
            &config.to_count_config(),
            rng,
        );
        let (t, _) = sim.run_to_silence(rng, budget);
        t
    });
    rows.push(make_ablation_row(
        "BatchGraphSimulator (complete)",
        &batchgraph,
        hi,
        || {
            restart_throughput(master_seed, (n * 200).min(2_000_000), |rng| {
                BatchGraphSimulator::from_config_shuffled(
                    UndecidedStateDynamics::new(k),
                    &complete,
                    &config.to_count_config(),
                    rng,
                )
            })
        },
    ));

    rows
}

fn make_ablation_row(
    name: &'static str,
    times: &[u64],
    hi: f64,
    throughput: impl FnOnce() -> f64,
) -> AblationRow {
    let mut hist = Histogram::new(0.0, hi.max(1.0), 20);
    let mut summary = Summary::new();
    for &t in times {
        hist.add(t as f64);
        summary.add(t as f64);
    }
    AblationRow {
        name,
        time: summary,
        histogram: hist,
        throughput: throughput(),
    }
}

/// E12 report.
pub fn ablation_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n.min(5_000), 1_500);
    let k = args.k_or(4);
    let seeds = args.unless_quick(args.seeds.max(40), 10);
    let rows = ablation_rows(n, k, seeds, args.seed);

    let mut report = Report::new();
    report.heading(format!(
        "E12 / Simulator ablation, n={}, k={k}, {seeds} seeds",
        fmt_thousands(n)
    ));
    report.text(
        "All engines simulate the exact same Markov chain (the graphwise \
         and batch-graph rows run on the complete graph, their degenerate \
         clique instance); their stabilization-time distributions must \
         agree (chi^2 per dof ~ 1) while throughputs differ (the point of \
         the skip-ahead, batch-leaping, and active-edge designs).",
    );
    let mut t = TextTable::new(&["engine", "mean interactions", "stderr", "interactions/s"]);
    for r in &rows {
        t.row_owned(vec![
            r.name.to_string(),
            fmt_sig(r.time.mean(), 5),
            fmt_sig(r.time.stderr(), 3),
            fmt_sig(r.throughput, 3),
        ]);
    }
    report.table("ablation", t);
    let mut pairs = TextTable::new(&["pair", "chi2", "dof", "chi2/dof"]);
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            let (chi2, dof) = rows[i].histogram.chi2_against(&rows[j].histogram);
            pairs.row_owned(vec![
                format!("{} vs {}", rows[i].name, rows[j].name),
                fmt_sig(chi2, 4),
                dof.to_string(),
                fmt_sig(chi2 / dof.max(1) as f64, 3),
            ]);
        }
    }
    report.table("ablation_chi2", pairs);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_grid_is_sorted_feasible() {
        let g = bias_grid(10_000, 8);
        assert!(g.len() >= 4);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g[0], 0);
    }

    #[test]
    fn bias_zero_is_near_chance_and_big_bias_wins() {
        let n = 3_000u64;
        let k = 4usize;
        let lo = bias_cell(Backend::SkipAhead, n, k, 0, 30, 1);
        let hi = bias_cell(
            Backend::SkipAhead,
            n,
            k,
            theory::max_admissible_bias(n, k).min(n / 2),
            30,
            1,
        );
        assert!(
            lo.win_rate < 0.7,
            "zero bias should be near chance (1/k..), got {}",
            lo.win_rate
        );
        assert!(
            hi.win_rate >= 0.95,
            "admissible bias should win w.h.p., got {}",
            hi.win_rate
        );
    }

    #[test]
    fn gossip_cell_shows_model_difference() {
        let c = gossip_cell(1_000, 2, 2, 3);
        // The PP model lets a node flip more than once within a parallel
        // round — the paper's §1.2 point. At n=1000 this is essentially
        // guaranteed at some point of the run.
        assert!(
            c.pp_max_flips >= 2,
            "expected multi-flip rounds in PP, got {}",
            c.pp_max_flips
        );
        assert!(c.gossip_rounds > 0.0);
        // Biased two-opinion start: md = 1 + (x2/x1)^2 lies strictly
        // between 1 (monochromatic) and 2 (balanced).
        assert!(c.md > 1.0 && c.md < 2.0, "md {}", c.md);
    }

    #[test]
    fn baseline_rows_cover_protocols() {
        let rows = baseline_rows(Backend::SkipAhead, 500, 2, 3, 4);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert!(names.contains(&"USD (PP)"));
        assert!(names.contains(&"4-state exact (PP)"));
        assert!(names.contains(&"Voter (PP)"));
        // The 4-state protocol must be perfectly correct at this bias.
        let four = rows
            .iter()
            .find(|r| r.name == "4-state exact (PP)")
            .unwrap();
        assert_eq!(four.correct_rate, 1.0);
        // USD with the fig1 bias must also win.
        let usd = rows.iter().find(|r| r.name == "USD (PP)").unwrap();
        assert!(usd.correct_rate >= 0.5);
    }

    #[test]
    fn ablation_distributions_agree() {
        let rows = ablation_rows(800, 3, 60, 5);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.name.contains("GraphSimulator")));
        assert!(rows.iter().any(|r| r.name.contains("BatchGraphSimulator")));
        // Means within 15% of each other.
        let means: Vec<f64> = rows.iter().map(|r| r.time.mean()).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) / max < 0.15, "engine means diverge: {means:?}");
        for r in &rows {
            assert!(r.throughput > 0.0);
        }
    }

    #[test]
    fn reports_render_quick() {
        let args = ExpArgs {
            quick: true,
            seeds: 2,
            n: 2_000,
            ..ExpArgs::default()
        };
        assert!(bias_report(&args).render().contains("Bias sensitivity"));
        assert!(gossip_report(&args).render().contains("Gossip"));
        assert!(baseline_report(&args).render().contains("Baseline"));
        assert!(ablation_report(&args).render().contains("ablation"));
    }
}
