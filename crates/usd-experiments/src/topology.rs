//! E14 — USD stabilization across interaction-graph topologies.
//!
//! The paper proves the Ω(kn log n) stabilization barrier for the uniform
//! *clique* scheduler. This experiment probes how stabilization behaves on
//! restricted topologies: for each graph family × population size it runs
//! the active-edge `graph` backend to graph silence and reports parallel
//! stabilization time, the effective-interaction fraction (how no-op
//! dominated the trajectory was — the quantity the graphwise engine skips
//! over), and the plurality win rate. The `T / (k ln n)` column normalizes
//! by the clique barrier scale, making departures from the complete-graph
//! regime directly visible (expander-like families track the clique;
//! low-conductance families like the cycle pay a polynomial factor).
//!
//! Cells sweep on the deterministic [`runner`] so results are reproducible
//! for any `--threads` setting; each family snaps the nominal n to its
//! nearest feasible size (perfect square, power of two, parity).

use crate::cli::ExpArgs;
use crate::report::Report;
use crate::runner;
use pop_proto::topology::TopologyFamily;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use usd_core::backend::{stabilize_on_topology, Backend};
use usd_core::init::InitialConfigBuilder;
use usd_core::stabilization::ConsensusOutcome;

/// One (family, n) sweep cell.
#[derive(Debug, Clone)]
pub struct TopologyCell {
    /// The graph family.
    pub family: TopologyFamily,
    /// Population after snapping to the family's feasibility constraint.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Mean parallel stabilization time over seeds (silent runs only).
    pub parallel_mean: f64,
    /// Mean effective-interaction fraction (effective / scheduled).
    pub effective_fraction: f64,
    /// Fraction of runs the initial plurality won.
    pub win_rate: f64,
    /// Fraction of runs that froze (disconnected topology) or timed out.
    pub degenerate_rate: f64,
}

/// The family grid for a run: `--topology` restricts to one family
/// (with `--degree` applied); the default is the sparse sweep set.
pub fn families(args: &ExpArgs) -> Vec<TopologyFamily> {
    let d = args.degree.unwrap_or(pop_proto::topology::DEFAULT_DEGREE);
    match args.topology {
        Some(f) => vec![match args.degree {
            Some(d) => f.with_degree(d),
            None => f,
        }],
        None => {
            if args.quick {
                // CI smoke grid: two cheap families.
                vec![TopologyFamily::Cycle, TopologyFamily::Regular { d }]
            } else {
                TopologyFamily::sweep_set(d)
            }
        }
    }
}

/// Run one sweep cell: `seeds` independent stabilization runs of the
/// `graph` backend on fresh seeded graphs.
pub fn topology_cell(
    family: TopologyFamily,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> TopologyCell {
    let n = family.snap_n(n as usize) as u64;
    let config = InitialConfigBuilder::new(n, k).figure1();
    // Generous budget: low-conductance families pay up to ~n² parallel
    // time (n³ interactions) over the clique's ~kn ln n; the graphwise
    // engine only pays per effective interaction, so a huge scheduled
    // budget costs nothing on no-op stretches.
    let budget = n.saturating_mul(n).saturating_mul(n).max(1 << 26);
    let outcomes = runner::repeat(master_seed, seeds, |rep, rng| {
        let result = stabilize_on_topology(
            Backend::Graph,
            &config,
            family,
            master_seed ^ rep,
            rng,
            budget,
        );
        let parallel = result.interactions as f64 / n as f64;
        (result.outcome, parallel)
    });
    // Effective fraction from one representative run (cheap statistic; the
    // stabilization outcomes above are the measured quantity).
    let effective_fraction = {
        let mut rng = sim_stats::rng::SimRng::new(master_seed ^ 0xF00D);
        let mut sim = usd_core::backend::make_topology_simulator(
            Backend::Graph,
            &config,
            family,
            master_seed,
            &mut rng,
        );
        sim.run_to_silence(&mut rng, budget);
        if sim.interactions() == 0 {
            0.0
        } else {
            sim.effective_interactions() as f64 / sim.interactions() as f64
        }
    };
    let silent: Vec<f64> = outcomes
        .iter()
        .filter(|(o, _)| !matches!(o, ConsensusOutcome::Timeout))
        .map(|&(_, t)| t)
        .collect();
    let wins = outcomes
        .iter()
        .filter(|(o, _)| matches!(o, ConsensusOutcome::Winner(0)))
        .count();
    let degenerate = outcomes
        .iter()
        .filter(|(o, _)| matches!(o, ConsensusOutcome::Frozen | ConsensusOutcome::Timeout))
        .count();
    TopologyCell {
        family,
        n,
        k,
        parallel_mean: if silent.is_empty() {
            f64::NAN
        } else {
            Summary::of(&silent).mean()
        },
        effective_fraction,
        win_rate: wins as f64 / outcomes.len() as f64,
        degenerate_rate: degenerate as f64 / outcomes.len() as f64,
    }
}

/// Default per-family population ceiling for the all-family sweep: the
/// low-conductance families stabilize in ~n² parallel time (Θ(n²)
/// effective interface moves), so their cells are capped to keep default
/// runs in minutes; restrict with `--topology` to push a single family to
/// `--n`.
fn default_n_cap(family: &TopologyFamily) -> u64 {
    match family {
        TopologyFamily::Cycle => 4_096,
        TopologyFamily::Torus => 16_384,
        _ => 1 << 20,
    }
}

/// E14 report: families × population sizes.
pub fn topology_report(args: &ExpArgs) -> Report {
    let k = args.k_or(2);
    let single_family = args.topology.is_some();
    let ns: Vec<u64> = if args.quick {
        vec![256, 1024]
    } else {
        let top = if single_family {
            args.n.clamp(1024, 1 << 20)
        } else {
            args.n.clamp(1024, 16_384)
        };
        let mut ns = vec![];
        let mut n = 1024u64;
        while n <= top {
            ns.push(n);
            n *= 4;
        }
        ns
    };
    let seeds = args.unless_quick(args.seeds.max(5), 3);
    let fams = families(args);
    let mut dropped: Vec<String> = Vec::new();
    let cells: Vec<(TopologyFamily, u64)> = fams
        .iter()
        .flat_map(|&f| ns.iter().map(move |&n| (f, n)))
        .filter(|&(f, n)| {
            // An explicit --topology is an explicit ask: no cap.
            let keep = single_family || n <= default_n_cap(&f);
            if !keep {
                dropped.push(format!("{}@n={}", f.name(), n));
            }
            keep
        })
        .collect();
    let results = runner::sweep(args.seed, cells, |i, &(f, n), _| {
        topology_cell(f, n, k, seeds, args.seed ^ ((i as u64) << 32))
    });

    let mut report = Report::new();
    if !dropped.is_empty() {
        report.text(format!(
            "note: skipped slow low-conductance cells {} (run with \
             --topology <family> to push one family to --n)",
            dropped.join(", ")
        ));
    }
    report.heading(format!(
        "E14 / USD stabilization across topologies, k={k}, {seeds} seeds/cell"
    ));
    report.text(
        "Graph-restricted USD on the active-edge graphwise backend. \
         T/(k ln n) normalizes by the clique barrier scale: values near the \
         clique's constant indicate expander-like behaviour (hypercube, \
         random regular), while low-conductance families (cycle, torus) pay \
         polynomial slowdowns. 'eff. frac' is the effective-interaction \
         fraction of one run — the no-op dominance the engine skips. \
         'degenerate' counts frozen (disconnected er) or timed-out runs.",
    );
    let mut t = TextTable::new(&[
        "family",
        "n",
        "T parallel",
        "T/(k ln n)",
        "eff. frac",
        "win rate",
        "degenerate",
    ]);
    for c in &results {
        let norm = c.parallel_mean / (c.k as f64 * (c.n as f64).ln());
        t.row_owned(vec![
            c.family.name(),
            fmt_thousands(c.n),
            fmt_sig(c.parallel_mean, 4),
            fmt_sig(norm, 3),
            fmt_sig(c.effective_fraction, 3),
            fmt_sig(c.win_rate, 3),
            fmt_sig(c.degenerate_rate, 3),
        ]);
    }
    report.table("topology_sweep", t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_respect_restriction_and_degree() {
        let mut args = ExpArgs {
            topology: Some(TopologyFamily::Regular { d: 8 }),
            degree: Some(4),
            ..ExpArgs::default()
        };
        assert_eq!(families(&args), vec![TopologyFamily::Regular { d: 4 }]);
        args.topology = None;
        args.quick = true;
        assert_eq!(families(&args).len(), 2);
        args.quick = false;
        assert_eq!(families(&args).len(), 5);
    }

    #[test]
    fn cycle_cell_stabilizes_and_is_slower_than_clique_scale() {
        let c = topology_cell(TopologyFamily::Cycle, 128, 2, 4, 9);
        assert_eq!(c.n, 128);
        assert!(c.degenerate_rate < 1.0, "every cycle run degenerated");
        assert!(c.parallel_mean > 0.0);
        // The cycle's effective fraction is tiny (no-op dominated) — the
        // regime the graphwise engine exists for.
        assert!(c.effective_fraction < 0.5);
    }

    #[test]
    fn regular_cell_elects_plurality_mostly() {
        let c = topology_cell(TopologyFamily::Regular { d: 8 }, 256, 2, 6, 11);
        assert!(c.win_rate >= 0.5, "win rate {}", c.win_rate);
        assert_eq!(c.degenerate_rate, 0.0);
    }

    #[test]
    fn report_renders_quick() {
        let args = ExpArgs {
            quick: true,
            seeds: 2,
            n: 512,
            ..ExpArgs::default()
        };
        let rendered = topology_report(&args).render();
        assert!(rendered.contains("topologies"));
        assert!(rendered.contains("cycle"));
        assert!(rendered.contains("regular:8"));
    }
}
