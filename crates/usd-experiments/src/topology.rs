//! E14 — USD stabilization across interaction-graph topologies.
//!
//! The paper proves the Ω(kn log n) stabilization barrier for the uniform
//! *clique* scheduler. This experiment probes how stabilization behaves on
//! restricted topologies: for each graph family × population size it runs
//! the active-edge `graph` backend to graph silence and reports parallel
//! stabilization time, the effective-interaction fraction (how no-op
//! dominated the trajectory was — the quantity the graphwise engine skips
//! over), the engine-telemetry rates of a representative run (the sparse
//! sidecar's cancel rate and the block engines' literal-fallback rate),
//! and the plurality win rate. The `T / (k ln n)` column normalizes
//! by the clique barrier scale, making departures from the complete-graph
//! regime directly visible (expander-like families track the clique;
//! low-conductance families like the cycle pay a polynomial factor).
//!
//! Cells sweep on the deterministic [`runner`] so results are reproducible
//! for any `--threads` setting; each family snaps the nominal n to its
//! nearest feasible size (perfect square, power of two, parity).

use crate::cli::ExpArgs;
use crate::report::Report;
use crate::runner;
use pop_proto::telemetry::EngineTelemetry;
use pop_proto::topology::TopologyFamily;
use pop_proto::{Simulator, TimelineRecorder};
use sim_stats::rng::SimRng;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use usd_core::backend::{make_topology_simulator, Backend, RunTicker};
use usd_core::config::UsdConfig;
use usd_core::init::InitialConfigBuilder;
use usd_core::stabilization::ConsensusOutcome;
use usd_core::{EnsembleOutcome, RunIdentity, RunSpec};

/// One (family, n) sweep cell.
#[derive(Debug, Clone)]
pub struct TopologyCell {
    /// The graph family.
    pub family: TopologyFamily,
    /// Population after snapping to the family's feasibility constraint.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Mean parallel stabilization time over seeds (silent runs only).
    pub parallel_mean: f64,
    /// Mean effective-interaction fraction (effective / scheduled).
    pub effective_fraction: f64,
    /// Fraction of runs the initial plurality won.
    pub win_rate: f64,
    /// Fraction of runs that froze (disconnected topology) or timed out.
    pub degenerate_rate: f64,
    /// Sidecar cancel rate from the representative run's engine telemetry
    /// (the adaptive-deferral signal; 0 on engines without the skipper).
    pub cancel_rate: f64,
    /// Block fallback rate from the representative run's engine telemetry
    /// (dirty-draw literal re-simulations; 0 on non-block engines).
    pub fallback_rate: f64,
    /// Flight-recorder JSONL of the representative run (recorded only when
    /// the sweep was asked for timelines; written per cell by
    /// `--timeline-dir`).
    pub timeline: Option<String>,
}

/// Validate an E14 flag combination before running anything: the backend
/// must be topology-capable and `--degree` must target a
/// degree-parameterized family. Binaries call this up front and exit
/// non-zero on `Err` instead of silently falling back (or panicking deep
/// inside the sweep).
pub fn validate_args(args: &ExpArgs) -> Result<(), String> {
    let backend = args.backend_or(Backend::BatchGraph);
    if !backend.capabilities().topologies {
        return Err(format!(
            "--backend {backend} cannot run graph topologies \
             (use graph, batchgraph, pargraph, agent, or replica)"
        ));
    }
    if let (Some(family), Some(d)) = (args.topology, args.degree) {
        if !family.takes_degree() {
            return Err(format!(
                "--degree {d} has no effect on --topology {}: only the \
                 regular and er families take a degree",
                family.name()
            ));
        }
    }
    for (flag, dir) in [
        ("--timeline-dir", &args.timeline_dir),
        ("--resume-dir", &args.resume_dir),
    ] {
        let Some(dir) = dir else { continue };
        // Fail before any work runs: create the directory and probe that
        // it is actually writable (a read-only mount or permission problem
        // would otherwise surface only after the whole sweep finished).
        let path = std::path::Path::new(dir);
        std::fs::create_dir_all(path)
            .map_err(|e| format!("{flag} {dir}: cannot create directory: {e}"))?;
        let probe = path.join(".usd_write_probe");
        std::fs::write(&probe, b"")
            .and_then(|()| std::fs::remove_file(&probe))
            .map_err(|e| format!("{flag} {dir}: directory not writable: {e}"))?;
    }
    Ok(())
}

/// The family grid for a run: `--topology` restricts to one family
/// (with `--degree` applied); the default is the sparse sweep set.
pub fn families(args: &ExpArgs) -> Vec<TopologyFamily> {
    let d = args.degree.unwrap_or(pop_proto::topology::DEFAULT_DEGREE);
    match args.topology {
        Some(f) => vec![match args.degree {
            Some(d) => f.with_degree(d),
            None => f,
        }],
        None => {
            if args.quick {
                // CI smoke grid: two cheap families.
                vec![TopologyFamily::Cycle, TopologyFamily::Regular { d }]
            } else {
                TopologyFamily::sweep_set(d)
            }
        }
    }
}

/// Default per-run work budget for sweep cells, in *engine work units*:
/// effective interactions for the leaping backends (graph/batchgraph skip
/// scheduled no-ops for free, so their scheduled cap stays at the
/// astronomically generous n³ — in effect the cap escalates whenever the
/// sparse skipper is active; since PR 5 both engines drive the *shared
/// block-leaping* sparse engine, which also amortizes the per-effective
/// Fenwick updates across ~64-event blocks, so the effective meter is an
/// even tighter proxy for wall time on the no-op-dominated families),
/// scheduled interactions for the agentwise backend (which pays O(1) per
/// scheduled draw, so metering anything else would not bound its wall
/// time). This replaces the old hard
/// `default_n_cap` that silently dropped cycle and torus cells above
/// 4k/16k: every family now runs at every sweep size and a cell that
/// cannot stabilize within the budget reports an honest timeout instead
/// of vanishing from the table. ~5·10⁷ work units is tens of seconds of
/// engine work per run.
pub const DEFAULT_EFFECTIVE_BUDGET: u64 = 50_000_000;

/// Run `sim` to graph silence under a *phase-aware* budget: unlimited-ish
/// scheduled interactions (`sched_budget`, the n³ ceiling — when the
/// sparse skipper is active, scheduled no-ops are free and the cap is in
/// effect escalated to it) but at most `eff_budget` effective
/// interactions, the quantity that actually costs wall time. Returns the
/// classified outcome and the interaction clock at the stopping point.
fn stabilize_effective_budgeted(
    sim: &mut dyn Simulator,
    config: &UsdConfig,
    rng: &mut SimRng,
    sched_budget: u64,
    eff_budget: u64,
    mut recorder: Option<&mut TimelineRecorder>,
) -> (ConsensusOutcome, u64) {
    let k = config.k();
    // Chunked driving so the effective meter is checked at a bounded
    // cadence even while the engine leaps; an attached flight recorder
    // additionally bounds chunks so samples land on its cadence marks.
    let chunk = (4 * config.n()).max(1 << 16);
    let silent = loop {
        if sim.is_silent() {
            break true;
        }
        let done = sim.interactions();
        if done >= sched_budget || sim.effective_interactions() >= eff_budget {
            break false;
        }
        let step = chunk
            .min(sched_budget - done)
            .min(recorder.as_ref().map_or(u64::MAX, |r| r.horizon(done)))
            .max(1);
        if sim.run_until(rng, step, &mut |_| false) == 0 {
            break sim.is_silent();
        }
        if let Some(r) = recorder.as_mut() {
            r.record_if_due(sim);
        }
    };
    if let Some(r) = recorder {
        r.finish(sim);
    }
    let counts = sim.counts();
    let outcome = if !silent {
        ConsensusOutcome::Timeout
    } else if counts[..k].iter().all(|&c| c == 0) {
        ConsensusOutcome::AllUndecided
    } else if counts[k] == 0 && counts[..k].iter().filter(|&&c| c > 0).count() == 1 {
        let winner = counts[..k]
            .iter()
            .position(|&c| c > 0)
            .expect("a decided silent configuration has a winner");
        ConsensusOutcome::Winner(winner)
    } else {
        ConsensusOutcome::Frozen
    };
    (outcome, sim.interactions())
}

/// Run one sweep cell: `seeds` independent stabilization runs of a
/// topology-capable backend on fresh seeded graphs, under the phase-aware
/// effective budget. With `record_timeline` the representative run also
/// carries a flight recorder at the default cadence and the cell returns
/// its JSONL.
#[allow(clippy::too_many_arguments)]
pub fn topology_cell(
    backend: Backend,
    family: TopologyFamily,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
    eff_budget: u64,
    record_timeline: bool,
) -> TopologyCell {
    /// Flight recorder behind the [`RunTicker`] interface for the agent
    /// backend's keeping driver (the other backends record inside
    /// [`stabilize_effective_budgeted`]).
    struct RecorderTick<'a>(Option<&'a mut TimelineRecorder>);
    impl RunTicker for RecorderTick<'_> {
        fn horizon(&self, scheduled: u64) -> u64 {
            self.0.as_ref().map_or(u64::MAX, |r| r.horizon(scheduled))
        }
        fn tick(&mut self, sim: &dyn Simulator) {
            if let Some(r) = self.0.as_mut() {
                r.record_if_due(sim);
            }
        }
    }
    let n = family.snap_n(n as usize) as u64;
    let config = InitialConfigBuilder::new(n, k).figure1();
    // Scheduled ceiling: low-conductance families pay up to ~n² parallel
    // time (n³ interactions) over the clique's ~kn ln n; the leaping
    // engines only pay per effective interaction, so this enormous cap
    // costs nothing on no-op stretches (the effective budget is the real
    // meter).
    let sched_budget = n.saturating_mul(n).saturating_mul(n).max(1 << 26);
    // The agentwise engine pays per *scheduled* interaction and its
    // count-level silence check misses frozen disconnected graphs, so it
    // runs through the [`RunSpec`] topology driver (exact freeze
    // detection via the edge scan) with the work budget applied to the
    // scheduled clock — the only quantity that bounds its wall time. The
    // keeping variant hands the engine back, so its effective count and
    // telemetry are readable like the other backends'.
    let run_one = |rep: u64,
                   rng: &mut sim_stats::rng::SimRng,
                   recorder: Option<&mut TimelineRecorder>|
     -> (ConsensusOutcome, u64, EngineTelemetry) {
        if backend == Backend::Agent {
            let mut tick = RecorderTick(recorder);
            let (result, sim) = RunSpec::new(&config)
                .backend(backend)
                .topology(family)
                .topo_seed(master_seed ^ rep)
                .budget(eff_budget.min(sched_budget))
                .ticker(&mut tick)
                .run_keeping(rng);
            if let (Some(r), Some(s)) = (tick.0, &sim) {
                r.finish(s.as_ref());
            }
            let telemetry = sim.map_or(EngineTelemetry::new(), |s| *s.telemetry());
            (result.outcome, result.interactions, telemetry)
        } else {
            let mut sim = make_topology_simulator(backend, &config, family, master_seed ^ rep, rng);
            let (outcome, interactions) = stabilize_effective_budgeted(
                &mut *sim,
                &config,
                rng,
                sched_budget,
                eff_budget,
                recorder,
            );
            (outcome, interactions, *sim.telemetry())
        }
    };
    let outcomes = if backend.capabilities().replicas > 1 {
        // One bit-parallel ensemble pass replaces the per-seed scalar
        // runs: each of the (up to 64) lanes is an independent replica of
        // the cell, so the per-lane outcomes are the per-seed samples. A
        // lane still live at the budget classifies as a timeout, exactly
        // like an exhausted scalar run.
        let lanes = seeds.clamp(1, 64) as u32;
        let mut rng = sim_stats::rng::SimRng::new(master_seed);
        let (_, sim) = RunSpec::new(&config)
            .backend(backend)
            .topology(family)
            .topo_seed(master_seed)
            .replicas(lanes)
            .budget(eff_budget.min(sched_budget))
            .run_keeping(&mut rng);
        let sim = sim.expect("sweep families always have edges");
        EnsembleOutcome::from_simulator(sim.as_ref(), k, config.plurality())
            .lanes
            .iter()
            .map(|l| (l.result.outcome, l.result.interactions as f64 / n as f64))
            .collect()
    } else {
        runner::repeat(master_seed, seeds, |rep, rng| {
            let (outcome, interactions, _) = run_one(rep, rng, None);
            let parallel = interactions as f64 / n as f64;
            (outcome, parallel)
        })
    };
    // Engine-telemetry rates — and, when asked for, the flight-recorder
    // timeline — from one representative run (cheap statistics; the
    // stabilization outcomes above are the measured quantity): the
    // effective fraction, the sidecar cancel rate the adaptive deferral
    // decides on, and the block fallback rate.
    let mut recorder = record_timeline.then(|| TimelineRecorder::with_default_cadence(n));
    let (effective_fraction, cancel_rate, fallback_rate) = {
        let mut rng = sim_stats::rng::SimRng::new(master_seed ^ 0xF00D);
        let (_, _, telemetry) = run_one(u64::MAX, &mut rng, recorder.as_mut());
        (
            telemetry.effective_fraction(),
            telemetry.cancel_rate(),
            telemetry.fallback_rate(),
        )
    };
    let silent: Vec<f64> = outcomes
        .iter()
        .filter(|(o, _)| !matches!(o, ConsensusOutcome::Timeout))
        .map(|&(_, t)| t)
        .collect();
    let wins = outcomes
        .iter()
        .filter(|(o, _)| matches!(o, ConsensusOutcome::Winner(0)))
        .count();
    let degenerate = outcomes
        .iter()
        .filter(|(o, _)| matches!(o, ConsensusOutcome::Frozen | ConsensusOutcome::Timeout))
        .count();
    TopologyCell {
        family,
        n,
        k,
        parallel_mean: if silent.is_empty() {
            f64::NAN
        } else {
            Summary::of(&silent).mean()
        },
        effective_fraction,
        win_rate: wins as f64 / outcomes.len() as f64,
        degenerate_rate: degenerate as f64 / outcomes.len() as f64,
        cancel_rate,
        fallback_rate,
        timeline: recorder.map(|r| r.to_jsonl()),
    }
}

/// File stem identifying one sweep cell's artifacts under `--resume-dir`.
/// Uses the *snapped* population so the name is stable no matter which
/// nominal n the grid asked for.
fn cell_stem(family: TopologyFamily, snapped_n: u64) -> String {
    format!("cell_{}_n{}", family.name().replace(':', "-"), snapped_n)
}

/// Identity line pinning the sweep parameters a persisted cell is valid
/// for. A resumed run with *any* differing parameter (backend, topology,
/// n, k, seeds, per-cell seed, work budget, thread count, timeline ask)
/// must not reuse the cell, so the whole line is compared verbatim on
/// load. The (backend, n, k, seed, topology) core is rendered by the same
/// [`RunIdentity`] helper that guards `RunCheckpoint` resumes, so the two
/// persistence surfaces can never drift apart in what they pin.
///
/// `threads` is the sweep's resolved worker-thread count. Trajectories
/// are thread-count invariant on every engine, but the recorded
/// wall-clock-adjacent artifacts (timeline cadence boundaries interact
/// with driving-chunk horizons, and future thread-sensitive columns) must
/// not silently mix resolutions across a resume — v2 lines omitted it and
/// a sweep resumed under a different `--threads` reused stale cells.
#[allow(clippy::too_many_arguments)]
fn cell_identity(
    backend: Backend,
    family: TopologyFamily,
    snapped_n: u64,
    k: usize,
    seeds: u64,
    cell_seed: u64,
    eff_budget: u64,
    threads: usize,
    record_timeline: bool,
) -> String {
    let core = RunIdentity::new(
        backend.name(),
        snapped_n,
        k as u32,
        cell_seed,
        family.name(),
    );
    format!(
        "# topology_sweep cell v3: {} seeds={seeds} eff_budget={eff_budget} threads={threads} \
         timeline={}",
        core.describe(),
        if record_timeline { "yes" } else { "no" }
    )
}

/// The CSV header of a persisted cell (matched verbatim on load).
const CELL_HEADER: &str = "family,n,k,parallel_mean,effective_fraction,\
                           win_rate,degenerate_rate,cancel_rate,fallback_rate";

/// Write `data` to `path` atomically (temp file + rename), so an
/// interrupted sweep never leaves a torn cell file behind.
fn write_atomic(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, data)?;
    std::fs::rename(&tmp, path)
}

/// Persist a completed cell under `--resume-dir`: the optional timeline
/// JSONL first, then the CSV row — the CSV is the commit marker a resumed
/// sweep looks for, so a crash between the two writes just recomputes the
/// cell. Failures warn and continue (persistence is an optimization; the
/// sweep's own result is already in hand).
fn store_cell(dir: &str, cell: &TopologyCell, identity: &str) {
    let stem = cell_stem(cell.family, cell.n);
    let base = std::path::Path::new(dir);
    if let Some(jsonl) = &cell.timeline {
        let path = base.join(format!("{stem}.jsonl"));
        if let Err(e) = write_atomic(&path, jsonl.as_bytes()) {
            eprintln!("topology_sweep: writing {}: {e}", path.display());
            return; // without the timeline the CSV must not commit
        }
    }
    let row = format!(
        "{identity}\n{CELL_HEADER}\n{},{},{},{},{},{},{},{},{}\n",
        cell.family.name(),
        cell.n,
        cell.k,
        cell.parallel_mean,
        cell.effective_fraction,
        cell.win_rate,
        cell.degenerate_rate,
        cell.cancel_rate,
        cell.fallback_rate,
    );
    let path = base.join(format!("{stem}.csv"));
    if let Err(e) = write_atomic(&path, row.as_bytes()) {
        eprintln!("topology_sweep: writing {}: {e}", path.display());
    }
}

/// Try to load a previously persisted cell from `--resume-dir`. Returns
/// `None` — recompute — unless the file exists, the identity line and
/// header match verbatim, the (family, n, k) echo matches the requested
/// cell, every numeric field parses, and (when the sweep asks for
/// timelines) the sibling JSONL is present. Never panics on torn or
/// stale files: any mismatch simply costs a recompute.
fn load_cell(
    dir: &str,
    family: TopologyFamily,
    snapped_n: u64,
    k: usize,
    identity: &str,
    record_timeline: bool,
) -> Option<TopologyCell> {
    let stem = cell_stem(family, snapped_n);
    let base = std::path::Path::new(dir);
    let text = std::fs::read_to_string(base.join(format!("{stem}.csv"))).ok()?;
    if !text.ends_with('\n') {
        return None; // truncated tail: the row may have lost digits
    }
    let mut lines = text.lines();
    if lines.next() != Some(identity) || lines.next() != Some(CELL_HEADER) {
        return None;
    }
    let fields: Vec<&str> = lines.next()?.split(',').collect();
    if lines.next().is_some() || fields.len() != 9 {
        return None;
    }
    if fields[0] != family.name()
        || fields[1].parse::<u64>().ok()? != snapped_n
        || fields[2].parse::<usize>().ok()? != k
    {
        return None;
    }
    let num: Vec<f64> = fields[3..]
        .iter()
        .map(|s| s.parse::<f64>())
        .collect::<Result<_, _>>()
        .ok()?;
    let timeline = if record_timeline {
        Some(std::fs::read_to_string(base.join(format!("{stem}.jsonl"))).ok()?)
    } else {
        None
    };
    Some(TopologyCell {
        family,
        n: snapped_n,
        k,
        parallel_mean: num[0],
        effective_fraction: num[1],
        win_rate: num[2],
        degenerate_rate: num[3],
        cancel_rate: num[4],
        fallback_rate: num[5],
        timeline,
    })
}

/// E14 report: families × population sizes.
pub fn topology_report(args: &ExpArgs) -> Report {
    let k = args.k_or(2);
    let backend = args.backend_or(Backend::BatchGraph);
    assert!(
        backend.capabilities().topologies,
        "--backend {backend} cannot run graph topologies \
         (use graph, batchgraph, pargraph, agent, or replica)"
    );
    let single_family = args.topology.is_some();
    let ns: Vec<u64> = if args.quick {
        vec![256, 1024]
    } else {
        let top = if single_family {
            args.n.clamp(1024, 1 << 20)
        } else {
            // The full sweep now runs every family — including cycle and
            // torus — to 65 536; the phase-aware effective budget (not a
            // hard per-family cap) is what keeps the low-conductance
            // cells' wall time bounded.
            args.n.clamp(1024, 65_536)
        };
        let mut ns = vec![];
        let mut n = 1024u64;
        while n <= top {
            ns.push(n);
            n *= 4;
        }
        ns
    };
    let seeds = args.unless_quick(args.seeds.max(5), 3);
    // An explicit --topology is an explicit ask: uncapped effective work.
    let eff_budget = if single_family {
        u64::MAX / 2
    } else {
        args.unless_quick(DEFAULT_EFFECTIVE_BUDGET, 1 << 22)
    };
    let fams = families(args);
    let cells: Vec<(TopologyFamily, u64)> = fams
        .iter()
        .flat_map(|&f| ns.iter().map(move |&n| (f, n)))
        .collect();
    let record_timeline = args.timeline_dir.is_some();
    // Resolved once for the whole sweep, exactly as the runner resolves
    // its worker count — persisted cells are valid only for this value.
    let threads = runner::resolve_threads();
    let loaded = std::sync::atomic::AtomicUsize::new(0);
    let total = cells.len();
    let results = runner::sweep(args.seed, cells, |i, &(f, n), _| {
        let cell_seed = args.seed ^ ((i as u64) << 32);
        let snapped = f.snap_n(n as usize) as u64;
        let identity = args.resume_dir.as_ref().map(|_| {
            cell_identity(
                backend,
                f,
                snapped,
                k,
                seeds,
                cell_seed,
                eff_budget,
                threads,
                record_timeline,
            )
        });
        if let (Some(dir), Some(id)) = (&args.resume_dir, &identity) {
            if let Some(cell) = load_cell(dir, f, snapped, k, id, record_timeline) {
                loaded.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return cell;
            }
        }
        let cell = topology_cell(
            backend,
            f,
            n,
            k,
            seeds,
            cell_seed,
            eff_budget,
            record_timeline,
        );
        if let (Some(dir), Some(id)) = (&args.resume_dir, &identity) {
            store_cell(dir, &cell, id);
        }
        cell
    });
    if let Some(dir) = &args.resume_dir {
        let reused = loaded.into_inner();
        println!(
            "resume-dir: {reused} of {total} cells reused from {dir}, \
             {} computed and persisted",
            total - reused
        );
    }
    if let Some(dir) = &args.timeline_dir {
        // One flight-recorder JSONL per cell, from the representative run.
        // `validate_args` probed writability up front, so failures here are
        // races (disk full, concurrent removal) worth surfacing loudly.
        for c in &results {
            let Some(jsonl) = &c.timeline else { continue };
            let file = format!("{}_n{}.jsonl", c.family.name().replace(':', "-"), c.n);
            let path = std::path::Path::new(dir).join(&file);
            if let Err(e) = std::fs::write(&path, jsonl) {
                eprintln!("topology_sweep: writing {}: {e}", path.display());
            }
        }
        println!("timelines: one JSONL per cell in {dir}");
    }

    let mut report = Report::new();
    report.heading(format!(
        "E14 / USD stabilization across topologies, k={k}, {seeds} seeds/cell, \
         backend={backend}"
    ));
    let budget_note = if single_family {
        "uncapped work budget (explicit --topology)".to_string()
    } else {
        format!(
            "phase-aware budget of {eff_budget} work units per run \
             (effective interactions for the leaping backends, whose \
             scheduled no-ops are unmetered under the sparse skipper; \
             scheduled interactions for agent — restrict with --topology \
             to lift the cap)"
        )
    };
    report.text(format!(
        "Graph-restricted USD on the {backend} backend. \
         T/(k ln n) normalizes by the clique barrier scale: values near the \
         clique's constant indicate expander-like behaviour (hypercube, \
         random regular), while low-conductance families (cycle, torus) pay \
         polynomial slowdowns. 'eff. frac', 'cancel' and 'fallback' come \
         from one run's engine telemetry: the effective-interaction \
         fraction (the no-op dominance the engine skips), the sparse \
         sidecar's flush-time cancel rate (the signal the adaptive \
         deferral decides on), and the block engines' dirty-draw \
         literal-fallback rate. \
         'degenerate' counts frozen (disconnected er) runs plus runs that \
         exhausted the {budget_note}."
    ));
    let mut t = TextTable::new(&[
        "family",
        "n",
        "T parallel",
        "T/(k ln n)",
        "eff. frac",
        "cancel",
        "fallback",
        "win rate",
        "degenerate",
    ]);
    for c in &results {
        let norm = c.parallel_mean / (c.k as f64 * (c.n as f64).ln());
        t.row_owned(vec![
            c.family.name(),
            fmt_thousands(c.n),
            fmt_sig(c.parallel_mean, 4),
            fmt_sig(norm, 3),
            fmt_sig(c.effective_fraction, 3),
            fmt_sig(c.cancel_rate, 3),
            fmt_sig(c.fallback_rate, 3),
            fmt_sig(c.win_rate, 3),
            fmt_sig(c.degenerate_rate, 3),
        ]);
    }
    report.table("topology_sweep", t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_args_rejects_bad_combinations() {
        let ok = ExpArgs::default();
        assert!(validate_args(&ok).is_ok());
        let bad_backend = ExpArgs {
            backend: Some(Backend::Batch),
            ..ExpArgs::default()
        };
        assert!(validate_args(&bad_backend).is_err());
        let degree_on_cycle = ExpArgs {
            topology: Some(TopologyFamily::Cycle),
            degree: Some(4),
            ..ExpArgs::default()
        };
        assert!(validate_args(&degree_on_cycle).is_err());
        let degree_on_regular = ExpArgs {
            topology: Some(TopologyFamily::Regular { d: 8 }),
            degree: Some(4),
            backend: Some(Backend::Graph),
            ..ExpArgs::default()
        };
        assert!(validate_args(&degree_on_regular).is_ok());
    }

    #[test]
    fn families_respect_restriction_and_degree() {
        let mut args = ExpArgs {
            topology: Some(TopologyFamily::Regular { d: 8 }),
            degree: Some(4),
            ..ExpArgs::default()
        };
        assert_eq!(families(&args), vec![TopologyFamily::Regular { d: 4 }]);
        args.topology = None;
        args.quick = true;
        assert_eq!(families(&args).len(), 2);
        args.quick = false;
        assert_eq!(families(&args).len(), 5);
    }

    #[test]
    fn cycle_cell_stabilizes_and_is_slower_than_clique_scale() {
        for backend in [Backend::Graph, Backend::BatchGraph] {
            let c = topology_cell(
                backend,
                TopologyFamily::Cycle,
                128,
                2,
                4,
                9,
                u64::MAX / 2,
                false,
            );
            assert_eq!(c.n, 128);
            assert!(c.degenerate_rate < 1.0, "every cycle run degenerated");
            assert!(c.parallel_mean > 0.0);
            // The cycle's effective fraction is tiny (no-op dominated) —
            // the regime the sparse skipper exists for.
            assert!(c.effective_fraction < 0.5);
        }
    }

    #[test]
    fn regular_cell_elects_plurality_mostly() {
        let c = topology_cell(
            Backend::BatchGraph,
            TopologyFamily::Regular { d: 8 },
            256,
            2,
            6,
            11,
            u64::MAX / 2,
            false,
        );
        assert!(c.win_rate >= 0.5, "win rate {}", c.win_rate);
        assert_eq!(c.degenerate_rate, 0.0);
    }

    #[test]
    fn replica_cell_consumes_one_ensemble_pass() {
        // One 64-lane bit-parallel run replaces the per-seed scalar runs;
        // the per-lane outcomes must look like a healthy cell's samples.
        let c = topology_cell(
            Backend::Replica,
            TopologyFamily::Regular { d: 8 },
            256,
            2,
            6,
            11,
            u64::MAX / 2,
            false,
        );
        assert_eq!(c.n, 256);
        assert!(c.win_rate >= 0.5, "win rate {}", c.win_rate);
        assert_eq!(c.degenerate_rate, 0.0);
        assert!(c.parallel_mean > 0.0);
    }

    #[test]
    fn exhausted_effective_budget_reports_degenerate_timeouts() {
        // A dead-heat cycle with a tiny effective budget cannot stabilize;
        // the cell must say so instead of spinning.
        let c = topology_cell(
            Backend::Graph,
            TopologyFamily::Cycle,
            512,
            2,
            3,
            5,
            64,
            false,
        );
        assert_eq!(c.degenerate_rate, 1.0, "budget exhaustion not reported");
        assert!(c.parallel_mean.is_nan());
    }

    #[test]
    fn representative_run_records_a_timeline_when_asked() {
        for backend in [Backend::Agent, Backend::Graph, Backend::BatchGraph] {
            let c = topology_cell(
                backend,
                TopologyFamily::Regular { d: 8 },
                256,
                2,
                2,
                21,
                u64::MAX / 2,
                true,
            );
            let jsonl = c
                .timeline
                .unwrap_or_else(|| panic!("{backend}: no timeline"));
            assert!(!jsonl.is_empty(), "{backend}: empty timeline");
            for line in jsonl.lines() {
                assert!(line.starts_with("{\"sample\":"), "{backend}: {line}");
                assert!(line.contains("\"phase\":"), "{backend}: {line}");
            }
        }
        // Off by default: no timeline payload rides along.
        let c = topology_cell(
            Backend::Graph,
            TopologyFamily::Cycle,
            128,
            2,
            2,
            3,
            u64::MAX / 2,
            false,
        );
        assert!(c.timeline.is_none());
    }

    #[test]
    fn validate_args_probes_timeline_dir_writability() {
        let dir = std::env::temp_dir().join("usd_timeline_dir_test");
        let ok = ExpArgs {
            timeline_dir: Some(dir.to_str().unwrap().to_string()),
            ..ExpArgs::default()
        };
        assert!(validate_args(&ok).is_ok());
        assert!(dir.is_dir(), "validate_args should create the directory");
        let _ = std::fs::remove_dir_all(&dir);
        // A path that cannot be a directory (parent is a file) is rejected.
        let file = std::env::temp_dir().join("usd_timeline_blocker");
        std::fs::write(&file, b"x").unwrap();
        let bad = ExpArgs {
            timeline_dir: Some(file.join("sub").to_str().unwrap().to_string()),
            ..ExpArgs::default()
        };
        assert!(validate_args(&bad).is_err());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn resume_dir_cells_round_trip_and_invalidate() {
        let dir = std::env::temp_dir().join(format!("usd_resume_cells_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap();
        let cell = topology_cell(
            Backend::Graph,
            TopologyFamily::Cycle,
            128,
            2,
            2,
            7,
            u64::MAX / 2,
            false,
        );
        let ident = |seed: u64, threads: usize, timeline: bool| {
            cell_identity(
                Backend::Graph,
                TopologyFamily::Cycle,
                cell.n,
                2,
                2,
                seed,
                u64::MAX / 2,
                threads,
                timeline,
            )
        };
        let id = ident(7, 4, false);
        store_cell(d, &cell, &id);
        let back = load_cell(d, TopologyFamily::Cycle, cell.n, 2, &id, false)
            .expect("persisted cell should load");
        assert_eq!(back.parallel_mean.to_bits(), cell.parallel_mean.to_bits());
        assert_eq!(back.win_rate, cell.win_rate);
        assert_eq!(back.degenerate_rate, cell.degenerate_rate);
        assert!(back.timeline.is_none());
        // The shared RunIdentity core renders the cell's full coordinates.
        assert!(id.contains("backend=graph"), "identity line: {id}");
        assert!(id.contains("topology='cycle'"), "identity line: {id}");
        assert!(id.contains("threads=4"), "identity line: {id}");
        // Any differing sweep parameter (here: the cell seed) invalidates.
        let other = ident(8, 4, false);
        assert!(load_cell(d, TopologyFamily::Cycle, cell.n, 2, &other, false).is_none());
        // Regression: v2 identity lines omitted the thread count, so a
        // sweep resumed under a different --threads silently reused cells
        // recorded at another resolution. A differing count must now
        // invalidate exactly like any other parameter.
        let other_threads = ident(7, 8, false);
        assert!(
            load_cell(d, TopologyFamily::Cycle, cell.n, 2, &other_threads, false).is_none(),
            "a cell stored at threads=4 was reused by a threads=8 sweep"
        );
        // A sweep that wants timelines cannot reuse a cell stored without.
        let with_tl = ident(7, 4, true);
        assert!(load_cell(d, TopologyFamily::Cycle, cell.n, 2, &with_tl, true).is_none());
        // A torn (truncated) file is recomputed, never trusted or panicked on.
        let path = dir.join(format!("{}.csv", cell_stem(cell.family, cell.n)));
        let text = std::fs::read_to_string(&path).unwrap();
        for cut in [0, text.len() / 3, text.len() / 2, text.len() - 1] {
            std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            assert!(
                load_cell(d, TopologyFamily::Cycle, cell.n, 2, &id, false).is_none(),
                "truncation at {cut} bytes was accepted"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_dir_reuses_completed_cells_across_reports() {
        let dir = std::env::temp_dir().join(format!("usd_resume_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = ExpArgs {
            quick: true,
            n: 512,
            resume_dir: Some(dir.to_str().unwrap().to_string()),
            ..ExpArgs::default()
        };
        validate_args(&args).unwrap();
        let first = topology_report(&args).render();
        // Quick grid: 2 families × 2 sizes, one committed CSV per cell.
        let csvs = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .and_then(|x| x.to_str())
                    == Some("csv")
            })
            .count();
        assert_eq!(csvs, 4, "one persisted CSV per completed cell");
        // A resumed run reuses every cell and reproduces the report exactly.
        let second = topology_report(&args).render();
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_args_probes_resume_dir_writability() {
        let file = std::env::temp_dir().join("usd_resume_blocker");
        std::fs::write(&file, b"x").unwrap();
        let bad = ExpArgs {
            resume_dir: Some(file.join("sub").to_str().unwrap().to_string()),
            ..ExpArgs::default()
        };
        assert!(validate_args(&bad).is_err());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn report_renders_quick() {
        let args = ExpArgs {
            quick: true,
            seeds: 2,
            n: 512,
            ..ExpArgs::default()
        };
        let rendered = topology_report(&args).render();
        assert!(rendered.contains("topologies"));
        assert!(rendered.contains("cycle"));
        assert!(rendered.contains("regular:8"));
    }
}
