//! E3/E4/E5 — per-lemma quantitative verification.
//!
//! Each lemma of §3 makes a concrete claim about the realized trajectory;
//! these experiments measure the claimed quantity on exact simulations and
//! print "paper bound vs measured" rows:
//!
//! * **Lemma 3.1** (E3): u(t) never exceeds n/2 − n/4k + 10n/(k−1)² +
//!   (20·13²+1)·√(n ln n) during poly(n) interactions. We record
//!   max_t u(t) over full stabilization runs and report the excess over
//!   the plateau in √(n ln n) units (the paper's slack is ≈ 3381 such
//!   units-of-constant; the observed excess should be a small constant).
//! * **Lemma 3.3** (E4): an opinion at ≤ 3n/2k needs ≥ kn/25 interactions
//!   to reach 2n/k. Every stabilizing run's winner crosses both levels on
//!   its way to consensus; we measure the crossing-to-crossing time.
//! * **Lemma 3.4** (E5): the maximum pairwise gap needs ≥ kn/24
//!   interactions to double (while small). We record the first-crossing
//!   times of the geometric level ladder α·2^ℓ and report each doubling
//!   time in kn units.
//!
//! All three probes run through the backend-agnostic observation layer
//! ([`Simulator::advance_observed`](pop_proto::Simulator::advance_observed)):
//! any `--backend` drives them, with exact per-effective-event trajectories
//! on the single-event engines (`seq`, `skip`, `agent`, `count`, `graph`)
//! and block-checkpoint trajectories on the leaping ones (`batch`,
//! `batchgraph`) — there, running extrema and crossing instants resolve to
//! the ~√n-interaction block boundary, a granularity far below the kn-scale
//! quantities the lemmas bound.

use crate::cli::ExpArgs;
use crate::report::Report;
use crate::runner;
use pop_proto::Observation;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use usd_core::analysis::undecided_plateau;
use usd_core::backend::{make_simulator, Backend};
use usd_core::init::InitialConfigBuilder;
use usd_core::theory::{self, Bounds};

/// Default k grid for the lemma sweeps at a given n.
pub fn default_k_grid(n: u64) -> Vec<usize> {
    let fig1 = theory::figure1_k(n);
    let mut ks = vec![4, 8, 16, fig1];
    ks.sort_unstable();
    ks.dedup();
    ks.retain(|&k| (k as u64) * 4 <= n);
    ks
}

// ---------------------------------------------------------------------------
// E3: Lemma 3.1
// ---------------------------------------------------------------------------

/// Result of one Lemma 3.1 measurement cell.
#[derive(Debug, Clone, Copy)]
pub struct Lemma31Cell {
    /// Number of opinions.
    pub k: usize,
    /// Max u(t) observed, averaged over seeds.
    pub max_u_mean: f64,
    /// Largest max u(t) over all seeds.
    pub max_u_worst: f64,
    /// The plateau n/2 − n/4k.
    pub plateau: f64,
    /// The paper's ceiling (Lemma 3.1 RHS).
    pub ceiling: f64,
    /// Worst observed excess over the plateau in √(n ln n) units.
    pub excess_units: f64,
    /// Whether every seed stayed below the ceiling.
    pub within_bound: bool,
}

/// Run E3 for one (n, k) across seeds on the chosen backend.
pub fn lemma31_cell(
    backend: Backend,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> Lemma31Cell {
    let maxes = runner::repeat(master_seed ^ (k as u64) << 32, seeds, |_rep, rng| {
        let config = InitialConfigBuilder::new(n, k).figure1();
        let mut sim = make_simulator(backend, &config);
        let budget = crate::fig1::default_budget(n, k);
        let mut max_u = 0u64;
        sim.advance_observed(rng, budget, &mut |obs: &Observation<'_>| {
            max_u = max_u.max(obs.counts[k]);
            true
        });
        max_u as f64
    });
    let summary = Summary::of(&maxes);
    let plateau = undecided_plateau(n, k);
    let ceiling = Bounds::new(n, k).undecided_ceiling();
    let unit = theory::sqrt_n_log_n(n) as f64;
    Lemma31Cell {
        k,
        max_u_mean: summary.mean(),
        max_u_worst: summary.max(),
        plateau,
        ceiling,
        excess_units: (summary.max() - plateau) / unit,
        within_bound: summary.max() <= ceiling,
    }
}

/// E3 report.
pub fn lemma31_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(10_000));
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let ks = match args.k {
        Some(k) => vec![k],
        None => default_k_grid(n),
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        lemma31_cell(backend, n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E3 / Lemma 3.1: ceiling on the undecided count, n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Claim: u(t) <= n/2 - n/4k + 10n/(k-1)^2 + (20*13^2+1)*sqrt(n ln n) \
         w.h.p. for n^4 interactions. Measured: worst-case max u(t) over \
         full stabilization runs. 'excess' is (max u - plateau) in \
         sqrt(n ln n) units; the paper's slack constant is ~3381 such units, \
         so small single-digit excesses confirm the bound with huge margin.",
    );
    let mut t = TextTable::new(&[
        "k",
        "plateau",
        "max u (mean)",
        "max u (worst)",
        "excess units",
        "ceiling",
        "within bound",
    ]);
    for c in &cells {
        t.row_owned(vec![
            c.k.to_string(),
            fmt_sig(c.plateau, 6),
            fmt_sig(c.max_u_mean, 6),
            fmt_sig(c.max_u_worst, 6),
            fmt_sig(c.excess_units, 3),
            fmt_sig(c.ceiling, 6),
            if c.within_bound { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }
    report.table("lemma31", t);
    report
}

// ---------------------------------------------------------------------------
// E4: Lemma 3.3
// ---------------------------------------------------------------------------

/// Result of one Lemma 3.3 measurement cell.
#[derive(Debug, Clone, Copy)]
pub struct Lemma33Cell {
    /// Number of opinions.
    pub k: usize,
    /// Runs in which the winner crossed both 3n/2k and 2n/k.
    pub crossings: u64,
    /// Seeds run.
    pub seeds: u64,
    /// Minimum observed crossing-to-crossing time, in kn units.
    pub min_tau_over_kn: f64,
    /// Mean observed crossing-to-crossing time, in kn units.
    pub mean_tau_over_kn: f64,
}

/// Run E4 for one (n, k) across seeds on the chosen backend: measure the
/// time the (eventual) winner spends between support 3n/2k and 2n/k.
pub fn lemma33_cell(
    backend: Backend,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> Lemma33Cell {
    let lo = 3 * n / (2 * k as u64);
    let hi = 2 * n / k as u64;
    let taus: Vec<Option<f64>> = runner::repeat(
        master_seed ^ 0x33 ^ ((k as u64) << 32),
        seeds,
        |_rep, rng| {
            let config = InitialConfigBuilder::new(n, k).figure1();
            let mut sim = make_simulator(backend, &config);
            let budget = crate::fig1::default_budget(n, k);
            let mut t_lo: Vec<Option<u64>> = vec![None; k];
            let mut tau = None;
            // Track the first (upward) crossing of each level by any
            // opinion at every observation boundary. An O(k) scan per
            // boundary is cheap at these sizes; on the exact backends the
            // boundary is every effective event, so no crossing instant
            // can be missed (on the leaping backends it resolves to the
            // block boundary).
            sim.advance_observed(rng, budget, &mut |obs: &Observation<'_>| {
                for (i, &x) in obs.counts[..k].iter().enumerate() {
                    if x >= lo && t_lo[i].is_none() {
                        t_lo[i] = Some(obs.interactions);
                    }
                    if x >= hi {
                        if let Some(start) = t_lo[i] {
                            tau = Some((obs.interactions - start) as f64);
                        }
                    }
                }
                tau.is_none()
            });
            tau
        },
    );
    let kn = (k as u64 * n) as f64;
    let crossed: Vec<f64> = taus.iter().flatten().map(|&t| t / kn).collect();
    let summary = if crossed.is_empty() {
        Summary::new()
    } else {
        Summary::of(&crossed)
    };
    Lemma33Cell {
        k,
        crossings: crossed.len() as u64,
        seeds,
        min_tau_over_kn: if crossed.is_empty() {
            f64::NAN
        } else {
            summary.min()
        },
        mean_tau_over_kn: summary.mean(),
    }
}

/// E4 report.
pub fn lemma33_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(10_000));
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let ks = match args.k {
        Some(k) => vec![k],
        None => default_k_grid(n),
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        lemma33_cell(backend, n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E4 / Lemma 3.3: opinion growth 3n/2k -> 2n/k needs >= kn/25, n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Claim: from support <= 3n/2k, reaching 2n/k takes at least kn/25 \
         interactions w.h.p. Measured on the eventual winner's trajectory \
         (the only opinion that crosses these levels). The paper's constant \
         is 1/25 = 0.04: every measured tau/kn must be >= 0.04.",
    );
    let mut t = TextTable::new(&[
        "k",
        "crossings/seeds",
        "min tau/kn",
        "mean tau/kn",
        "bound 1/25",
        "holds",
    ]);
    for c in &cells {
        let holds = c.crossings == 0 || c.min_tau_over_kn >= 1.0 / 25.0;
        t.row_owned(vec![
            c.k.to_string(),
            format!("{}/{}", c.crossings, c.seeds),
            fmt_sig(c.min_tau_over_kn, 4),
            fmt_sig(c.mean_tau_over_kn, 4),
            "0.0400".to_string(),
            if holds { "yes" } else { "VIOLATED" }.to_string(),
        ]);
    }
    report.table("lemma33", t);
    report
}

// ---------------------------------------------------------------------------
// E5: Lemma 3.4
// ---------------------------------------------------------------------------

/// Result of one Lemma 3.4 measurement cell.
#[derive(Debug, Clone)]
pub struct Lemma34Cell {
    /// Number of opinions.
    pub k: usize,
    /// Per-level doubling times in kn units: entry ℓ is the time for the
    /// max gap to go from α·2^ℓ to α·2^(ℓ+1) (averaged over seeds that
    /// reached the level).
    pub doubling_times_kn: Vec<f64>,
    /// Minimum doubling time across levels/seeds, in kn units.
    pub min_doubling_kn: f64,
}

/// Run E5 for one (n, k) on the chosen backend: record the max-gap
/// level-crossing ladder.
pub fn lemma34_cell(
    backend: Backend,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> Lemma34Cell {
    let alpha0 = theory::sqrt_n_log_n(n).max(1) as f64;
    // Ladder until the Theorem 3.5 cap n^(3/4)/√k.
    let cap = (n as f64).powf(0.75) / (k as f64).sqrt();
    let mut levels = Vec::new();
    let mut level = alpha0 * 2.0;
    while level <= cap * 2.0 {
        levels.push(level);
        level *= 2.0;
    }
    if levels.is_empty() {
        levels.push(alpha0 * 2.0);
    }
    let n_levels = levels.len();

    let per_seed: Vec<Vec<Option<u64>>> = runner::repeat(
        master_seed ^ 0x34 ^ ((k as u64) << 32),
        seeds,
        |_rep, rng| {
            let config = InitialConfigBuilder::new(n, k).figure1();
            let mut sim = make_simulator(backend, &config);
            let budget = crate::fig1::default_budget(n, k);
            let mut crossings: Vec<Option<u64>> = vec![None; n_levels + 1];
            // crossings[0] = first time gap >= alpha0; crossings[l+1] for
            // levels[l].
            sim.advance_observed(rng, budget, &mut |obs: &Observation<'_>| {
                let xs = &obs.counts[..k];
                let max = xs.iter().max().copied().unwrap_or(0);
                let min = xs.iter().min().copied().unwrap_or(0);
                let gap = (max - min) as f64;
                if crossings[0].is_none() && gap >= alpha0 {
                    crossings[0] = Some(obs.interactions);
                }
                for (l, &lvl) in levels.iter().enumerate() {
                    if crossings[l + 1].is_none() && gap >= lvl {
                        crossings[l + 1] = Some(obs.interactions);
                    }
                }
                crossings[n_levels].is_none()
            });
            crossings
        },
    );

    let kn = (k as u64 * n) as f64;
    let mut per_level: Vec<Summary> = vec![Summary::new(); n_levels];
    let mut min_doubling = f64::INFINITY;
    for crossings in &per_seed {
        for l in 0..n_levels {
            if let (Some(a), Some(b)) = (crossings[l], crossings[l + 1]) {
                let tau = (b - a) as f64 / kn;
                per_level[l].add(tau);
                min_doubling = min_doubling.min(tau);
            }
        }
    }
    Lemma34Cell {
        k,
        doubling_times_kn: per_level
            .iter()
            .map(|s| if s.count() == 0 { f64::NAN } else { s.mean() })
            .collect(),
        min_doubling_kn: min_doubling,
    }
}

/// E5 report.
pub fn lemma34_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(10_000));
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let ks = match args.k {
        Some(k) => vec![k],
        None => default_k_grid(n),
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        lemma34_cell(backend, n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E5 / Lemma 3.4: max-gap doubling needs >= kn/24 interactions, n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Claim: while the max pairwise gap is o(n/k), doubling it takes at \
         least kn/24 ~ 0.0417*kn interactions w.h.p. Measured on the level \
         ladder alpha*2^l starting at alpha = sqrt(n ln n) (the Theorem 3.5 \
         induction). NaN marks levels never reached within the run.",
    );
    let mut t = TextTable::new(&[
        "k",
        "min doubling/kn",
        "bound 1/24",
        "holds",
        "per-level mean/kn",
    ]);
    for c in &cells {
        let holds = !c.min_doubling_kn.is_finite() || c.min_doubling_kn >= 1.0 / 24.0;
        let per_level = c
            .doubling_times_kn
            .iter()
            .map(|&v| fmt_sig(v, 3))
            .collect::<Vec<_>>()
            .join(" ");
        t.row_owned(vec![
            c.k.to_string(),
            fmt_sig(c.min_doubling_kn, 4),
            "0.0417".to_string(),
            if holds { "yes" } else { "VIOLATED" }.to_string(),
            per_level,
        ]);
    }
    report.table("lemma34", t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_is_sorted_unique_and_feasible() {
        let ks = default_k_grid(100_000);
        assert!(!ks.is_empty());
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ks, sorted);
        for &k in &ks {
            assert!((k as u64) * 4 <= 100_000);
        }
    }

    #[test]
    fn lemma31_cell_within_bound_small() {
        let cell = lemma31_cell(Backend::SkipAhead, 4_000, 4, 2, 1);
        assert!(cell.within_bound, "{cell:?}");
        assert!(cell.max_u_worst >= cell.plateau * 0.5);
        assert!(cell.max_u_worst <= 4_000.0);
        // Excess should be a small constant in sqrt(n ln n) units.
        assert!(cell.excess_units < 20.0, "excess {}", cell.excess_units);
    }

    #[test]
    fn lemma33_cell_bound_holds_small() {
        let cell = lemma33_cell(Backend::SkipAhead, 4_000, 4, 3, 2);
        // The winner must cross in at least some runs.
        assert!(cell.crossings > 0, "no crossings observed");
        assert!(
            cell.min_tau_over_kn >= 1.0 / 25.0,
            "lemma violated: {}",
            cell.min_tau_over_kn
        );
    }

    #[test]
    fn lemma34_cell_bound_holds_small() {
        let cell = lemma34_cell(Backend::SkipAhead, 4_000, 4, 3, 3);
        if cell.min_doubling_kn.is_finite() {
            assert!(
                cell.min_doubling_kn >= 1.0 / 24.0,
                "lemma violated: {}",
                cell.min_doubling_kn
            );
        }
        assert!(!cell.doubling_times_kn.is_empty());
    }

    #[test]
    fn lemma_probes_run_on_the_exact_backends() {
        // The observation layer makes the lemma probes backend-agnostic:
        // the same cell runs on the reference engine, the countwise
        // engine, and the graph engine's clique instance, with the
        // measured quantity staying inside the paper's bound on all of
        // them. (The leaping engines, whose checkpoint granularity needs
        // a block slack on the crossing bound, are covered by the tier-1
        // tests/lemma_smoke.rs.)
        for backend in [Backend::Sequential, Backend::Count, Backend::Graph] {
            let cell = lemma31_cell(backend, 2_000, 4, 1, 7);
            assert!(cell.within_bound, "{backend}: {cell:?}");
            assert!(
                cell.max_u_worst >= cell.plateau * 0.5,
                "{backend}: implausibly small max u {cell:?}"
            );
            let c33 = lemma33_cell(backend, 2_000, 4, 2, 8);
            assert!(c33.crossings > 0, "{backend}: no crossings observed");
            assert!(
                c33.min_tau_over_kn >= 1.0 / 25.0,
                "{backend}: lemma violated: {}",
                c33.min_tau_over_kn
            );
        }
    }

    #[test]
    fn reports_render_quick() {
        let args = ExpArgs {
            n: 3_000,
            quick: true,
            k: Some(4),
            ..ExpArgs::default()
        };
        for report in [
            lemma31_report(&args),
            lemma33_report(&args),
            lemma34_report(&args),
        ] {
            let s = report.render();
            assert!(s.contains("Lemma 3."), "{s}");
            assert!(!s.contains("VIOLATED"), "a lemma bound was violated:\n{s}");
        }
    }
}
