//! Experiment report assembly: stdout text plus optional CSV files.
//!
//! A [`Report`] accumulates titled sections (prose, tables, charts) and
//! renders them to one string; if the user passed `--csv`, every table is
//! also written to `<path>` (first table) and `<path>.<slug>.csv`
//! (subsequent tables).

use sim_stats::tables::TextTable;
use std::fmt::Write as _;

/// A structured experiment report.
#[derive(Debug, Default)]
pub struct Report {
    sections: Vec<Section>,
}

#[derive(Debug)]
enum Section {
    Heading(String),
    Text(String),
    Table { slug: String, table: TextTable },
    Chart(String),
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Add a heading line.
    pub fn heading(&mut self, text: impl Into<String>) -> &mut Self {
        self.sections.push(Section::Heading(text.into()));
        self
    }

    /// Add a paragraph of prose.
    pub fn text(&mut self, text: impl Into<String>) -> &mut Self {
        self.sections.push(Section::Text(text.into()));
        self
    }

    /// Add a table (the `slug` names its CSV file).
    pub fn table(&mut self, slug: impl Into<String>, table: TextTable) -> &mut Self {
        self.sections.push(Section::Table {
            slug: slug.into(),
            table,
        });
        self
    }

    /// Add a pre-rendered ASCII chart.
    pub fn chart(&mut self, rendered: impl Into<String>) -> &mut Self {
        self.sections.push(Section::Chart(rendered.into()));
        self
    }

    /// Render everything to a display string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            match s {
                Section::Heading(h) => {
                    let _ = writeln!(out, "\n=== {h} ===\n");
                }
                Section::Text(t) => {
                    let _ = writeln!(out, "{t}");
                }
                Section::Table { table, .. } => {
                    let _ = writeln!(out, "{table}");
                }
                Section::Chart(c) => {
                    let _ = writeln!(out, "{c}");
                }
            }
        }
        out
    }

    /// Write every table as CSV under `base` (the `--csv` value).
    /// Returns the list of files written.
    pub fn write_csvs(&self, base: &str) -> std::io::Result<Vec<String>> {
        let mut written = Vec::new();
        let mut first = true;
        for s in &self.sections {
            if let Section::Table { slug, table } = s {
                let path = if first {
                    base.to_string()
                } else {
                    format!("{base}.{slug}.csv")
                };
                first = false;
                std::fs::write(&path, table.to_csv())?;
                written.push(path);
            }
        }
        Ok(written)
    }

    /// Standard binary epilogue: print the report and honor `--csv`.
    pub fn finish(&self, csv: Option<&str>) {
        print!("{}", self.render());
        if let Some(base) = csv {
            match self.write_csvs(base) {
                Ok(files) => {
                    for f in files {
                        eprintln!("wrote {f}");
                    }
                }
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TextTable {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1", "2"]);
        t
    }

    #[test]
    fn renders_all_sections() {
        let mut r = Report::new();
        r.heading("Title")
            .text("prose")
            .table("t1", sample_table())
            .chart("<chart>");
        let s = r.render();
        assert!(s.contains("=== Title ==="));
        assert!(s.contains("prose"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("<chart>"));
    }

    #[test]
    fn csv_files_written() {
        let dir = std::env::temp_dir().join("usd_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("out.csv");
        let base = base.to_str().unwrap();

        let mut r = Report::new();
        r.table("first", sample_table());
        r.table("second", sample_table());
        let files = r.write_csvs(base).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0], base);
        assert!(files[1].ends_with(".second.csv"));
        let content = std::fs::read_to_string(&files[0]).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        for f in files {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn empty_report_renders_empty() {
        assert_eq!(Report::new().render(), "");
    }
}
