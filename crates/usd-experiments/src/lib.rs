//! Experiment harness for the PODC 2025 lower-bound reproduction.
//!
//! Every figure and quantitative claim in the paper's evaluation maps to
//! one module here and one binary in `src/bin/` (see DESIGN.md §4 for the
//! full index):
//!
//! | id  | artifact                         | module / binary              |
//! |-----|----------------------------------|------------------------------|
//! | E1  | Figure 1 (left)                  | [`fig1`] / `fig1_left`       |
//! | E2  | Figure 1 (right)                 | [`fig1`] / `fig1_right`      |
//! | E3  | Lemma 3.1 u(t) ceiling           | [`lemmas`] / `lemma31_undecided_bound` |
//! | E4  | Lemma 3.3 opinion growth         | [`lemmas`] / `lemma33_opinion_growth`  |
//! | E5  | Lemma 3.4 gap doubling           | [`lemmas`] / `lemma34_gap_doubling`    |
//! | E6  | Theorem 3.5 scaling              | [`scaling`] / `thm35_scaling`          |
//! | E7  | Tightness band (vs Amir et al.)  | [`scaling`] / `tightness_band`         |
//! | E8  | Bias sensitivity                 | [`comparisons`] / `bias_sensitivity`   |
//! | E9  | Population-protocol vs Gossip    | [`comparisons`] / `gossip_vs_pp`       |
//! | E10 | k = 2 special case O(log n)      | [`scaling`] / `k2_logn`                |
//! | E11 | Baseline protocol comparison     | [`comparisons`] / `baseline_comparison`|
//! | E12 | Simulator ablation               | [`comparisons`] / `simulator_ablation` |
//! | E13 | Breaking the barrier (§4)        | [`barrier`] / `breaking_the_barrier`   |
//! | E14 | Topology sweep (off-clique USD)  | [`topology`] / `topology_sweep`        |
//!
//! Shared infrastructure: [`cli`] (uniform `--n/--k/--seeds/--csv/--threads`
//! flag parsing), [`runner`] (deterministic multi-threaded sweeps with
//! `USD_THREADS`/`--threads` thread-count control), and [`report`] (stdout
//! tables/charts plus optional CSV output).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod cli;
pub mod comparisons;
pub mod fig1;
pub mod lemmas;
pub mod report;
pub mod runner;
pub mod scaling;
pub mod topology;

pub use cli::ExpArgs;
pub use report::Report;
