//! Uniform command-line argument handling for the experiment binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --n <u64>        population size
//! --k <usize>      number of opinions (default: experiment-specific)
//! --seeds <u64>    number of independent runs per cell
//! --seed <u64>     master seed (default 42)
//! --csv <path>     also write results as CSV next to the stdout report
//! --quick          shrink everything for a fast smoke run
//! --threads <t>    worker-thread count for sweeps (default: USD_THREADS
//!                  env, else available parallelism)
//! --topology <f>   interaction-graph family (topology experiments only)
//! --degree <d>     degree parameter for regular/er families
//! --backend <b>    simulation backend, where the experiment honors it
//!                  (fig1, the lemma probes E3/E4/E5, the scaling sweeps
//!                  E6/E7/E10, E8, E11, and E13: any generic backend;
//!                  topology_sweep: any backend whose
//!                  `capabilities().topologies` holds — agent, graph,
//!                  batchgraph, pargraph, replica)
//! --timeline-dir <dir>
//!                  write one flight-recorder JSONL per sweep cell from
//!                  the cell's representative run (topology_sweep only)
//! --resume-dir <dir>
//!                  persist each completed sweep cell in <dir> and skip
//!                  cells already completed by a previous interrupted run
//!                  with the same parameters (topology_sweep only)
//! ```
//!
//! Parsing is by hand (no external dependency) and strict: unknown flags
//! are errors, so typos do not silently run the default experiment.

use pop_proto::topology::TopologyFamily;
use usd_core::backend::Backend;

/// Parsed experiment arguments with per-experiment defaults filled in by
/// the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Population size.
    pub n: u64,
    /// Number of opinions (`None` → experiment picks, e.g. the paper's k).
    pub k: Option<usize>,
    /// Independent repetitions per sweep cell.
    pub seeds: u64,
    /// Master seed.
    pub seed: u64,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Shrink parameters for a smoke run.
    pub quick: bool,
    /// Sweep worker-thread override (`None` → `USD_THREADS` env, else
    /// available parallelism).
    pub threads: Option<usize>,
    /// Restrict topology experiments to one graph family.
    pub topology: Option<TopologyFamily>,
    /// Degree parameter for degree-parameterized families.
    pub degree: Option<usize>,
    /// Simulation backend, for the experiments that honor it (`None` →
    /// experiment default).
    pub backend: Option<Backend>,
    /// Directory for per-cell flight-recorder JSONL files (experiments
    /// that sample timelines; currently topology_sweep).
    pub timeline_dir: Option<String>,
    /// Directory for idempotent per-cell result files: completed cells
    /// are persisted there as they finish and skipped on a re-run
    /// (currently topology_sweep).
    pub resume_dir: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            n: 100_000,
            k: None,
            seeds: 5,
            seed: 42,
            csv: None,
            quick: false,
            threads: None,
            topology: None,
            degree: None,
            backend: None,
            timeline_dir: None,
            resume_dir: None,
        }
    }
}

impl ExpArgs {
    /// Parse from an iterator of argument strings (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--n" => {
                    out.n = take("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
                }
                "--k" => {
                    out.k = Some(take("--k")?.parse().map_err(|e| format!("--k: {e}"))?);
                }
                "--seeds" => {
                    out.seeds = take("--seeds")?
                        .parse()
                        .map_err(|e| format!("--seeds: {e}"))?;
                }
                "--seed" => {
                    out.seed = take("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--csv" => {
                    out.csv = Some(take("--csv")?);
                }
                "--quick" => {
                    out.quick = true;
                }
                "--threads" => {
                    out.threads = Some(
                        take("--threads")?
                            .parse()
                            .map_err(|e| format!("--threads: {e}"))?,
                    );
                }
                "--topology" => {
                    out.topology = Some(take("--topology")?.parse()?);
                }
                "--backend" => {
                    out.backend = Some(take("--backend")?.parse()?);
                }
                "--timeline-dir" => {
                    out.timeline_dir = Some(take("--timeline-dir")?);
                }
                "--resume-dir" => {
                    out.resume_dir = Some(take("--resume-dir")?);
                }
                "--degree" => {
                    out.degree = Some(
                        take("--degree")?
                            .parse()
                            .map_err(|e| format!("--degree: {e}"))?,
                    );
                }
                "--help" | "-h" => {
                    return Err("flags: --n <u64> --k <usize> --seeds <u64> --seed <u64> \
                         --csv <path> --quick --threads <usize> \
                         --topology <family> --degree <usize> --backend <name> \
                         --timeline-dir <dir> --resume-dir <dir>"
                        .to_string());
                }
                other => return Err(format!("unknown flag '{other}' (try --help)")),
            }
        }
        if out.n < 2 {
            return Err("--n must be at least 2".to_string());
        }
        if out.seeds == 0 {
            return Err("--seeds must be positive".to_string());
        }
        if out.threads == Some(0) {
            return Err("--threads must be positive".to_string());
        }
        if out.degree == Some(0) {
            return Err("--degree must be at least 1".to_string());
        }
        Ok(out)
    }

    /// Parse from the process environment; print the error and exit(2) on
    /// failure (for use in `fn main`). Applies `--threads` to the sweep
    /// runner as a process-wide override.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => {
                crate::runner::set_thread_override(args.threads);
                args
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The k to use: explicit `--k` or the experiment's default.
    pub fn k_or(&self, default: usize) -> usize {
        self.k.unwrap_or(default)
    }

    /// The backend to use: explicit `--backend` or the experiment's
    /// default.
    pub fn backend_or(&self, default: Backend) -> Backend {
        self.backend.unwrap_or(default)
    }

    /// [`ExpArgs::backend_or`] for clique experiments running at
    /// population `n`: validates the choice via
    /// [`validate_clique_backend`] and exits(2) with the error message
    /// when the run could only panic later — the [`ExpArgs::from_env`]
    /// convention for flag errors, intended for the binary-backed report
    /// entry points. Library embedders that must not have their process
    /// terminated should pre-validate via [`validate_clique_backend`]
    /// before calling a report function.
    pub fn clique_backend_or(&self, default: Backend, n: u64) -> Backend {
        let backend = self.backend_or(default);
        match validate_clique_backend(backend, n) {
            Ok(()) => backend,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Quick-mode reduction helper: `value` normally, `quick` when --quick.
    pub fn unless_quick<T>(&self, value: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            value
        }
    }
}

/// Validate a backend choice for a *clique* experiment at population `n`:
/// the graph engines here mean the complete graph, whose Θ(n²) edge list
/// is capped at [`usd_core::backend::COMPLETE_GRAPH_MAX_N`] agents.
/// Binaries call this (via [`ExpArgs::clique_backend_or`]) up front and
/// exit non-zero instead of panicking mid-run.
pub fn validate_clique_backend(backend: Backend, n: u64) -> Result<(), String> {
    let cap = usd_core::backend::COMPLETE_GRAPH_MAX_N;
    if matches!(backend, Backend::Graph | Backend::BatchGraph) && n > cap {
        return Err(format!(
            "--backend {backend} runs the complete graph in this experiment \
             (n(n-1)/2 edges); n = {n} exceeds the {cap} cap — pass --n {cap} \
             or less (or --quick), or use topology_sweep for sparse graphs"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.n, 100_000);
        assert_eq!(a.k, None);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.seed, 42);
        assert!(!a.quick);
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--n",
            "5000",
            "--k",
            "7",
            "--seeds",
            "3",
            "--seed",
            "9",
            "--csv",
            "/tmp/x.csv",
            "--quick",
            "--threads",
            "2",
            "--topology",
            "regular:6",
            "--degree",
            "4",
            "--timeline-dir",
            "/tmp/timelines",
            "--resume-dir",
            "/tmp/cells",
        ])
        .unwrap();
        assert_eq!(a.n, 5000);
        assert_eq!(a.k, Some(7));
        assert_eq!(a.seeds, 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.csv.as_deref(), Some("/tmp/x.csv"));
        assert!(a.quick);
        assert_eq!(a.threads, Some(2));
        assert_eq!(a.topology, Some(TopologyFamily::Regular { d: 6 }));
        assert_eq!(a.degree, Some(4));
        assert_eq!(a.timeline_dir.as_deref(), Some("/tmp/timelines"));
        assert_eq!(a.resume_dir.as_deref(), Some("/tmp/cells"));
    }

    #[test]
    fn topology_and_threads_validation() {
        assert!(parse(&["--topology", "moebius"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--degree", "x"]).is_err());
        let a = parse(&["--topology", "hypercube"]).unwrap();
        assert_eq!(a.topology, Some(TopologyFamily::Hypercube));
    }

    #[test]
    fn clique_backend_validation() {
        use usd_core::backend::COMPLETE_GRAPH_MAX_N;
        assert!(validate_clique_backend(Backend::Graph, COMPLETE_GRAPH_MAX_N).is_ok());
        assert!(validate_clique_backend(Backend::Graph, COMPLETE_GRAPH_MAX_N + 1).is_err());
        assert!(validate_clique_backend(Backend::BatchGraph, 1_000_000).is_err());
        // Non-graph backends have no cap.
        assert!(validate_clique_backend(Backend::Batch, u64::MAX / 2).is_ok());
        assert!(validate_clique_backend(Backend::Sequential, 1_000_000).is_ok());
    }

    #[test]
    fn backend_flag_parses_and_rejects_unknown() {
        let a = parse(&["--backend", "batchgraph"]).unwrap();
        assert_eq!(a.backend, Some(Backend::BatchGraph));
        assert_eq!(a.backend_or(Backend::SkipAhead), Backend::BatchGraph);
        assert_eq!(
            parse(&[]).unwrap().backend_or(Backend::Count),
            Backend::Count
        );
        assert!(parse(&["--backend", "warp9"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--n"]).is_err());
    }

    #[test]
    fn bad_number_rejected() {
        assert!(parse(&["--n", "abc"]).is_err());
        assert!(parse(&["--n", "1"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
    }

    #[test]
    fn helpers() {
        let a = parse(&["--k", "4", "--quick"]).unwrap();
        assert_eq!(a.k_or(9), 4);
        assert_eq!(a.unless_quick(100, 5), 5);
        let b = parse(&[]).unwrap();
        assert_eq!(b.k_or(9), 9);
        assert_eq!(b.unless_quick(100, 5), 100);
    }
}
