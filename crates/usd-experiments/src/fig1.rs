//! E1/E2 — regeneration of **Figure 1** (both panels).
//!
//! Paper setup: n = 1,000,000 agents, k = ⌊√n/(ln n · ln ln n)⌋ = 27
//! opinions, k − 1 equal minorities, majority bias √(n ln n). The left
//! panel plots the trajectories of the majority, the (×k-scaled)
//! minorities, and the undecided count together with the line
//! y = n/2 − n/4k; the right panel zooms into the window until x₁ doubles
//! and adds the maximum majority–minority difference.
//!
//! Defaults here use n = 100,000 so the binaries finish in seconds; pass
//! `--n 1000000` for the paper's exact setup.

use crate::cli::ExpArgs;
use crate::report::Report;
use pop_proto::Simulator;
use sim_stats::plot::AsciiChart;
use sim_stats::rng::RngFactory;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use sim_stats::timeseries::{Series, TimeSeries};
use usd_core::analysis::undecided_plateau;
use usd_core::backend::{make_simulator, Backend};
use usd_core::init::InitialConfigBuilder;
use usd_core::theory;

/// One recorded Figure-1 style run.
#[derive(Debug, Clone)]
pub struct Fig1Run {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Initial majority bias.
    pub bias: u64,
    /// Snapshots: (interactions, majority, highlighted minority,
    /// mean minority, undecided, max majority–minority difference).
    pub snapshots: Vec<Fig1Snapshot>,
    /// Winner opinion if stabilized.
    pub winner: Option<usize>,
    /// Interactions at stabilization (or budget).
    pub stabilization: u64,
    /// Whether the run stabilized within budget.
    pub stabilized: bool,
    /// First interaction at which x₁ reached 2·x₁(0), if it did.
    pub majority_doubling: Option<u64>,
    /// Maximum undecided count observed at any snapshot.
    pub max_undecided: u64,
}

/// One snapshot of the tracked quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Snapshot {
    /// Interactions elapsed.
    pub interactions: u64,
    /// Majority opinion count x₁.
    pub majority: u64,
    /// The highlighted minority's count (opinion 1).
    pub minority_sample: u64,
    /// Mean over all minority counts.
    pub minority_mean: f64,
    /// Undecided count u.
    pub undecided: u64,
    /// max_{j≥2}(x₁ − x_j).
    pub max_difference: i64,
}

/// Simulate one Figure-1 run on the default engine (the skip-ahead wrapper,
/// the historical choice for this experiment), recording roughly once per
/// parallel round.
pub fn simulate_fig1_run(n: u64, k: usize, seed: u64, budget: u64) -> Fig1Run {
    simulate_fig1_run_with(n, k, seed, budget, Backend::SkipAhead)
}

/// Simulate one Figure-1 run on any generic-substrate [`Backend`]
/// (including the USD-specialized skip-ahead engine through its
/// [`SkipAheadGeneric`](usd_core::dynamics::SkipAheadGeneric) wrapper —
/// the observer below only reads the trait-level counts).
///
/// Observation granularity follows the backend's advancement granularity:
/// the per-event engines (agent, count, skip) expose every effective
/// interaction to the doubling/plateau trackers, while the leaping
/// engines (batch) are sampled at their batch boundaries — advancements
/// are capped at the capture spacing of ~one parallel round either way.
pub fn simulate_fig1_run_with(
    n: u64,
    k: usize,
    seed: u64,
    budget: u64,
    backend: Backend,
) -> Fig1Run {
    let builder = InitialConfigBuilder::new(n, k);
    let config = builder.figure1();
    let bias = config.bias();
    let initial_majority = config.x(0);
    let mut sim = make_simulator(backend, &config);
    let mut rng = RngFactory::new(seed).stream(0);

    let mut snapshots = Vec::new();
    let mut majority_doubling = None;
    let mut max_undecided = 0u64;
    let capture = |sim: &dyn Simulator| {
        let counts = sim.counts();
        let xs = &counts[..k];
        let majority = xs[0];
        let minority_sample = if k > 1 { xs[1] } else { xs[0] };
        let (sum, min) = xs[1..]
            .iter()
            .fold((0u64, u64::MAX), |(s, m), &v| (s + v, m.min(v)));
        let minority_mean = if k > 1 {
            sum as f64 / (k - 1) as f64
        } else {
            0.0
        };
        Fig1Snapshot {
            interactions: sim.interactions(),
            majority,
            minority_sample,
            minority_mean,
            undecided: counts[k],
            max_difference: if k > 1 {
                majority as i64 - min as i64
            } else {
                0
            },
        }
    };
    snapshots.push(capture(&*sim));
    let mut next_capture = n; // ~1 parallel round
    let mut stabilized = sim.is_silent();
    while !stabilized {
        let done = sim.interactions();
        if done >= budget {
            break;
        }
        // Cap each advancement at the next capture boundary so leaping
        // backends cannot overshoot the snapshot cadence.
        let horizon = next_capture.max(done + 1).min(budget);
        let (advanced, changed) = sim.advance_changed(&mut rng, horizon - done);
        if advanced == 0 {
            stabilized = sim.is_silent();
            break;
        }
        if changed {
            let counts = sim.counts();
            max_undecided = max_undecided.max(counts[k]);
            if majority_doubling.is_none() && counts[0] >= 2 * initial_majority {
                majority_doubling = Some(sim.interactions());
            }
            if sim.is_silent() {
                stabilized = true;
                break;
            }
        }
        if sim.interactions() >= next_capture {
            snapshots.push(capture(&*sim));
            next_capture = sim.interactions() + n;
        }
    }
    let counts = sim.counts();
    let winner = if counts[k] == 0 && counts[..k].iter().filter(|&&c| c > 0).count() == 1 {
        counts[..k].iter().position(|&c| c > 0)
    } else {
        None
    };
    snapshots.push(capture(&*sim));
    Fig1Run {
        n,
        k,
        bias,
        snapshots,
        winner,
        stabilization: sim.interactions(),
        stabilized,
        majority_doubling,
        max_undecided,
    }
}

/// Default interaction budget: a ×40 safety factor over the Amir et al.
/// upper bound k·n·ln n.
pub fn default_budget(n: u64, k: usize) -> u64 {
    (40.0 * k as f64 * n as f64 * (n as f64).ln()) as u64
}

/// Build the left-panel time series (minorities scaled ×k, as the paper
/// does for visibility), plus the plateau line.
pub fn left_panel_series(run: &Fig1Run) -> TimeSeries {
    let n = run.n as f64;
    let kf = run.k as f64;
    let time: Vec<f64> = run
        .snapshots
        .iter()
        .map(|s| s.interactions as f64 / n)
        .collect();
    let mut ts = TimeSeries::with_time(time);
    ts.push_series(Series::new(
        "undecided",
        run.snapshots.iter().map(|s| s.undecided as f64).collect(),
    ));
    ts.push_series(Series::new(
        "minority x k",
        run.snapshots
            .iter()
            .map(|s| s.minority_sample as f64 * kf)
            .collect(),
    ));
    ts.push_series(Series::new(
        "majority",
        run.snapshots.iter().map(|s| s.majority as f64).collect(),
    ));
    let plateau = undecided_plateau(run.n, run.k);
    ts.push_series(Series::new(
        "n/2 - n/4k",
        vec![plateau; run.snapshots.len()],
    ));
    ts
}

/// Build the right-panel time series (unscaled), cut at the majority
/// doubling point (the paper's zoom window).
pub fn right_panel_series(run: &Fig1Run) -> TimeSeries {
    let n = run.n as f64;
    let cut = run.majority_doubling.unwrap_or(run.stabilization);
    let snaps: Vec<&Fig1Snapshot> = run
        .snapshots
        .iter()
        .filter(|s| s.interactions <= cut)
        .collect();
    let time: Vec<f64> = snaps.iter().map(|s| s.interactions as f64 / n).collect();
    let mut ts = TimeSeries::with_time(time);
    ts.push_series(Series::new(
        "minority",
        snaps.iter().map(|s| s.minority_sample as f64).collect(),
    ));
    ts.push_series(Series::new(
        "majority",
        snaps.iter().map(|s| s.majority as f64).collect(),
    ));
    ts.push_series(Series::new(
        "max difference",
        snaps.iter().map(|s| s.max_difference as f64).collect(),
    ));
    ts
}

fn summary_table(run: &Fig1Run) -> TextTable {
    let mut t = TextTable::new(&["quantity", "value"]);
    let n = run.n;
    t.row_owned(vec!["n".into(), fmt_thousands(n)]);
    t.row_owned(vec!["k".into(), run.k.to_string()]);
    t.row_owned(vec!["initial bias".into(), fmt_thousands(run.bias)]);
    t.row_owned(vec![
        "stabilized".into(),
        if run.stabilized { "yes" } else { "NO (budget)" }.into(),
    ]);
    t.row_owned(vec![
        "winner opinion (1-based)".into(),
        run.winner
            .map(|w| (w + 1).to_string())
            .unwrap_or("-".into()),
    ]);
    t.row_owned(vec![
        "stabilization parallel time".into(),
        fmt_sig(run.stabilization as f64 / n as f64, 4),
    ]);
    if let Some(d) = run.majority_doubling {
        t.row_owned(vec![
            "x1 doubling parallel time".into(),
            fmt_sig(d as f64 / n as f64, 4),
        ]);
        t.row_owned(vec![
            "doubling / stabilization".into(),
            fmt_sig(d as f64 / run.stabilization as f64, 3),
        ]);
    }
    let plateau = undecided_plateau(n, run.k);
    t.row_owned(vec!["plateau n/2 - n/4k".into(), fmt_sig(plateau, 6)]);
    t.row_owned(vec![
        "max u(t) observed".into(),
        fmt_thousands(run.max_undecided),
    ]);
    t.row_owned(vec![
        "max u(t) - plateau".into(),
        fmt_sig(run.max_undecided as f64 - plateau, 4),
    ]);
    t.row_owned(vec![
        "Lemma 3.1 slack sqrt(n ln n)".into(),
        fmt_thousands(theory::sqrt_n_log_n(n)),
    ]);
    t
}

/// E1: the Figure 1 (left) report.
pub fn fig1_left_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(20_000));
    let k = args.k_or(theory::figure1_k(n));
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let run = simulate_fig1_run_with(n, k, args.seed, default_budget(n, k), backend);
    let mut report = Report::new();
    report.heading(format!(
        "E1 / Figure 1 (left): USD evolution, n={}, k={k}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Paper: minorities (scaled x k) spread while u(t) hugs n/2 - n/4k; \
         the majority stays low for most of the run, then wins late.",
    );
    let ts = left_panel_series(&run).downsample(120);
    let chart = AsciiChart::new(100, 24)
        .title(format!("Evolution for n={}, k={k}", fmt_thousands(n)))
        .x_label("parallel time")
        .y_label("number of nodes");
    report.chart(chart.render(&ts));
    report.table("fig1_left_summary", summary_table(&run));
    let mut traj = TextTable::new(&[
        "parallel_time",
        "majority",
        "minority_sample",
        "minority_mean",
        "undecided",
        "max_difference",
    ]);
    for s in &run.snapshots {
        traj.row_owned(vec![
            fmt_sig(s.interactions as f64 / n as f64, 5),
            s.majority.to_string(),
            s.minority_sample.to_string(),
            fmt_sig(s.minority_mean, 6),
            s.undecided.to_string(),
            s.max_difference.to_string(),
        ]);
    }
    report.table("fig1_left_trajectory", traj);
    report
}

/// E2: the Figure 1 (right) report.
pub fn fig1_right_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(20_000));
    let k = args.k_or(theory::figure1_k(n));
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let run = simulate_fig1_run_with(n, k, args.seed, default_budget(n, k), backend);
    let mut report = Report::new();
    report.heading(format!(
        "E2 / Figure 1 (right): zoom until x1 doubles, n={}, k={k}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Paper observation: reaching 2*x1(0) consumes most of the \
         stabilization time (about 70 of 90 parallel-time units at n=1M); \
         only a short endgame remains afterwards.",
    );
    let ts = right_panel_series(&run).downsample(120);
    let chart = AsciiChart::new(100, 24)
        .title(format!(
            "Window until majority doubling, n={}, k={k}",
            fmt_thousands(n)
        ))
        .x_label("parallel time")
        .y_label("number of nodes");
    report.chart(chart.render(&ts));
    report.table("fig1_right_summary", summary_table(&run));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_run() -> Fig1Run {
        simulate_fig1_run(3_000, 4, 1, default_budget(3_000, 4))
    }

    #[test]
    fn run_stabilizes_and_majority_wins() {
        let run = tiny_run();
        assert!(run.stabilized);
        assert_eq!(run.winner, Some(0), "majority should win with fig1 bias");
        assert!(run.stabilization > 0);
        assert!(!run.snapshots.is_empty());
    }

    #[test]
    fn undecided_stays_near_plateau() {
        let run = tiny_run();
        let plateau = undecided_plateau(run.n, run.k);
        let slack = 3.0 * theory::sqrt_n_log_n(run.n) as f64 + 10.0 * run.n as f64 / 9.0;
        assert!(
            (run.max_undecided as f64) < plateau + slack,
            "max u {} vs plateau {plateau} + slack {slack}",
            run.max_undecided
        );
    }

    #[test]
    fn doubling_happens_before_stabilization() {
        let run = tiny_run();
        let d = run.majority_doubling.expect("x1 must double en route");
        assert!(d <= run.stabilization);
        // And it must consume a nontrivial fraction of the run (the paper's
        // point); be loose: at least 10%.
        assert!(
            d as f64 / run.stabilization as f64 > 0.1,
            "doubling at {d} of {}",
            run.stabilization
        );
    }

    #[test]
    fn snapshots_are_causally_ordered_and_conserving() {
        let run = tiny_run();
        let mut last = 0u64;
        for s in &run.snapshots {
            assert!(s.interactions >= last);
            last = s.interactions;
            assert!(s.majority + s.undecided <= run.n);
            assert!(s.max_difference >= 0 || s.interactions == 0);
        }
    }

    #[test]
    fn panel_series_shapes() {
        let run = tiny_run();
        let left = left_panel_series(&run);
        assert_eq!(left.series.len(), 4);
        assert_eq!(left.get("n/2 - n/4k").unwrap().values.len(), left.len());
        let right = right_panel_series(&run);
        assert_eq!(right.series.len(), 3);
        assert!(right.len() <= left.len());
    }

    #[test]
    fn generic_backends_reproduce_the_run_shape() {
        // The port onto the Simulator trait must preserve the experiment's
        // qualitative content for every generic backend, including the
        // skip-ahead engine exercised purely as a wrapper.
        for backend in [Backend::SkipAhead, Backend::Count, Backend::Batch] {
            let run = simulate_fig1_run_with(3_000, 4, 1, default_budget(3_000, 4), backend);
            assert!(run.stabilized, "{backend} did not stabilize");
            assert_eq!(run.winner, Some(0), "{backend}: majority should win");
            assert!(
                run.majority_doubling.is_some(),
                "{backend}: x1 never doubled"
            );
            assert!(run.snapshots.len() > 3, "{backend}: too few snapshots");
            let plateau = undecided_plateau(run.n, run.k);
            let slack = 3.0 * theory::sqrt_n_log_n(run.n) as f64 + 10.0 * run.n as f64 / 9.0;
            assert!(
                (run.max_undecided as f64) < plateau + slack,
                "{backend}: max u {} vs plateau {plateau} + slack {slack}",
                run.max_undecided
            );
        }
    }

    #[test]
    fn reports_render_quick() {
        let args = ExpArgs {
            n: 2_000,
            quick: true,
            seeds: 1,
            ..ExpArgs::default()
        };
        let left = fig1_left_report(&args).render();
        assert!(left.contains("Figure 1 (left)"));
        assert!(left.contains("legend"));
        let right = fig1_right_report(&args).render();
        assert!(right.contains("Figure 1 (right)"));
    }
}
