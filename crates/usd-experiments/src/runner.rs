//! Deterministic multi-threaded parameter sweeps.
//!
//! A sweep maps a worker function over a vector of cells, each cell getting
//! its own [`SimRng`] stream derived from the master seed and the cell
//! index — so results are bit-identical regardless of thread count or
//! scheduling. Work is distributed over a crossbeam channel; progress is
//! tracked behind a parking_lot mutex for optional reporting.

use crossbeam::channel;
use parking_lot::Mutex;
use sim_stats::rng::{RngFactory, SimRng};

/// Sweep progress counters (shared across workers).
#[derive(Debug, Default)]
pub struct Progress {
    done: Mutex<usize>,
}

impl Progress {
    /// Number of completed cells.
    pub fn done(&self) -> usize {
        *self.done.lock()
    }

    fn bump(&self) {
        *self.done.lock() += 1;
    }
}

/// Run `work(index, &item, rng)` for every item, in parallel, returning
/// results in input order. Deterministic: cell `i` always receives the RNG
/// stream `i` of `seed`, regardless of how cells are scheduled.
pub fn sweep<I, O, F>(seed: u64, items: Vec<I>, work: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(usize, &I, &mut SimRng) -> O + Sync,
{
    let factory = RngFactory::new(seed);
    let n_items = items.len();
    if n_items == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n_items);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let mut rng = factory.stream(i as u64);
                work(i, item, &mut rng)
            })
            .collect();
    }

    let progress = Progress::default();
    let (task_tx, task_rx) = channel::unbounded::<usize>();
    for i in 0..n_items {
        task_tx.send(i).expect("queue send");
    }
    drop(task_tx);

    let items_ref = &items;
    let work_ref = &work;
    let progress_ref = &progress;
    let mut results: Vec<Option<O>> = (0..n_items).map(|_| None).collect();
    let results_slots: Vec<Mutex<Option<O>>> =
        results.iter_mut().map(|_| Mutex::new(None)).collect();
    let slots_ref = &results_slots;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let task_rx = task_rx.clone();
            scope.spawn(move || {
                while let Ok(i) = task_rx.recv() {
                    let mut rng = factory.stream(i as u64);
                    let out = work_ref(i, &items_ref[i], &mut rng);
                    *slots_ref[i].lock() = Some(out);
                    progress_ref.bump();
                }
            });
        }
    });

    results_slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Repeat a single-cell experiment `reps` times with independent seeds and
/// collect the outputs (a one-dimensional sweep).
pub fn repeat<O, F>(seed: u64, reps: u64, work: F) -> Vec<O>
where
    O: Send,
    F: Fn(u64, &mut SimRng) -> O + Sync,
{
    sweep(seed, (0..reps).collect(), |_, &rep, rng| work(rep, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let out = sweep(1, (0..100).collect::<Vec<u64>>(), |i, &item, _rng| {
            assert_eq!(i as u64, item);
            item * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_invocations() {
        let run = || {
            sweep(7, vec![(); 50], |_, _, rng| rng.next())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_cell_rngs_differ() {
        let out = sweep(3, vec![(); 10], |_, _, rng| rng.next());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "cells shared RNG state");
    }

    #[test]
    fn empty_sweep() {
        let out: Vec<u64> = sweep(1, Vec::<u64>::new(), |_, &x, _| x);
        assert!(out.is_empty());
    }

    #[test]
    fn repeat_collects_all_reps() {
        let out = repeat(5, 20, |rep, _rng| rep);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_matches_sequential_reference() {
        // The parallel path must produce exactly what the sequential path
        // produces (thread-count independence).
        let items: Vec<u64> = (0..40).collect();
        let parallel = sweep(11, items.clone(), |_, &x, rng| x + rng.below(1000));
        let factory = RngFactory::new(11);
        let sequential: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let mut rng = factory.stream(i as u64);
                x + rng.below(1000)
            })
            .collect();
        assert_eq!(parallel, sequential);
    }
}
