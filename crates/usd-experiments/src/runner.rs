//! Deterministic multi-threaded parameter sweeps.
//!
//! A sweep maps a worker function over a vector of cells, each cell getting
//! its own [`SimRng`] stream derived from the master seed and the cell
//! index — so results are bit-identical regardless of thread count or
//! scheduling. Work is claimed from a shared atomic cursor; the done-counter
//! on the progress hot path is a plain [`AtomicUsize`] (a worker bumps it
//! after every cell, so a lock there would serialize the sweep's only
//! shared write).
//!
//! # Thread-count control
//!
//! By default a sweep uses [`std::thread::available_parallelism`]. That can
//! be overridden, in precedence order, by [`set_thread_override`] (wired to
//! the experiment binaries' `--threads` flag) and the `USD_THREADS`
//! environment variable — useful for pinning benchmark runs, containers
//! whose cgroup quota is below the reported core count, and debugging
//! scheduling-dependent timing. [`sweep_with_threads`] takes the count
//! explicitly. Thread count never changes results, only wall clock.
//!
//! The resolution itself lives in [`sim_stats::threads`] (re-exported
//! here), so the parallel sampling primitives in the lower layers — the
//! batch simulators' hypergeometric row fan-out and the sharded
//! `pargraph` engine's domain workers — honor the same
//! `--threads`/`USD_THREADS` discipline as the sweeps. Engine
//! construction itself never consults the environment: `RunSpec::threads`
//! resolves the count once at spec construction and passes it to the
//! engines as plain data.

use sim_stats::rng::{RngFactory, SimRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use sim_stats::threads::{resolve_threads, set_thread_override};

/// Sweep progress counters (shared across workers).
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicUsize,
    /// Total cells of the bound sweep; 0 until a sweep binds this
    /// progress (the sweep driver sets it before any cell runs).
    total: AtomicUsize,
}

/// A point-in-time view of sweep progress, cheap enough for a heartbeat
/// thread to poll every few milliseconds (two relaxed atomic loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Completed cells.
    pub done: usize,
    /// Total cells in the sweep (0 until a sweep binds the progress).
    pub total: usize,
}

impl ProgressSnapshot {
    /// Completed fraction in [0, 1]; 0.0 before the total is known.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.done as f64 / self.total as f64
        }
    }
}

impl Progress {
    /// Number of completed cells.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Snapshot for progress rendering. `total` is bound once before any
    /// cell runs, so the pair is coherent for any racing reader.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let total = self.total.load(Ordering::Relaxed);
        ProgressSnapshot {
            done: self.done.load(Ordering::Relaxed),
            total,
        }
    }

    fn bind_total(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
    }

    fn bump(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run `work(index, &item, rng)` for every item, in parallel, returning
/// results in input order. Deterministic: cell `i` always receives the RNG
/// stream `i` of `seed`, regardless of how cells are scheduled.
pub fn sweep<I, O, F>(seed: u64, items: Vec<I>, work: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(usize, &I, &mut SimRng) -> O + Sync,
{
    sweep_with_progress(seed, items, work, &Progress::default())
}

/// [`sweep`] with an explicit worker-thread count (bypassing the override
/// and environment resolution). `threads == 1` runs inline on the calling
/// thread. Results are identical for any thread count.
pub fn sweep_with_threads<I, O, F>(seed: u64, items: Vec<I>, work: F, threads: usize) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(usize, &I, &mut SimRng) -> O + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    run_sweep(seed, items, work, &Progress::default(), threads)
}

/// [`sweep`], reporting completed-cell counts through `progress` so a
/// caller on another thread can render a progress bar.
pub fn sweep_with_progress<I, O, F>(
    seed: u64,
    items: Vec<I>,
    work: F,
    progress: &Progress,
) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(usize, &I, &mut SimRng) -> O + Sync,
{
    let threads = resolve_threads();
    run_sweep(seed, items, work, progress, threads)
}

fn run_sweep<I, O, F>(
    seed: u64,
    items: Vec<I>,
    work: F,
    progress: &Progress,
    threads: usize,
) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(usize, &I, &mut SimRng) -> O + Sync,
{
    let factory = RngFactory::new(seed);
    let n_items = items.len();
    progress.bind_total(n_items);
    if n_items == 0 {
        return Vec::new();
    }
    let threads = threads.min(n_items);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let mut rng = factory.stream(i as u64);
                let out = work(i, item, &mut rng);
                progress.bump();
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let items_ref = &items;
    let work_ref = &work;
    let next_ref = &next;
    let results_slots: Vec<Mutex<Option<O>>> = (0..n_items).map(|_| Mutex::new(None)).collect();
    let slots_ref = &results_slots;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let mut rng = factory.stream(i as u64);
                let out = work_ref(i, &items_ref[i], &mut rng);
                *slots_ref[i].lock().expect("slot poisoned") = Some(out);
                progress.bump();
            });
        }
    });

    results_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Repeat a single-cell experiment `reps` times with independent seeds and
/// collect the outputs (a one-dimensional sweep).
pub fn repeat<O, F>(seed: u64, reps: u64, work: F) -> Vec<O>
where
    O: Send,
    F: Fn(u64, &mut SimRng) -> O + Sync,
{
    sweep(seed, (0..reps).collect(), |_, &rep, rng| work(rep, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let out = sweep(1, (0..100).collect::<Vec<u64>>(), |i, &item, _rng| {
            assert_eq!(i as u64, item);
            item * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_invocations() {
        let run = || sweep(7, vec![(); 50], |_, _, rng| rng.next());
        assert_eq!(run(), run());
    }

    #[test]
    fn per_cell_rngs_differ() {
        let out = sweep(3, vec![(); 10], |_, _, rng| rng.next());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "cells shared RNG state");
    }

    #[test]
    fn empty_sweep() {
        let out: Vec<u64> = sweep(1, Vec::<u64>::new(), |_, &x, _| x);
        assert!(out.is_empty());
    }

    #[test]
    fn repeat_collects_all_reps() {
        let out = repeat(5, 20, |rep, _rng| rep);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn progress_reaches_item_count() {
        let progress = Progress::default();
        assert_eq!(progress.snapshot(), ProgressSnapshot { done: 0, total: 0 });
        assert_eq!(progress.snapshot().fraction(), 0.0);
        let out = sweep_with_progress(9, (0..64u64).collect(), |_, &x, _| x, &progress);
        assert_eq!(out.len(), 64);
        assert_eq!(progress.done(), 64);
        let snap = progress.snapshot();
        assert_eq!(
            snap,
            ProgressSnapshot {
                done: 64,
                total: 64
            }
        );
        assert_eq!(snap.fraction(), 1.0);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<u64> = (0..30).collect();
        let one = sweep_with_threads(13, items.clone(), |_, &x, rng| x ^ rng.next(), 1);
        let four = sweep_with_threads(13, items.clone(), |_, &x, rng| x ^ rng.next(), 4);
        let many = sweep_with_threads(13, items, |_, &x, rng| x ^ rng.next(), 64);
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn thread_override_and_env_are_respected() {
        // The override has top precedence and must leave results unchanged.
        let reference = sweep(21, vec![(); 12], |_, _, rng| rng.next());
        set_thread_override(Some(1));
        assert_eq!(resolve_threads(), 1);
        let forced = sweep(21, vec![(); 12], |_, _, rng| rng.next());
        set_thread_override(None);
        assert_eq!(forced, reference);
        // With the override cleared, resolution still yields >= 1 workers.
        assert!(resolve_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        sweep_with_threads(1, vec![0u64], |_, &x, _| x, 0);
    }

    #[test]
    fn sweep_matches_sequential_reference() {
        // The parallel path must produce exactly what the sequential path
        // produces (thread-count independence).
        let items: Vec<u64> = (0..40).collect();
        let parallel = sweep(11, items.clone(), |_, &x, rng| x + rng.below(1000));
        let factory = RngFactory::new(11);
        let sequential: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let mut rng = factory.stream(i as u64);
                x + rng.below(1000)
            })
            .collect();
        assert_eq!(parallel, sequential);
    }
}
