//! E6/E7/E10 — stabilization-time scaling experiments.
//!
//! * **E6 (Theorem 3.5)**: measure the stabilization time from the paper's
//!   worst-case initial family (equal minorities, maximum admissible bias)
//!   across a k sweep and compare against the lower-bound curve
//!   (k n/25)·ln(√n/(k ln n)).
//! * **E7 (tightness band)**: the same measurements bracketed between the
//!   lower bound and the Amir et al. upper bound k·n·ln n — the measured
//!   ratios to both must stay bounded, exhibiting the near-tightness.
//! * **E10 (k = 2)**: the classical O(log n) special case (Clementi et
//!   al.); parallel time regressed against ln n.

use crate::cli::ExpArgs;
use crate::report::Report;
use crate::runner;
use sim_stats::regression::{loglog_fit, ols_fit};
use sim_stats::rng::SimRng;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use usd_core::backend::Backend;
use usd_core::init::InitialConfigBuilder;
use usd_core::stabilization::ConsensusOutcome;
use usd_core::theory::Bounds;
use usd_core::RunSpec;

/// One measured sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct ScalingCell {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: usize,
    /// Initial bias used.
    pub bias: u64,
    /// Mean parallel stabilization time.
    pub parallel_mean: f64,
    /// Standard error of the mean.
    pub parallel_stderr: f64,
    /// Fraction of runs in which the initial plurality won.
    pub plurality_win_rate: f64,
    /// Fraction of runs that stabilized within budget.
    pub stabilized_rate: f64,
}

/// Measure stabilization from the paper's lower-bound family at `(n, k)`
/// on the chosen backend.
pub fn measure_cell(
    backend: Backend,
    n: u64,
    k: usize,
    seeds: u64,
    master_seed: u64,
) -> ScalingCell {
    let builder = InitialConfigBuilder::new(n, k);
    let config = builder.max_admissible_bias();
    let bias = config.bias();
    let results: Vec<(f64, bool, bool)> = runner::repeat(
        master_seed ^ ((k as u64) << 40) ^ n,
        seeds,
        |_rep, rng: &mut SimRng| {
            let budget = crate::fig1::default_budget(n, k);
            let result = RunSpec::new(&config)
                .backend(backend)
                .budget(budget)
                .run(rng);
            (
                result.parallel_time(n),
                result.plurality_won(),
                result.stabilized(),
            )
        },
    );
    let times: Vec<f64> = results.iter().map(|r| r.0).collect();
    let summary = Summary::of(&times);
    let wins = results.iter().filter(|r| r.1).count() as f64;
    let stab = results.iter().filter(|r| r.2).count() as f64;
    ScalingCell {
        n,
        k,
        bias,
        parallel_mean: summary.mean(),
        parallel_stderr: summary.stderr(),
        plurality_win_rate: wins / results.len() as f64,
        stabilized_rate: stab / results.len() as f64,
    }
}

/// Default k sweep for scaling experiments at a given n: geometric grid
/// within the admissible range.
pub fn scaling_k_grid(n: u64) -> Vec<usize> {
    let max_k = ((n as f64).sqrt() / (n as f64).ln()).floor() as usize;
    let mut ks = Vec::new();
    let mut k = 3usize;
    while k <= max_k.max(3) {
        ks.push(k);
        k = (k * 3).div_ceil(2); // ×1.5 grid
    }
    if ks.len() < 2 {
        ks = vec![2, 3];
    }
    ks
}

/// E6 report.
pub fn thm35_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(8_000));
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let ks = match args.k {
        Some(k) => vec![k],
        None => scaling_k_grid(n),
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        measure_cell(backend, n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E6 / Theorem 3.5: stabilization-time scaling, n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "Initial family: equal minorities, maximum admissible bias \
         (sqrt(n)/(k ln n))^(1/4) * sqrt(n ln n) — note this bias is \
         omega(sqrt(n ln n)), yet stabilization still needs \
         Omega(k log(sqrt n/(k log n))) parallel time. 'T/lower' should be \
         bounded below by a constant >= 1 and not explode; its stability \
         across k confirms the Theta(k log(...)) shape.",
    );
    let mut t = TextTable::new(&[
        "k",
        "bias",
        "T parallel (mean +/- se)",
        "lower bound",
        "T/lower",
        "upper k ln n",
        "T/upper",
        "win rate",
    ]);
    let mut k_vals = Vec::new();
    let mut t_vals = Vec::new();
    for c in &cells {
        let b = Bounds::new(c.n, c.k);
        let lower = b.lower_bound_parallel();
        let upper = b.upper_bound_parallel();
        k_vals.push(c.k as f64);
        t_vals.push(c.parallel_mean);
        t.row_owned(vec![
            c.k.to_string(),
            fmt_thousands(c.bias),
            format!(
                "{} +/- {}",
                fmt_sig(c.parallel_mean, 4),
                fmt_sig(c.parallel_stderr, 2)
            ),
            fmt_sig(lower, 4),
            if lower > 0.0 {
                fmt_sig(c.parallel_mean / lower, 3)
            } else {
                "-".to_string()
            },
            fmt_sig(upper, 4),
            fmt_sig(c.parallel_mean / upper, 3),
            fmt_sig(c.plurality_win_rate, 3),
        ]);
    }
    report.table("thm35", t);
    if k_vals.len() >= 2 {
        let fit = loglog_fit(&k_vals, &t_vals);
        report.text(format!(
            "log-log fit of T_parallel vs k: exponent {:.3} (R^2 {:.3}); \
             the bounds predict an exponent of ~1 (both Omega(k·log) and \
             O(k·log n) are linear in k up to the inner log).",
            fit.slope, fit.r_squared
        ));
    }
    report
}

/// E7 report (tightness band).
pub fn tightness_report(args: &ExpArgs) -> Report {
    let n = args.unless_quick(args.n, args.n.min(8_000));
    let seeds = args.unless_quick(args.seeds, 2);
    let backend = args.clique_backend_or(Backend::SkipAhead, n);
    let ks = match args.k {
        Some(k) => vec![k],
        None => scaling_k_grid(n),
    };
    let cells = runner::sweep(args.seed, ks, |_, &k, _| {
        measure_cell(backend, n, k, seeds, args.seed)
    });

    let mut report = Report::new();
    report.heading(format!(
        "E7 / Tightness band: measured time vs lower and upper bounds, n={}, backend={backend}",
        fmt_thousands(n)
    ));
    report.text(
        "The theorem is 'almost tight': Omega(k log(sqrt n/(k log n))) vs \
         O(k log n). For every k the measured time must land between \
         c_low * lower and c_up * upper with constants independent of k.",
    );
    let mut lows = Vec::new();
    let mut ups = Vec::new();
    let mut t = TextTable::new(&["k", "T parallel", "T/lower", "T/upper"]);
    for c in &cells {
        let b = Bounds::new(c.n, c.k);
        let lower = b.lower_bound_parallel();
        let upper = b.upper_bound_parallel();
        let rl = if lower > 0.0 {
            c.parallel_mean / lower
        } else {
            f64::NAN
        };
        let ru = c.parallel_mean / upper;
        if rl.is_finite() {
            lows.push(rl);
        }
        ups.push(ru);
        t.row_owned(vec![
            c.k.to_string(),
            fmt_sig(c.parallel_mean, 4),
            fmt_sig(rl, 3),
            fmt_sig(ru, 3),
        ]);
    }
    report.table("tightness", t);
    if !lows.is_empty() {
        let min_low = lows.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_low = lows.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let max_up = ups.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        report.text(format!(
            "band constants: T/lower in [{:.2}, {:.2}] (spread {:.2}x), \
             max T/upper = {:.3}. A bounded spread in T/lower across k is \
             the empirical signature of the lower bound's k log(...) shape.",
            min_low,
            max_low,
            max_low / min_low,
            max_up
        ));
    }
    report
}

/// E10: the k = 2 special case — O(log n) stabilization.
pub fn k2_report(args: &ExpArgs) -> Report {
    let seeds = args.unless_quick(args.seeds.max(5), 3);
    let max_n = args.unless_quick(args.n.max(64_000), 8_000);
    let backend = args.clique_backend_or(Backend::SkipAhead, max_n);
    // Geometric n grid from 1000 up to max_n.
    let mut ns = Vec::new();
    let mut n = 1_000u64;
    while n <= max_n {
        ns.push(n);
        n *= 2;
    }
    let cells = runner::sweep(args.seed, ns.clone(), |_, &n, _| {
        let builder = InitialConfigBuilder::new(n, 2);
        let config = builder.figure1();
        let times: Vec<f64> = runner::repeat(args.seed ^ n, seeds, |_rep, rng| {
            let result = RunSpec::new(&config)
                .backend(backend)
                .budget(crate::fig1::default_budget(n, 2))
                .run(rng);
            assert!(
                !matches!(result.outcome, ConsensusOutcome::Timeout),
                "k=2 run timed out"
            );
            result.parallel_time(n)
        });
        Summary::of(&times)
    });

    let mut report = Report::new();
    report.heading("E10 / k = 2: O(log n) stabilization (Clementi et al. 2018)");
    report.text(
        "With bias sqrt(n ln n) the two-opinion USD stabilizes in Theta(log n) \
         parallel time; the ratio column must be ~constant and the linear \
         fit in ln n should explain the data (R^2 close to 1).",
    );
    let mut t = TextTable::new(&["n", "T parallel", "ln n", "T/ln n"]);
    let mut lnns = Vec::new();
    let mut ts = Vec::new();
    for (&n, s) in ns.iter().zip(&cells) {
        let lnn = (n as f64).ln();
        lnns.push(lnn);
        ts.push(s.mean());
        t.row_owned(vec![
            fmt_thousands(n),
            fmt_sig(s.mean(), 4),
            fmt_sig(lnn, 4),
            fmt_sig(s.mean() / lnn, 3),
        ]);
    }
    report.table("k2_logn", t);
    if lnns.len() >= 2 {
        let fit = ols_fit(&lnns, &ts);
        report.text(format!(
            "OLS fit T = {:.3}*ln n + {:.3}, R^2 = {:.4}",
            fit.slope, fit.intercept, fit.r_squared
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_admissible() {
        let ks = scaling_k_grid(100_000);
        assert!(ks.len() >= 3);
        let max_k = (100_000f64.sqrt() / 100_000f64.ln()).floor() as usize;
        for &k in &ks {
            assert!(k <= max_k.max(3));
        }
    }

    #[test]
    fn measured_cell_within_band() {
        let cell = measure_cell(Backend::SkipAhead, 4_000, 4, 3, 1);
        assert_eq!(cell.stabilized_rate, 1.0);
        assert!(cell.plurality_win_rate > 0.5, "{cell:?}");
        let b = Bounds::new(4_000, 4);
        // Lower bound must hold (it is a w.h.p. statement; at these sizes
        // allow the constant but the measured time cannot be *below* the
        // bound curve, which has the deliberately weak 1/25 constant).
        assert!(
            cell.parallel_mean >= b.lower_bound_parallel(),
            "measured {} below lower bound {}",
            cell.parallel_mean,
            b.lower_bound_parallel()
        );
        // And within a generous constant of the upper bound.
        assert!(
            cell.parallel_mean <= 5.0 * b.upper_bound_parallel(),
            "measured {} far above upper bound {}",
            cell.parallel_mean,
            b.upper_bound_parallel()
        );
    }

    #[test]
    fn parallel_time_grows_with_k() {
        let c4 = measure_cell(Backend::SkipAhead, 4_000, 4, 3, 2);
        let c12 = measure_cell(Backend::SkipAhead, 4_000, 12, 3, 2);
        assert!(
            c12.parallel_mean > c4.parallel_mean,
            "k=12 ({}) not slower than k=4 ({})",
            c12.parallel_mean,
            c4.parallel_mean
        );
    }

    #[test]
    fn scaling_cell_runs_on_the_leaping_backends() {
        // The scaling sweeps are pure stabilization measurements, so every
        // generic backend drives them; the leaping engines must agree with
        // the reference on the measured scale.
        let reference = measure_cell(Backend::Sequential, 2_000, 4, 3, 6);
        for backend in [Backend::Batch, Backend::BatchGraph] {
            let cell = measure_cell(backend, 2_000, 4, 3, 6);
            assert_eq!(cell.stabilized_rate, 1.0, "{backend}");
            let ratio = cell.parallel_mean / reference.parallel_mean;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{backend} diverges from sequential: {ratio}"
            );
        }
    }

    #[test]
    fn reports_render_quick() {
        let args = ExpArgs {
            n: 3_000,
            quick: true,
            seeds: 2,
            ..ExpArgs::default()
        };
        assert!(thm35_report(&args).render().contains("Theorem 3.5"));
        assert!(tightness_report(&args).render().contains("Tightness"));
        assert!(k2_report(&args).render().contains("k = 2"));
    }
}
