//! E13: plain USD vs the idealized synchronized elimination tournament —
//! the paper's §4 "break the lower bound barrier" open question.
//!
//! See DESIGN.md §4 (E13) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::barrier::barrier_report(&args);
    report.finish(args.csv.as_deref());
}
