//! E5: verify Lemma 3.4 — max-gap doubling needs ≥ kn/24 interactions.
//!
//! See DESIGN.md §4 (E5) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::lemmas::lemma34_report(&args);
    report.finish(args.csv.as_deref());
}
