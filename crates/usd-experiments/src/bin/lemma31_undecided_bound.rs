//! E3: verify the Lemma 3.1 ceiling on the undecided count.
//!
//! See DESIGN.md §4 (E3) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::lemmas::lemma31_report(&args);
    report.finish(args.csv.as_deref());
}
