//! E11: USD vs four-state exact majority, voter, 3-majority, and synchronized USD.
//!
//! See DESIGN.md §4 (E11) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::comparisons::baseline_report(&args);
    report.finish(args.csv.as_deref());
}
