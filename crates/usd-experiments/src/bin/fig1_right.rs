//! E2: regenerate Figure 1 (right) — zoom until the majority doubles, with the max difference.
//!
//! See DESIGN.md §4 (E2) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::fig1::fig1_right_report(&args);
    report.finish(args.csv.as_deref());
}
