//! E8: majority win rate and stabilization time across the initial-bias grid.
//!
//! See DESIGN.md §4 (E8) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::comparisons::bias_report(&args);
    report.finish(args.csv.as_deref());
}
