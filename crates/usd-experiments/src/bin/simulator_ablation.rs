//! E12: distributional equivalence and throughput of the three exact engines.
//!
//! See DESIGN.md §4 (E12) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::comparisons::ablation_report(&args);
    report.finish(args.csv.as_deref());
}
