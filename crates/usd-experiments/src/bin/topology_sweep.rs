//! E14: USD stabilization time across interaction-graph families × n.
//!
//! ```text
//! cargo run --release -p usd-experiments --bin topology_sweep -- \
//!     [--n <max>] [--k <opinions>] [--seeds <reps>] [--topology <family>]
//!     [--degree <d>] [--threads <t>] [--quick] [--csv out.csv]
//! ```
//!
//! Runs the active-edge `graph` backend over the sparse family grid
//! (cycle, torus, hypercube, random regular, Erdős–Rényi) — see the
//! `usd_experiments::topology` module docs for the measured columns.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::topology::topology_report(&args);
    report.finish(args.csv.as_deref());
}
