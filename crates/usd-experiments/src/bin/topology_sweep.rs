//! E14: USD stabilization time across interaction-graph families × n.
//!
//! ```text
//! cargo run --release -p usd-experiments --bin topology_sweep -- \
//!     [--n <max>] [--k <opinions>] [--seeds <reps>] [--topology <family>]
//!     [--degree <d>] [--backend <graph|batchgraph|agent>] [--threads <t>]
//!     [--quick] [--csv out.csv] [--timeline-dir <dir>]
//! ```
//!
//! Runs a topology-capable backend over the sparse family grid
//! (cycle, torus, hypercube, random regular, Erdős–Rényi) — see the
//! `usd_experiments::topology` module docs for the measured columns.
//! `--timeline-dir` additionally writes one flight-recorder JSONL per
//! sweep cell (from the cell's representative run) into the directory.
//! Invalid flag combinations (a clique-only `--backend`, `--degree` on a
//! family that takes none, an unwritable `--timeline-dir`) exit with
//! status 2 before any work runs.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    if let Err(msg) = usd_experiments::topology::validate_args(&args) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let report = usd_experiments::topology::topology_report(&args);
    report.finish(args.csv.as_deref());
}

#[cfg(test)]
mod tests {
    use usd_experiments::topology::validate_args;
    use usd_experiments::ExpArgs;

    /// The binary's pre-flight check: the combinations the sweep used to
    /// accept by panicking (or by silently ignoring a flag) are errors.
    #[test]
    fn preflight_rejects_invalid_backend_and_degree_combinations() {
        let parse = |flags: &[&str]| ExpArgs::parse(flags.iter().map(|s| s.to_string())).unwrap();
        assert!(validate_args(&parse(&[])).is_ok());
        assert!(validate_args(&parse(&["--backend", "graph"])).is_ok());
        assert!(validate_args(&parse(&["--backend", "batch"])).is_err());
        assert!(validate_args(&parse(&["--backend", "skip"])).is_err());
        assert!(validate_args(&parse(&["--topology", "cycle", "--degree", "4"])).is_err());
        assert!(validate_args(&parse(&["--topology", "regular:8", "--degree", "4"])).is_ok());
    }
}
