//! E6: Theorem 3.5 stabilization-time scaling vs the lower-bound curve.
//!
//! See DESIGN.md §4 (E6) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::scaling::thm35_report(&args);
    report.finish(args.csv.as_deref());
}
