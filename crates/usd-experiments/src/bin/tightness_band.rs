//! E7: tightness band — measured time between the lower bound and the Amir et al. upper bound.
//!
//! See DESIGN.md §4 (E7) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::scaling::tightness_report(&args);
    report.finish(args.csv.as_deref());
}
