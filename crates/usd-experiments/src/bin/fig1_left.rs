//! E1: regenerate Figure 1 (left) — trajectory of majority, minorities (×k) and undecided count.
//!
//! See DESIGN.md §4 (E1) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::fig1::fig1_left_report(&args);
    report.finish(args.csv.as_deref());
}
