//! E4: verify Lemma 3.3 — opinion growth 3n/2k → 2n/k needs ≥ kn/25 interactions.
//!
//! See DESIGN.md §4 (E4) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::lemmas::lemma33_report(&args);
    report.finish(args.csv.as_deref());
}
