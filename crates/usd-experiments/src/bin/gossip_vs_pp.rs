//! E9: population-protocol vs Gossip-model USD, with per-node flip statistics.
//!
//! See DESIGN.md §4 (E9) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::comparisons::gossip_report(&args);
    report.finish(args.csv.as_deref());
}
