//! E10: the k = 2 special case — O(log n) stabilization.
//!
//! See DESIGN.md §4 (E10) and EXPERIMENTS.md for the recorded results.

fn main() {
    let args = usd_experiments::ExpArgs::from_env();
    let report = usd_experiments::scaling::k2_report(&args);
    report.finish(args.csv.as_deref());
}
