//! Monte-Carlo first-hitting-time estimation.
//!
//! The lemma-verification experiments need "how long until X crosses T"
//! distributions with confidence intervals, including runs that never
//! cross within the budget (right-censored observations). This module
//! provides the estimator and its summary type.

use sim_stats::summary::Summary;

/// Estimate of a first-hitting-time distribution from repeated trials.
#[derive(Debug, Clone, PartialEq)]
pub struct HittingTimeEstimate {
    /// Summary over trials that hit (times in whatever unit the trial
    /// function returned).
    pub hits: Summary,
    /// Number of trials that did not hit within their budget.
    pub censored: u64,
    /// Total trials.
    pub trials: u64,
    /// Minimum over *all* trials of the observation: for censored trials
    /// the budget counts as a lower bound, so `min_lower_bound` is a valid
    /// lower bound on the true minimum hitting time.
    pub min_lower_bound: f64,
}

impl HittingTimeEstimate {
    /// Fraction of trials that hit.
    pub fn hit_fraction(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.hits.count() as f64 / self.trials as f64
    }

    /// Whether every trial hit.
    pub fn all_hit(&self) -> bool {
        self.censored == 0 && self.trials > 0
    }
}

/// Run `trials` independent trials. Each trial returns `Ok(time)` if the
/// event occurred at `time`, or `Err(budget)` if it was censored at
/// `budget`.
pub fn estimate_hitting_time(
    trials: u64,
    mut trial: impl FnMut(u64) -> Result<f64, f64>,
) -> HittingTimeEstimate {
    let mut hits = Summary::new();
    let mut censored = 0u64;
    let mut min_lower_bound = f64::INFINITY;
    for i in 0..trials {
        match trial(i) {
            Ok(t) => {
                hits.add(t);
                min_lower_bound = min_lower_bound.min(t);
            }
            Err(budget) => {
                censored += 1;
                min_lower_bound = min_lower_bound.min(budget);
            }
        }
    }
    HittingTimeEstimate {
        hits,
        censored,
        trials,
        min_lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{ConstantLaw, LazyWalk};
    use sim_stats::rng::SimRng;

    #[test]
    fn geometric_hitting_time_mean() {
        // First +1 step of a (p=0.25, q=0.25) walk (always up when moving):
        // hitting time of 1 is Geometric(0.25) with mean 4.
        let est = estimate_hitting_time(20_000, |seed| {
            let mut w = LazyWalk::new(ConstantLaw::new(0.25, 0.25));
            let mut rng = SimRng::new(seed);
            match w.first_hit_at_least(&mut rng, 1, 1_000) {
                Some(t) => Ok(t as f64),
                None => Err(1_000.0),
            }
        });
        assert!(est.all_hit());
        assert!(
            (est.hits.mean() - 4.0).abs() < 0.1,
            "mean {}",
            est.hits.mean()
        );
        assert_eq!(est.hit_fraction(), 1.0);
        assert_eq!(est.min_lower_bound, 1.0);
    }

    #[test]
    fn censoring_counted() {
        // Downward walk never reaches +10.
        let est = estimate_hitting_time(50, |seed| {
            let mut w = LazyWalk::new(ConstantLaw::new(0.5, -0.5));
            let mut rng = SimRng::new(seed);
            match w.first_hit_at_least(&mut rng, 10, 200) {
                Some(t) => Ok(t as f64),
                None => Err(200.0),
            }
        });
        assert_eq!(est.censored, 50);
        assert_eq!(est.hit_fraction(), 0.0);
        assert!(!est.all_hit());
        assert_eq!(est.min_lower_bound, 200.0);
        assert_eq!(est.hits.count(), 0);
    }

    #[test]
    fn mixed_hits_and_censoring() {
        let est = estimate_hitting_time(100, |i| {
            if i % 2 == 0 {
                Ok(10.0 + i as f64)
            } else {
                Err(1_000.0)
            }
        });
        assert_eq!(est.censored, 50);
        assert_eq!(est.hits.count(), 50);
        assert!((est.hit_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(est.min_lower_bound, 10.0);
    }

    #[test]
    fn empty_estimate() {
        let est = estimate_hitting_time(0, |_| Ok(1.0));
        assert_eq!(est.trials, 0);
        assert_eq!(est.hit_fraction(), 0.0);
    }
}
