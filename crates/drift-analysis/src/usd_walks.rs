//! Adapters exposing the USD process as random walks.
//!
//! The lower-bound proof studies three induced walks: −u(t) (Lemma 3.1),
//! a single opinion's count xᵢ(t) (Lemma 3.3), and the pairwise gap
//! Δᵢⱼ(t) (Lemma 3.4). This module computes, for a concrete configuration,
//! the exact `(p, q)` step-law parameters of those walks — the quantities
//! the lemma proofs bound symbolically — and provides the lemma-level
//! parameter summaries the verification experiments print.

use usd_core::analysis::{gap_step_probabilities, interaction_probabilities};
use usd_core::UsdConfig;

/// Exact step law of the xᵢ(t) walk at a configuration: returns
/// `(p, q)` = (P(+1) + P(−1), P(+1) − P(−1)).
///
/// P(+1) = 2xᵢu/(n(n−1)) (adoption), P(−1) = 2xᵢ(n−u−xᵢ)/(n(n−1)) (clash).
pub fn opinion_walk_law(config: &UsdConfig, i: usize) -> (f64, f64) {
    let n = config.n() as f64;
    let pairs = n * (n - 1.0);
    let xi = config.x(i) as f64;
    let u = config.u() as f64;
    let plus = 2.0 * xi * u / pairs;
    let minus = 2.0 * xi * (n - u - xi) / pairs;
    (plus + minus, plus - minus)
}

/// Exact step law of the Δᵢⱼ(t) walk at a configuration. Note Δᵢⱼ can also
/// jump by ±... no: a single interaction changes Δᵢⱼ by at most 1 in USD
/// when i ≠ j — a clash between i and j decreases xᵢ and xⱼ together,
/// leaving the gap unchanged; adoption or third-party clash moves exactly
/// one endpoint.
pub fn gap_walk_law(config: &UsdConfig, i: usize, j: usize) -> (f64, f64) {
    let (plus, minus) = gap_step_probabilities(config, i, j);
    (plus + minus, plus - minus)
}

/// Exact step law of the u(t) walk. u moves by −1 (adoption) or +2
/// (clash); we report `(p, drift)` where p is the move probability and
/// drift the expected signed change (u's walk is not ±1, so the Lemma 3.2
/// form does not apply to it — the paper uses Oliveto–Witt instead).
pub fn undecided_walk_law(config: &UsdConfig) -> (f64, f64) {
    let p = interaction_probabilities(config);
    (p.clash + p.adopt, 2.0 * p.clash - p.adopt)
}

/// The Lemma 3.3 parameter bundle at a configuration with xᵢ ≤ 2n/k:
/// the lemma's constants `p = 5/k`, `q = 6.25/k²`, `T = n/(2k)`, plus the
/// exact current law for comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lemma33Params {
    /// The lemma's activity bound 5/k.
    pub p_bound: f64,
    /// The lemma's bias bound 6.25/k².
    pub q_bound: f64,
    /// The lemma's threshold T = n/(2k).
    pub t_threshold: f64,
    /// The exact current activity p(t).
    pub p_exact: f64,
    /// The exact current bias q(t).
    pub q_exact: f64,
}

/// Compute [`Lemma33Params`] for opinion `i`.
pub fn lemma33_params(config: &UsdConfig, i: usize) -> Lemma33Params {
    let k = config.k() as f64;
    let n = config.n() as f64;
    let (p_exact, q_exact) = opinion_walk_law(config, i);
    Lemma33Params {
        p_bound: 5.0 / k,
        q_bound: 6.25 / (k * k),
        t_threshold: n / (2.0 * k),
        p_exact,
        q_exact,
    }
}

/// The Lemma 3.4 parameter bundle: constants `p = 9/k`, `q = 6α/(nk)`,
/// `T = α/2`, plus the exact law for the pair `(i, j)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lemma34Params {
    /// The lemma's activity bound 9/k.
    pub p_bound: f64,
    /// The lemma's bias bound 6α/(nk).
    pub q_bound: f64,
    /// The lemma's threshold T = α/2.
    pub t_threshold: f64,
    /// The exact current activity.
    pub p_exact: f64,
    /// The exact current bias.
    pub q_exact: f64,
}

/// Compute [`Lemma34Params`] for the pair `(i, j)` and gap scale `alpha`.
pub fn lemma34_params(config: &UsdConfig, i: usize, j: usize, alpha: f64) -> Lemma34Params {
    let k = config.k() as f64;
    let n = config.n() as f64;
    let (p_exact, q_exact) = gap_walk_law(config, i, j);
    Lemma34Params {
        p_bound: 9.0 / k,
        q_bound: 6.0 * alpha / (n * k),
        t_threshold: alpha / 2.0,
        p_exact,
        q_exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plateau-like configuration: u near n/2 − n/4k, opinions near n/2k.
    fn plateau_config(n: u64, k: usize) -> UsdConfig {
        let u = (n as f64 / 2.0 - n as f64 / (4.0 * k as f64)) as u64;
        let decided = n - u;
        let base = decided / k as u64;
        let mut x = vec![base; k];
        x[0] += decided - base * k as u64;
        UsdConfig::new(x, u)
    }

    #[test]
    fn opinion_walk_law_consistency() {
        let c = plateau_config(100_000, 10);
        let (p, q) = opinion_walk_law(&c, 1);
        assert!(p > 0.0 && p < 1.0);
        assert!(q.abs() <= p);
        // Drift matches the closed form from usd-core.
        let drift = usd_core::analysis::expected_opinion_drift(&c, 1);
        assert!((q - drift).abs() < 1e-12, "q {q} vs drift {drift}");
    }

    #[test]
    fn gap_walk_law_consistency() {
        let c = UsdConfig::new(vec![120, 80, 100], 300);
        let (p, q) = gap_walk_law(&c, 0, 1);
        assert!(p > 0.0 && q.abs() <= p);
        let drift = usd_core::analysis::expected_gap_drift(&c, 0, 1);
        assert!((q - drift).abs() < 1e-12);
    }

    #[test]
    fn undecided_walk_law_consistency() {
        let c = plateau_config(10_000, 8);
        let (p, drift) = undecided_walk_law(&c);
        assert!(p > 0.0 && p <= 1.0);
        let closed = usd_core::analysis::expected_undecided_drift(&c);
        assert!((drift - closed).abs() < 1e-12);
    }

    #[test]
    fn lemma33_bounds_dominate_exact_on_plateau() {
        // The whole point of the lemma's constants: with xᵢ ≤ 2n/k and u at
        // most slightly above the plateau, p(t) ≤ 5/k and q(t) ≤ 6.25/k².
        let n = 1_000_000u64;
        for &k in &[10usize, 27, 50] {
            let c = plateau_config(n, k);
            for i in 0..k.min(3) {
                let params = lemma33_params(&c, i);
                assert!(
                    params.p_exact <= params.p_bound,
                    "k={k} i={i}: p {} > bound {}",
                    params.p_exact,
                    params.p_bound
                );
                assert!(
                    params.q_exact <= params.q_bound,
                    "k={k} i={i}: q {} > bound {}",
                    params.q_exact,
                    params.q_bound
                );
            }
        }
    }

    #[test]
    fn lemma33_threshold_scale() {
        let c = plateau_config(1_000_000, 27);
        let params = lemma33_params(&c, 0);
        assert!((params.t_threshold - 1_000_000.0 / 54.0).abs() < 1e-9);
    }

    #[test]
    fn lemma34_bounds_dominate_exact_on_plateau() {
        let n = 1_000_000u64;
        let k = 27usize;
        let mut c = plateau_config(n, k);
        // Inject a gap of alpha/2 between opinions 0 and 1.
        let alpha = 8_000.0; // ω(√(n ln n)) ≈ 3717, and o(n/k) ≈ 37037 ✓
        let shift = (alpha / 2.0) as u64;
        let mut x = c.opinions().to_vec();
        x[0] += shift;
        x[1] -= shift;
        c = UsdConfig::new(x, c.u());
        let params = lemma34_params(&c, 0, 1, alpha);
        assert!(params.p_exact <= params.p_bound, "{params:?}");
        assert!(params.q_exact <= params.q_bound, "{params:?}");
        assert_eq!(params.t_threshold, alpha / 2.0);
    }

    #[test]
    fn gap_changes_by_at_most_one_per_interaction() {
        // Structural claim in gap_walk_law's doc: verify by simulation.
        use sim_stats::rng::SimRng;
        use usd_core::dynamics::{SequentialUsd, UsdSimulator};
        let c = UsdConfig::decided(vec![40, 35, 25]);
        let mut sim = SequentialUsd::new(&c);
        let mut rng = SimRng::new(9);
        let mut last_gap = sim.opinions()[0] as i64 - sim.opinions()[1] as i64;
        for _ in 0..5_000 {
            if sim.step_effective(&mut rng).is_none() {
                break;
            }
            let gap = sim.opinions()[0] as i64 - sim.opinions()[1] as i64;
            assert!((gap - last_gap).abs() <= 1, "gap jumped by more than 1");
            last_gap = gap;
        }
    }
}
