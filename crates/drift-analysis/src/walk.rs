//! Lazy ±1 random walks with time/state-dependent step laws.
//!
//! Lemma 3.2 of the paper concerns walks of the form
//!
//! > Y(t+1) = Y(t)      with probability 1 − p(t)
//! > Y(t+1) = Y(t) + 1  with probability (p(t) + q(t))/2
//! > Y(t+1) = Y(t) − 1  with probability (p(t) − q(t))/2
//!
//! where p(t) is the *activity* (probability the walk moves at all) and
//! q(t) the *bias*. The paper's key observation (§2): when p = o(1) — as
//! for an opinion's count, which only moves when one of its ≤ 2n/k agents
//! is scheduled — the variance accumulated over m steps is ~pm, not m,
//! which is what defeats the naive random-walk lower bound.

use sim_stats::rng::SimRng;

/// A step law: given the step index and current position, produce
/// `(p, q)` — activity and bias — for the next step.
///
/// Requirements: `0 ≤ p ≤ 1` and `|q| ≤ p`.
pub trait StepLaw {
    /// The `(p(t), q(t))` pair for step `t` at position `y`.
    fn law(&self, t: u64, y: i64) -> (f64, f64);
}

/// A constant step law (the classical lazy biased walk).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLaw {
    /// Activity p.
    pub p: f64,
    /// Bias q (|q| ≤ p).
    pub q: f64,
}

impl ConstantLaw {
    /// Construct, validating `0 ≤ p ≤ 1`, `|q| ≤ p`.
    pub fn new(p: f64, q: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(q.abs() <= p + 1e-15, "|q| must be at most p");
        ConstantLaw { p, q }
    }
}

impl StepLaw for ConstantLaw {
    fn law(&self, _t: u64, _y: i64) -> (f64, f64) {
        (self.p, self.q)
    }
}

impl<F: Fn(u64, i64) -> (f64, f64)> StepLaw for F {
    fn law(&self, t: u64, y: i64) -> (f64, f64) {
        self(t, y)
    }
}

/// A lazy ±1 walk driven by a [`StepLaw`].
#[derive(Debug, Clone)]
pub struct LazyWalk<L: StepLaw> {
    law: L,
    y: i64,
    t: u64,
    max_seen: i64,
    min_seen: i64,
}

/// What a single step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStep {
    /// Position unchanged.
    Hold,
    /// Moved up by one.
    Up,
    /// Moved down by one.
    Down,
}

impl<L: StepLaw> LazyWalk<L> {
    /// A walk starting at 0.
    pub fn new(law: L) -> Self {
        LazyWalk {
            law,
            y: 0,
            t: 0,
            max_seen: 0,
            min_seen: 0,
        }
    }

    /// A walk starting at `y0`.
    pub fn starting_at(law: L, y0: i64) -> Self {
        LazyWalk {
            law,
            y: y0,
            t: 0,
            max_seen: y0,
            min_seen: y0,
        }
    }

    /// Current position.
    pub fn position(&self) -> i64 {
        self.y
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Running maximum.
    pub fn max_seen(&self) -> i64 {
        self.max_seen
    }

    /// Running minimum.
    pub fn min_seen(&self) -> i64 {
        self.min_seen
    }

    /// Advance one step.
    pub fn step(&mut self, rng: &mut SimRng) -> WalkStep {
        let (p, q) = self.law.law(self.t, self.y);
        debug_assert!((0.0..=1.0).contains(&p), "invalid p={p}");
        debug_assert!(q.abs() <= p + 1e-12, "invalid q={q} for p={p}");
        self.t += 1;
        let r = rng.f64();
        let step = if r < 1.0 - p {
            WalkStep::Hold
        } else if r < 1.0 - p + (p + q) / 2.0 {
            self.y += 1;
            WalkStep::Up
        } else {
            self.y -= 1;
            WalkStep::Down
        };
        self.max_seen = self.max_seen.max(self.y);
        self.min_seen = self.min_seen.min(self.y);
        step
    }

    /// Run until the position reaches `target` (≥) or `budget` steps pass;
    /// returns the step count at the crossing, if any.
    pub fn first_hit_at_least(
        &mut self,
        rng: &mut SimRng,
        target: i64,
        budget: u64,
    ) -> Option<u64> {
        if self.y >= target {
            return Some(self.t);
        }
        for _ in 0..budget {
            self.step(rng);
            if self.y >= target {
                return Some(self.t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_walk_stays_near_zero_in_mean() {
        let mut acc = 0.0;
        for seed in 0..200 {
            let mut w = LazyWalk::new(ConstantLaw::new(0.5, 0.0));
            let mut rng = SimRng::new(seed);
            for _ in 0..1_000 {
                w.step(&mut rng);
            }
            acc += w.position() as f64;
        }
        let mean = acc / 200.0;
        // Mean 0, stddev per walk ≈ √(0.5·1000) ≈ 22; mean of 200 walks
        // has stderr ≈ 1.6.
        assert!(mean.abs() < 6.0, "mean {mean}");
    }

    #[test]
    fn biased_walk_drifts_at_rate_q() {
        let (p, q) = (0.6, 0.2);
        let steps = 2_000u64;
        let mut acc = 0.0;
        for seed in 0..100 {
            let mut w = LazyWalk::new(ConstantLaw::new(p, q));
            let mut rng = SimRng::new(seed);
            for _ in 0..steps {
                w.step(&mut rng);
            }
            acc += w.position() as f64;
        }
        let mean = acc / 100.0;
        let expect = q * steps as f64; // 400
        assert!(
            (mean - expect).abs() < 25.0,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn laziness_reduces_variance() {
        // The paper's point: over m steps, variance scales with p·m.
        let steps = 2_000u64;
        let spread = |p: f64, seed0: u64| {
            let mut sq = 0.0;
            for seed in 0..200 {
                let mut w = LazyWalk::new(ConstantLaw::new(p, 0.0));
                let mut rng = SimRng::new(seed0 + seed);
                for _ in 0..steps {
                    w.step(&mut rng);
                }
                sq += (w.position() as f64).powi(2);
            }
            sq / 200.0
        };
        let busy = spread(0.8, 0);
        let lazy = spread(0.05, 10_000);
        // Var ≈ p·m: ratio ≈ 16.
        let ratio = busy / lazy;
        assert!(ratio > 8.0 && ratio < 32.0, "ratio {ratio}");
    }

    #[test]
    fn extremes_tracked() {
        let mut w = LazyWalk::new(ConstantLaw::new(1.0, 0.0));
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            w.step(&mut rng);
        }
        assert!(w.max_seen() >= w.position() || w.min_seen() <= w.position());
        assert!(w.max_seen() >= 0 && w.min_seen() <= 0);
        assert_eq!(w.steps(), 100);
    }

    #[test]
    fn first_hit_on_deterministic_upward_walk() {
        // p = 1, q = 1: always moves up.
        let mut w = LazyWalk::new(ConstantLaw::new(1.0, 1.0));
        let mut rng = SimRng::new(4);
        assert_eq!(w.first_hit_at_least(&mut rng, 10, 100), Some(10));
    }

    #[test]
    fn first_hit_none_within_budget() {
        let mut w = LazyWalk::new(ConstantLaw::new(1.0, -1.0)); // always down
        let mut rng = SimRng::new(5);
        assert_eq!(w.first_hit_at_least(&mut rng, 1, 1_000), None);
        assert_eq!(w.position(), -1_000);
    }

    #[test]
    fn first_hit_already_there() {
        let mut w = LazyWalk::starting_at(ConstantLaw::new(0.5, 0.0), 7);
        let mut rng = SimRng::new(6);
        assert_eq!(w.first_hit_at_least(&mut rng, 5, 10), Some(0));
    }

    #[test]
    fn closure_step_laws_work() {
        // Time-dependent law: frozen after step 100.
        let law = |t: u64, _y: i64| if t < 100 { (1.0, 1.0) } else { (0.0, 0.0) };
        let mut w = LazyWalk::new(law);
        let mut rng = SimRng::new(7);
        for _ in 0..500 {
            w.step(&mut rng);
        }
        assert_eq!(w.position(), 100);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_p_rejected() {
        ConstantLaw::new(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "at most p")]
    fn invalid_q_rejected() {
        ConstantLaw::new(0.3, 0.5);
    }
}
