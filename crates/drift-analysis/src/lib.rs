//! The proof's drift-analysis machinery, as executable code.
//!
//! The lower bound of El-Hayek–Elsässer–Schmid rests on three probabilistic
//! tools, each of which is a concrete statement about simulable random
//! walks:
//!
//! * **Lemma 3.2** — a lazy ±1 random walk with step probability p(t) ≤ p
//!   and bias q(t) ≤ q stays below T for ~T/(2q) steps w.h.p. (proved via
//!   a coupling and Bernstein's inequality). [`walk`] implements the walk
//!   family, [`coupling`] the explicit coupling with its invariants
//!   runtime-checked, and [`bernstein`] the tail bound.
//! * **Theorem A.1 (Oliveto–Witt)** — negative drift implies exponential
//!   hitting times. [`oliveto_witt`] checks the theorem's three hypotheses
//!   for concrete parameters and evaluates the bound.
//! * **Monte-Carlo estimation** — [`hitting`] estimates first-hitting-time
//!   distributions with confidence intervals, so each lemma's conclusion
//!   can be compared against simulation.
//!
//! [`usd_walks`] adapts the USD process itself into this framework: the
//! walks the paper analyzes (−u(t), xᵢ(t), Δᵢⱼ(t)) are exposed with their
//! exact per-configuration step laws taken from `usd-core::analysis`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod additive;
pub mod bernstein;
pub mod coupling;
pub mod hitting;
pub mod oliveto_witt;
pub mod usd_walks;
pub mod walk;

pub use additive::{empirical_drift_toward_zero, AdditiveDrift};
pub use bernstein::{bernstein_tail, lemma32_condition_holds, lemma32_tail};
pub use coupling::CoupledWalks;
pub use hitting::{estimate_hitting_time, HittingTimeEstimate};
pub use oliveto_witt::{NegativeDriftParams, NegativeDriftReport};
pub use walk::{ConstantLaw, LazyWalk, StepLaw};
