//! The explicit coupling from the proof of Lemma 3.2.
//!
//! The proof couples the walk Y(t) (step law p(t), bias q(t) ≤ q) with a
//! dominating walk Ỹ(t) that uses the *fixed* bias q, such that almost
//! surely:
//!
//! 1. Ỹ(t) ≥ Y(t) for all t;
//! 2. Y holds ⟺ Ỹ holds (they share laziness);
//! 3. if Y moves up, Ỹ moves up.
//!
//! The construction samples one uniform r(t) per step and thresholds it
//! exactly as the proof prescribes. [`CoupledWalks`] implements it and
//! asserts the three invariants at every step (in all build profiles — the
//! checks are cheap), so simulation of the coupling doubles as a mechanized
//! sanity check of the proof's construction.

use crate::walk::StepLaw;
use sim_stats::rng::SimRng;

/// The coupled pair (Y, Ỹ) of Lemma 3.2's proof.
#[derive(Debug, Clone)]
pub struct CoupledWalks<L: StepLaw> {
    law: L,
    /// Dominating fixed bias q ≥ sup_t q(t).
    q_max: f64,
    y: i64,
    y_tilde: i64,
    t: u64,
}

impl<L: StepLaw> CoupledWalks<L> {
    /// Couple the walk driven by `law` with the fixed-bias `q_max` walk.
    ///
    /// `q_max` must dominate every bias the law can produce; this is
    /// asserted step-by-step during simulation.
    pub fn new(law: L, q_max: f64) -> Self {
        assert!((0.0..=1.0).contains(&q_max), "q_max must be a probability");
        CoupledWalks {
            law,
            q_max,
            y: 0,
            y_tilde: 0,
            t: 0,
        }
    }

    /// Position of the original walk Y.
    pub fn y(&self) -> i64 {
        self.y
    }

    /// Position of the dominating walk Ỹ.
    pub fn y_tilde(&self) -> i64 {
        self.y_tilde
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Advance both walks one step using the proof's single-uniform
    /// construction, asserting the coupling invariants.
    pub fn step(&mut self, rng: &mut SimRng) {
        let (p, q_t) = self.law.law(self.t, self.y);
        assert!(
            q_t <= self.q_max + 1e-12,
            "law produced q(t)={q_t} > q_max={}",
            self.q_max
        );
        assert!(q_t >= -p - 1e-12, "law produced q(t)={q_t} < -p(t)={}", -p);
        self.t += 1;
        let r = rng.f64();
        let (dy, dy_tilde) = if r < 1.0 - p {
            // Both hold (invariant 2).
            (0i64, 0i64)
        } else if r < 1.0 - p + (p + q_t) / 2.0 {
            // Y up ⇒ Ỹ up (invariant 3).
            (1, 1)
        } else if r < 1.0 - p + (p + self.q_max) / 2.0 {
            // Y down but Ỹ up: the slice where the dominating bias differs.
            (-1, 1)
        } else {
            (-1, -1)
        };
        self.y += dy;
        self.y_tilde += dy_tilde;
        // Invariant 1: domination.
        assert!(
            self.y_tilde >= self.y,
            "coupling broken at step {}: Y={} > Ỹ={}",
            self.t,
            self.y,
            self.y_tilde
        );
    }

    /// Run `steps` steps; returns `(Y, Ỹ)` afterwards.
    pub fn run(&mut self, rng: &mut SimRng, steps: u64) -> (i64, i64) {
        for _ in 0..steps {
            self.step(rng);
        }
        (self.y, self.y_tilde)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::ConstantLaw;

    #[test]
    fn domination_holds_over_long_runs() {
        // Time-varying bias bounded by q_max = 0.1.
        let law = |t: u64, _y: i64| {
            let q = 0.1 * ((t as f64 / 50.0).sin()); // oscillates in [-0.1, 0.1]
            (0.5, q)
        };
        let mut c = CoupledWalks::new(law, 0.1);
        let mut rng = SimRng::new(1);
        c.run(&mut rng, 20_000); // asserts at every step
        assert!(c.y_tilde() >= c.y());
    }

    #[test]
    fn identical_laws_make_walks_equal() {
        // If q(t) == q_max always, the slice where they differ is empty.
        let mut c = CoupledWalks::new(ConstantLaw::new(0.4, 0.15), 0.15);
        let mut rng = SimRng::new(2);
        c.run(&mut rng, 10_000);
        assert_eq!(c.y(), c.y_tilde());
    }

    #[test]
    fn dominating_walk_has_bias_q_max() {
        // Ỹ drifts at rate q_max regardless of the underlying law's bias.
        let steps = 5_000u64;
        let q_max = 0.2;
        let mut acc = 0.0;
        for seed in 0..100 {
            let mut c = CoupledWalks::new(ConstantLaw::new(0.5, -0.1), q_max);
            let mut rng = SimRng::new(seed);
            c.run(&mut rng, steps);
            acc += c.y_tilde() as f64;
        }
        let mean = acc / 100.0;
        let expect = q_max * steps as f64; // 1000
        assert!(
            (mean - expect).abs() < 60.0,
            "Ỹ mean {mean} vs expected {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "q_max")]
    fn law_exceeding_q_max_detected() {
        let mut c = CoupledWalks::new(ConstantLaw::new(0.5, 0.3), 0.1);
        let mut rng = SimRng::new(3);
        c.step(&mut rng);
    }

    #[test]
    fn step_counter_advances() {
        let mut c = CoupledWalks::new(ConstantLaw::new(0.5, 0.0), 0.0);
        let mut rng = SimRng::new(4);
        c.run(&mut rng, 123);
        assert_eq!(c.steps(), 123);
    }
}
