//! Additive drift (He–Yao) — the upper-bound counterpart of the negative
//! drift theorem used by the paper.
//!
//! Additive drift theorem: if a non-negative process X_t with X₀ = s
//! satisfies E[X_t − X_{t+1} | X_t > 0] ≥ δ for some δ > 0, then the
//! expected hitting time of 0 is at most s/δ (and at least s/δ′ if the
//! drift is also bounded above by δ′). The paper's intuition in §2 —
//! "a number changing in expectation by α per interaction needs Ω(β/α)
//! interactions to move by β" — is exactly the lower-bound direction.
//!
//! This module evaluates the bound and verifies it empirically against
//! recorded processes, complementing [`crate::oliveto_witt`].

/// Additive drift parameters: start value and per-step drift bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdditiveDrift {
    /// Starting distance to the target.
    pub start: f64,
    /// Lower bound δ on the per-step drift toward the target.
    pub delta_lower: f64,
    /// Upper bound δ′ on the per-step drift toward the target.
    pub delta_upper: f64,
}

impl AdditiveDrift {
    /// Create parameters; requires 0 < δ ≤ δ′ and start ≥ 0.
    pub fn new(start: f64, delta_lower: f64, delta_upper: f64) -> Self {
        assert!(start >= 0.0, "start must be non-negative");
        assert!(
            delta_lower > 0.0 && delta_lower <= delta_upper,
            "need 0 < delta_lower <= delta_upper"
        );
        AdditiveDrift {
            start,
            delta_lower,
            delta_upper,
        }
    }

    /// He–Yao upper bound on the expected hitting time: start/δ.
    pub fn expected_time_upper(&self) -> f64 {
        self.start / self.delta_lower
    }

    /// Matching lower bound start/δ′ (valid when the process cannot jump
    /// past the target by more than O(δ′) per step).
    pub fn expected_time_lower(&self) -> f64 {
        self.start / self.delta_upper
    }
}

/// Estimate the mean one-step drift *toward zero* of a recorded
/// trajectory (positive = moving toward the target).
pub fn empirical_drift_toward_zero(trajectory: &[f64]) -> Option<f64> {
    if trajectory.len() < 2 {
        return None;
    }
    let mut sum = 0.0;
    let mut count = 0u64;
    for w in trajectory.windows(2) {
        if w[0] > 0.0 {
            sum += w[0] - w[1];
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{ConstantLaw, LazyWalk};
    use sim_stats::rng::SimRng;

    #[test]
    fn bounds_bracket_biased_walk_hitting_time() {
        // Walk from 200 down to 0 with drift exactly 0.2 per step:
        // expected hitting time = 1000, and both bounds should agree.
        let params = AdditiveDrift::new(200.0, 0.2, 0.2);
        assert!((params.expected_time_upper() - 1000.0).abs() < 1e-9);
        assert!((params.expected_time_lower() - 1000.0).abs() < 1e-9);

        let reps = 300u64;
        let mut total = 0u64;
        for seed in 0..reps {
            let mut w = LazyWalk::starting_at(ConstantLaw::new(0.6, -0.2), 200);
            let mut rng = SimRng::new(seed);
            let mut steps = 0u64;
            while w.position() > 0 {
                w.step(&mut rng);
                steps += 1;
            }
            total += steps;
        }
        let mean = total as f64 / reps as f64;
        assert!(
            (mean - 1000.0).abs() < 60.0,
            "mean hitting time {mean} vs theory 1000"
        );
    }

    #[test]
    fn paper_intuition_beta_over_alpha() {
        // §2: drift α per interaction ⇒ moving by β takes ≈ β/α steps.
        let params = AdditiveDrift::new(5_000.0, 0.05, 0.05);
        assert_eq!(params.expected_time_upper(), 100_000.0);
    }

    #[test]
    fn empirical_drift_recovers_slope() {
        let traj: Vec<f64> = (0..100).map(|i| 100.0 - i as f64 * 0.5).collect();
        let d = empirical_drift_toward_zero(&traj).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_drift_edge_cases() {
        assert_eq!(empirical_drift_toward_zero(&[]), None);
        assert_eq!(empirical_drift_toward_zero(&[5.0]), None);
        // All mass at/below zero: no usable transitions.
        assert_eq!(empirical_drift_toward_zero(&[0.0, 0.0, 0.0]), None);
    }

    #[test]
    #[should_panic(expected = "delta_lower")]
    fn invalid_deltas_rejected() {
        AdditiveDrift::new(10.0, 0.5, 0.1);
    }
}
