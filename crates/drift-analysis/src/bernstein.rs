//! Bernstein's inequality (Theorem A.2) and the Lemma 3.2 tail bound.
//!
//! Theorem A.2: for independent zero-mean |Xᵢ| ≤ M,
//! P\[ΣXᵢ ≥ t\] ≤ exp(−½t² / (ΣE\[Xᵢ²\] + Mt/3)).
//!
//! Lemma 3.2 instantiates it with Xᵢ = Ỹ(i+1) − Ỹ(i) − q (so M = 2 and
//! E\[Xᵢ²\] ≤ p − q²) over N ≤ T/(2q) steps to get
//! P[Ỹ(N) ≥ T] ≤ exp(−(T/8) / ((p − q²)/(2q) + 2/3)).

/// Bernstein tail bound: P\[ΣXᵢ ≥ t\] ≤ `bernstein_tail(t, sum_var, m)` for
/// independent zero-mean |Xᵢ| ≤ m with ΣE\[Xᵢ²\] = `sum_var`.
pub fn bernstein_tail(t: f64, sum_var: f64, m: f64) -> f64 {
    assert!(t >= 0.0 && sum_var >= 0.0 && m >= 0.0);
    if t == 0.0 {
        return 1.0;
    }
    let denom = sum_var + m * t / 3.0;
    if denom == 0.0 {
        return 0.0;
    }
    (-0.5 * t * t / denom).exp().min(1.0)
}

/// The Lemma 3.2 tail: with activity bound `p`, bias bound `q` and
/// threshold `t_threshold`, P[walk reaches T within T/(2q) steps]
/// ≤ exp(−(T/8)/((p − q²)/(2q) + 2/3)).
pub fn lemma32_tail(t_threshold: f64, p: f64, q: f64) -> f64 {
    assert!(p > 0.0 && q > 0.0 && q <= p, "need 0 < q <= p");
    assert!(t_threshold > 0.0);
    let denom = (p - q * q) / (2.0 * q) + 2.0 / 3.0;
    (-(t_threshold / 8.0) / denom).exp().min(1.0)
}

/// The Lemma 3.2 hypothesis: T ≥ 32·((p − q²)/(2q) + 2/3)·ln n. When it
/// holds, the lemma guarantees the walk stays below T for
/// min{T/(2q), n²} steps with probability ≥ 1 − n⁻².
pub fn lemma32_condition_holds(t_threshold: f64, p: f64, q: f64, n: f64) -> bool {
    assert!(p > 0.0 && q > 0.0 && q <= p, "need 0 < q <= p");
    assert!(n > 1.0);
    t_threshold >= 32.0 * ((p - q * q) / (2.0 * q) + 2.0 / 3.0) * n.ln()
}

/// The number of steps the Lemma 3.2 conclusion covers: min{T/(2q), n²}.
pub fn lemma32_horizon(t_threshold: f64, q: f64, n: f64) -> f64 {
    (t_threshold / (2.0 * q)).min(n * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{ConstantLaw, LazyWalk};
    use sim_stats::rng::SimRng;

    #[test]
    fn tail_decreases_in_t_and_is_probability() {
        let v = 100.0;
        let m = 2.0;
        let mut last = 1.0;
        for t in [0.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let b = bernstein_tail(t, v, m);
            assert!((0.0..=1.0).contains(&b));
            assert!(b <= last + 1e-15, "not monotone at t={t}");
            last = b;
        }
    }

    #[test]
    fn tail_matches_hand_computation() {
        // t=10, var=50, M=2: exp(-0.5*100/(50 + 20/3)).
        let expect = (-50.0f64 / (50.0 + 20.0 / 3.0)).exp();
        assert!((bernstein_tail(10.0, 50.0, 2.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(bernstein_tail(0.0, 10.0, 2.0), 1.0);
        assert_eq!(bernstein_tail(5.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn bernstein_dominates_empirical_tail_for_bounded_sums() {
        // Sum of 500 independent ±1 fair coin steps (M = 1, var = 500).
        let n_steps = 500u64;
        let reps = 4_000u64;
        let t = 50.0;
        let mut exceed = 0u64;
        for seed in 0..reps {
            let mut rng = SimRng::new(seed);
            let mut s = 0i64;
            for _ in 0..n_steps {
                s += if rng.bernoulli(0.5) { 1 } else { -1 };
            }
            if s as f64 >= t {
                exceed += 1;
            }
        }
        let empirical = exceed as f64 / reps as f64;
        let bound = bernstein_tail(t, n_steps as f64, 1.0);
        assert!(
            empirical <= bound * 1.2 + 0.01,
            "empirical {empirical} vs bound {bound}"
        );
    }

    #[test]
    fn lemma32_tail_monotone_in_threshold() {
        let (p, q) = (0.2, 0.01);
        assert!(lemma32_tail(200.0, p, q) < lemma32_tail(100.0, p, q));
        assert!(lemma32_tail(100.0, p, q) <= 1.0);
    }

    #[test]
    fn lemma32_condition_scaling() {
        let (p, q, n) = (5.0f64 / 32.0, 6.25f64 / 1024.0, 1e6f64);
        // Threshold below the requirement fails, far above passes.
        let requirement = 32.0 * ((p - q * q) / (2.0 * q) + 2.0 / 3.0) * n.ln();
        assert!(!lemma32_condition_holds(requirement * 0.9, p, q, n));
        assert!(lemma32_condition_holds(requirement * 1.1, p, q, n));
    }

    #[test]
    fn lemma32_horizon_caps_at_n_squared() {
        assert_eq!(lemma32_horizon(10.0, 0.001, 10.0), 100.0); // n² binds
        assert_eq!(lemma32_horizon(10.0, 0.5, 1e6), 10.0); // T/(2q) binds
    }

    #[test]
    fn lemma32_conclusion_holds_empirically() {
        // Walk with p = 0.3, q = 0.01, T = 60: lemma horizon T/(2q) = 3000.
        // The tail bound exp(-(60/8)/((0.3-1e-4)/0.02+2/3)) ≈ exp(-0.48) is
        // weak here, but the *statement* "stays below T for the horizon with
        // the bound's probability" must hold with margin empirically.
        let (p, q, t_threshold) = (0.3, 0.01, 60.0);
        let horizon = lemma32_horizon(t_threshold, q, 1e9) as u64; // 3000
        let reps = 1_000u64;
        let mut crossed = 0u64;
        for seed in 0..reps {
            let mut w = LazyWalk::new(ConstantLaw::new(p, q));
            let mut rng = SimRng::new(seed);
            if w.first_hit_at_least(&mut rng, t_threshold as i64, horizon)
                .is_some()
            {
                crossed += 1;
            }
        }
        let empirical = crossed as f64 / reps as f64;
        let bound = lemma32_tail(t_threshold, p, q);
        assert!(
            empirical <= bound + 0.03,
            "crossing fraction {empirical} exceeds Lemma 3.2 bound {bound}"
        );
    }

    #[test]
    #[should_panic(expected = "0 < q")]
    fn lemma32_rejects_bad_params() {
        lemma32_tail(10.0, 0.1, 0.2);
    }
}
