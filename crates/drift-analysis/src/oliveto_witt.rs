//! The Oliveto–Witt negative-drift theorem (Theorem A.1), as a parameter
//! checker and bound evaluator.
//!
//! Theorem A.1 (Theorem 2 of Oliveto & Witt 2015, as cited by the paper):
//! for a process X_t with
//!
//! 1. drift E[X_{t+1} − X_t | a < X_t < b] ≥ ε,
//! 2. step tails P[|X_{t+1} − X_t| ≥ j·r] ≤ e^{−j},
//! 3. 1 ≤ r² ≤ εℓ / (132·log(r/ε)) with ℓ = b − a,
//!
//! the first hitting time T* of (−∞, a] from X₀ ≥ b satisfies
//! P[T* ≤ exp(εℓ/(132 r²))] = O(exp(−εℓ/(132 r²))).
//!
//! Lemma 3.1 instantiates this with X_t = −u(t), ε = √(ln n / n),
//! ℓ = 20·13²·√(n ln n), r = √5 to show u(t) stays below its ceiling for
//! n⁴ interactions w.h.p. [`NegativeDriftParams::lemma31`] reproduces that
//! instantiation exactly.

/// Parameters of a negative-drift application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeDriftParams {
    /// Drift lower bound ε > 0 inside the interval.
    pub epsilon: f64,
    /// Interval length ℓ = b − a > 0.
    pub ell: f64,
    /// Step-scale factor r ≥ 1.
    pub r: f64,
}

/// The verdict of checking Theorem A.1's third (arithmetic) hypothesis and
/// evaluating the bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeDriftReport {
    /// Whether 1 ≤ r² ≤ εℓ/(132 log(r/ε)) holds.
    pub condition_holds: bool,
    /// The exponent εℓ/(132 r²).
    pub exponent: f64,
    /// The guaranteed horizon exp(exponent): the process w.h.p. does not
    /// hit the lower boundary within this many steps.
    pub horizon: f64,
    /// The failure probability scale exp(−exponent).
    pub failure_probability: f64,
}

impl NegativeDriftParams {
    /// Create a parameter set; validates positivity.
    pub fn new(epsilon: f64, ell: f64, r: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(ell > 0.0, "interval must be non-empty");
        assert!(r >= 1.0, "r must be at least 1");
        NegativeDriftParams { epsilon, ell, r }
    }

    /// The paper's Lemma 3.1 instantiation for population size `n`:
    /// ε = √(ln n / n), ℓ = 20·13²·√(n ln n), r = √5.
    pub fn lemma31(n: u64) -> Self {
        let nf = n as f64;
        NegativeDriftParams {
            epsilon: (nf.ln() / nf).sqrt(),
            ell: 20.0 * 169.0 * (nf * nf.ln()).sqrt(),
            r: 5.0f64.sqrt(),
        }
    }

    /// Check hypothesis 3 and evaluate the bound.
    pub fn report(&self) -> NegativeDriftReport {
        let r2 = self.r * self.r;
        let log_term = (self.r / self.epsilon).ln();
        let condition_holds =
            r2 >= 1.0 && log_term > 0.0 && r2 <= self.epsilon * self.ell / (132.0 * log_term);
        let exponent = self.epsilon * self.ell / (132.0 * r2);
        NegativeDriftReport {
            condition_holds,
            exponent,
            horizon: exponent.exp(),
            failure_probability: (-exponent).exp(),
        }
    }
}

/// Empirically estimate the drift E[X_{t+1} − X_t | X_t in window] from a
/// recorded trajectory: averages consecutive differences whose starting
/// point lies in `[lo, hi]`. Returns `None` if no transition starts there.
pub fn empirical_drift_in_window(trajectory: &[f64], lo: f64, hi: f64) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u64;
    for pair in trajectory.windows(2) {
        if pair[0] >= lo && pair[0] <= hi {
            sum += pair[1] - pair[0];
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{ConstantLaw, LazyWalk};
    use sim_stats::rng::SimRng;

    #[test]
    fn lemma31_instantiation_satisfies_theorem_for_large_n() {
        // The paper applies the theorem for large n; by n = 10^6 the
        // arithmetic condition must hold comfortably.
        let report = NegativeDriftParams::lemma31(1_000_000).report();
        assert!(report.condition_holds, "{report:?}");
        // The horizon must cover the paper's n^4 claim scale: the exponent
        // is εℓ/(132r²) = (ln n/n)^½·20·169·(n ln n)^½/660 ≈ 5.12·ln n,
        // i.e. horizon ≈ n^5.12 ≥ n^4.
        let n4 = 1e6f64.powi(4);
        assert!(report.horizon > n4, "horizon {} < n^4", report.horizon);
    }

    #[test]
    fn lemma31_exponent_is_about_four_log_n() {
        // εℓ/(132·r²) = 20·169·ln n / (132·5) ≈ 5.12 ln n ≥ 4 ln n: the
        // paper's P[T* ≤ exp(4 log n)] claim.
        for &n in &[10_000u64, 1_000_000] {
            let report = NegativeDriftParams::lemma31(n).report();
            let ratio = report.exponent / (n as f64).ln();
            assert!((ratio - 20.0 * 169.0 / 660.0).abs() < 1e-9, "ratio {ratio}");
            assert!(ratio > 4.0);
        }
    }

    #[test]
    fn condition_fails_for_tiny_interval() {
        let p = NegativeDriftParams::new(0.01, 10.0, 2.0);
        assert!(!p.report().condition_holds);
    }

    #[test]
    fn report_scales() {
        let r1 = NegativeDriftParams::new(0.1, 10_000.0, 1.5).report();
        let r2 = NegativeDriftParams::new(0.1, 20_000.0, 1.5).report();
        assert!(r2.exponent > r1.exponent);
        assert!(r2.failure_probability < r1.failure_probability);
        assert!((r1.horizon.ln() - r1.exponent).abs() < 1e-9);
    }

    #[test]
    fn negative_drift_empirically_blocks_crossing() {
        // A walk with drift −0.2 started at 0 should (w.h.p.) not climb to
        // +80 within exp-scale horizons; run a modest horizon and confirm
        // zero crossings across seeds.
        for seed in 0..50 {
            let mut w = LazyWalk::new(ConstantLaw::new(0.5, -0.2));
            let mut rng = SimRng::new(seed);
            assert_eq!(w.first_hit_at_least(&mut rng, 80, 50_000), None);
        }
    }

    #[test]
    fn empirical_drift_measures_window() {
        // Deterministic sawtooth: +1 below 5, −1 at/above 5.
        let mut traj = Vec::new();
        let mut x = 0.0;
        for _ in 0..100 {
            traj.push(x);
            if x < 5.0 {
                x += 1.0;
            } else {
                x -= 1.0;
            }
        }
        let low = empirical_drift_in_window(&traj, 0.0, 4.0).unwrap();
        let high = empirical_drift_in_window(&traj, 5.0, 10.0).unwrap();
        assert!(low > 0.0);
        assert!(high < 0.0);
        assert_eq!(empirical_drift_in_window(&traj, 1000.0, 2000.0), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_epsilon_rejected() {
        NegativeDriftParams::new(0.0, 1.0, 1.0);
    }
}
