//! Subcommand implementations for `usd-sim`.

use pop_proto::checkpoint::{SnapshotReader, SnapshotWriter};
use pop_proto::telemetry::timeline::phase_tag;
use pop_proto::telemetry::EngineTelemetry;
use pop_proto::topology::TopologyFamily;
use pop_proto::{EventHistograms, Simulator, TimelineRecorder};
use sim_stats::rng::SimRng;
use sim_stats::summary::Summary;
use sim_stats::tables::{fmt_sig, fmt_thousands, TextTable};
use std::path::{Path, PathBuf};
use usd_core::backend::{make_agent_topology_simulator, Backend, RunTicker};
use usd_core::checkpoint::RunCheckpoint;
use usd_core::dynamics::{SkipAheadUsd, UsdSimulator};
use usd_core::encode::Trajectory;
use usd_core::init::InitialConfigBuilder;
use usd_core::stabilization::ConsensusOutcome;
use usd_core::theory::{self, Bounds};
use usd_core::{EnsembleOutcome, RunSpec, DEFAULT_REPLICAS};

/// CLI usage text.
pub const USAGE: &str = "\
usd-sim — Undecided State Dynamics simulator

commands:
  run    --n <u64> --k <usize> [--bias <u64> | --max-bias] [--seed <u64>]
         [--backend agent|count|batch|graph|batchgraph|pargraph|seq|skip|replica]
         [--replicas <1..=64>] [--threads <t>]
         [--trace <file.usdt>]
         [--topology complete|cycle|torus|hypercube|regular[:d]|er[:avg]]
         [--degree <usize>] [--topo-seed <u64>]
         [--telemetry[=table|json]] [--progress-every <secs>]
         [--timeline <out.jsonl>] [--timeline-cadence <interactions>]
         [--histograms]
         [--checkpoint <file.ckpt>] [--checkpoint-every <interactions>]
         [--resume <file.ckpt>]
           one exact run to stabilization; optionally record a trajectory
           (backend default: skip; use batch for n >= 10^7, agent for
           per-agent ground truth; trace requires the skip backend).
           --backend replica packs up to 64 independent replica runs of
           the same instance into one bit-parallel engine pass (one lane
           per bit of a machine word) and prints a per-lane ensemble
           summary; --replicas sets the lane count (default 64, replica
           backend only). Checkpoints of ensemble runs carry the lane
           count in their identity (backend 'replica:<lanes>').
           --backend pargraph shards the interaction graph into spatial
           domains advanced on a persistent worker pool; --threads caps
           the worker threads of the thread-capable engines (batch,
           pargraph; default: USD_THREADS env, else all cores).
           Trajectories are bit-identical for any thread count, so
           pargraph checkpoints resume under a different --threads.
           --topology runs on an interaction graph instead of the clique
           (backend default becomes batchgraph — the block-leaping engine;
           graph, pargraph, agent, and replica also work); --degree sets d
           for regular/er; the
           population is snapped to the nearest feasible size for the
           family. --telemetry prints the engine's run report (counters,
           timing spans, derived rates) as a table or one JSON object;
           --progress-every emits a stderr heartbeat for long runs (phase
           tag, effective fraction, instantaneous effective rate).
           --timeline writes a flight-recorder sample (telemetry deltas +
           phase tag) every cadence interactions to schema-stable JSONL
           (cadence default: max(n, 65536) — deterministic in the
           interaction clock, so fixed seeds reproduce bit-identical
           files); --histograms prints log-bucketed per-event histograms
           (skip lengths, block totals, flush sizes; p50/p90/p99).
           --checkpoint persists a crash-safe resume point (engine state,
           RNG stream position, flight recorder) every --checkpoint-every
           interactions (default max(16n, 2^22)): temp file + fsync +
           atomic rename, with the previous checkpoint rotated to
           <file>.prev as a fallback; --resume restarts a run from such a
           file bit-identically (same flags required — the checkpoint
           echoes the run identity and mismatches are rejected); output
           directories for --checkpoint/--timeline are probed for
           writability before the run starts. Resumed runs drive through
           the same chunked loop as checkpointed runs, so an interrupted +
           resumed run reproduces the uninterrupted run byte-for-byte
           (final state and timeline)
  sweep  --n <u64> [--seeds <u64>] [--seed <u64>]
         [--backend agent|count|batch|graph|batchgraph|pargraph|seq|skip|replica]
           stabilization time across the admissible k grid vs the bounds
  bounds --n <u64> --k <usize>
           print the paper's bound curves for (n, k)
  trace  <file.usdt>
           inspect a trajectory recorded by `run --trace`
  help
";

/// A fatal CLI error (message printed to stderr, exit code 2).
#[derive(Debug)]
pub struct CliError(pub String);

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

/// Minimal flag parser: `--name value` / `--name=value` pairs plus
/// boolean flags (which may also carry an inline `=value`, the
/// `--telemetry[=json]` shape).
pub struct Flags {
    pairs: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Flags {
    /// Parse; `bools` lists flags that take no value (unless given inline
    /// with `=`).
    pub fn parse(args: &[String], bools: &[&str]) -> Result<Self, CliError> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    pairs.push((key.to_string(), Some(value.to_string())));
                } else if bools.contains(&name) {
                    pairs.push((name.to_string(), None));
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError(format!("--{name} needs a value")))?;
                    pairs.push((name.to_string(), Some(v.clone())));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    /// Tri-state lookup for flags with an optional inline value: `None`
    /// when absent, `Some(None)` for the bare flag, `Some(Some(v))` for
    /// `--name=v`.
    pub fn get_opt(&self, name: &str) -> Option<Option<&str>> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_deref())
    }

    /// Look up a value flag and parse it.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        for (k, v) in &self.pairs {
            if k == name {
                let v = v
                    .as_ref()
                    .ok_or_else(|| CliError(format!("--{name} needs a value")))?;
                return v
                    .parse::<T>()
                    .map(Some)
                    .map_err(|e| CliError(format!("--{name}: {e}")));
            }
        }
        Ok(None)
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, v)| k == name && v.is_none())
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Output format for the `run --telemetry` engine report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TelemetryFormat {
    Table,
    Json,
}

/// Stderr progress heartbeat for long runs (`run --progress-every`):
/// prints at most once per period, fed the engine's clocks and telemetry
/// by the chunked stabilization drivers. Each line carries the phase tag
/// (dense/sparse), the cumulative effective fraction, and the
/// instantaneous effective-event rate since the previous line.
struct Heartbeat {
    period: std::time::Duration,
    started: std::time::Instant,
    last_printed: std::time::Instant,
    n: u64,
    /// Effective clock at the previous printed line (instantaneous rate).
    last_effective: u64,
}

impl Heartbeat {
    fn new(period: std::time::Duration, n: u64) -> Self {
        let now = std::time::Instant::now();
        Heartbeat {
            period,
            started: now,
            last_printed: now,
            n,
            last_effective: 0,
        }
    }

    fn tick(&mut self, interactions: u64, telemetry: &EngineTelemetry) {
        let since_last = self.last_printed.elapsed();
        if since_last < self.period {
            return;
        }
        let eff_per_sec =
            (telemetry.effective - self.last_effective) as f64 / since_last.as_secs_f64().max(1e-9);
        eprintln!(
            "usd-sim: {} interactions (~{} parallel time) [{} phase, eff {:.1}%, {}/s effective], {:.1?} elapsed",
            fmt_thousands(interactions),
            fmt_sig(interactions as f64 / self.n as f64, 4),
            phase_tag(telemetry),
            telemetry.effective_fraction() * 100.0,
            fmt_thousands(eff_per_sec as u64),
            self.started.elapsed(),
        );
        self.last_effective = telemetry.effective;
        self.last_printed = std::time::Instant::now();
    }
}

/// Periodic crash-safe checkpoint writes (`run --checkpoint`), driven from
/// the [`RunTicker::checkpoint_tick`] hook at chunk boundaries. Writes are
/// pure observation — no RNG draws, no horizon bounds — so a checkpointed
/// run's trajectory is identical to the same ticked run without the flag.
/// A failed write warns on stderr and the run continues; the previous
/// checkpoint (if any) survives untouched thanks to the atomic-rename
/// persistence chain.
struct CheckpointSink {
    path: PathBuf,
    every: u64,
    /// Next scheduled-clock mark to persist at; `None` until the first
    /// boundary initializes it from the live clock (which on resumed runs
    /// is mid-flight).
    next: Option<u64>,
    /// Backend identity string as persisted — the backend name, with the
    /// lane count appended (`replica:<lanes>`) for ensemble runs.
    backend: String,
    n: u64,
    k: u32,
    seed: u64,
    topology: String,
    written: u64,
}

/// Chunk-boundary observer combining the optional stderr heartbeat, the
/// optional `--timeline` flight recorder, and the optional `--checkpoint`
/// sink behind one [`RunTicker`]. The recorder bounds driving chunks via
/// its sampling horizon so samples land exactly on cadence marks.
struct RunMonitor {
    heartbeat: Option<Heartbeat>,
    recorder: Option<TimelineRecorder>,
    checkpoint: Option<CheckpointSink>,
}

impl RunTicker for RunMonitor {
    fn horizon(&self, scheduled: u64) -> u64 {
        self.recorder
            .as_ref()
            .map_or(u64::MAX, |r| r.horizon(scheduled))
    }

    fn tick(&mut self, sim: &dyn Simulator) {
        if let Some(r) = &mut self.recorder {
            r.record_if_due(sim);
        }
        if let Some(hb) = &mut self.heartbeat {
            hb.tick(sim.interactions(), sim.telemetry());
        }
    }

    fn checkpoint_tick(&mut self, sim: &dyn Simulator, rng: &SimRng) {
        let Some(c) = self.checkpoint.as_mut() else {
            return;
        };
        let clock = sim.interactions();
        let due = match c.next {
            Some(mark) => clock >= mark,
            None => {
                // First boundary: schedule the next cadence mark past the
                // live clock without writing (the engine state at the
                // clock's current mark is already on disk or trivial).
                c.next = Some((clock / c.every + 1).saturating_mul(c.every));
                false
            }
        };
        if !due {
            return;
        }
        c.next = Some((clock / c.every + 1).saturating_mul(c.every));
        let mut w = SnapshotWriter::new();
        if let Err(e) = sim.snapshot_state(&mut w) {
            eprintln!("usd-sim: checkpoint skipped: {e}");
            return;
        }
        let ckpt = RunCheckpoint {
            backend: c.backend.clone(),
            n: c.n,
            k: c.k,
            seed: c.seed,
            topology: c.topology.clone(),
            rng: rng.state(),
            recorder: self.recorder.clone(),
            engine: w.into_bytes(),
        };
        match ckpt.save(&c.path) {
            Ok(()) => c.written += 1,
            Err(e) => eprintln!(
                "usd-sim: checkpoint write failed ({}): {e}",
                c.path.display()
            ),
        }
    }
}

/// Preflight an output path: verify its parent directory exists and is
/// writable *before* the run starts, so a multi-hour run cannot die at the
/// final write (or, for checkpoints, silently never persist). Probes with
/// a uniquely named scratch file, mirroring the topology sweep's
/// timeline-dir preflight.
fn preflight_writable(path: &str, flag: &str) -> Result<(), CliError> {
    let parent = Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    if !parent.is_dir() {
        return Err(CliError(format!(
            "{flag} {path}: directory {} does not exist",
            parent.display()
        )));
    }
    let probe = parent.join(format!(".usd_write_probe.{}", std::process::id()));
    std::fs::write(&probe, b"usd-sim write probe").map_err(|e| {
        CliError(format!(
            "{flag} {path}: {} is not writable: {e}",
            parent.display()
        ))
    })?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// Print the per-event histogram quantile table (`run --histograms`).
fn print_histograms(backend: Backend, hist: &EventHistograms) {
    println!("event histograms ({backend}):");
    let mut t = TextTable::new(&["histogram", "p50", "p90", "p99", "events"]);
    for (name, h) in hist.fields() {
        t.row_owned(vec![
            name.to_string(),
            fmt_sig(h.p50(), 4),
            fmt_sig(h.p90(), 4),
            fmt_sig(h.p99(), 4),
            fmt_thousands(h.total()),
        ]);
    }
    print!("{t}");
}

/// One-line schema-stable JSON run report (`run --telemetry=json`): the
/// instance, the outcome, the optional `--histograms` quantiles, and the
/// engine's telemetry object (always the last key).
#[allow(clippy::too_many_arguments)]
fn run_report_json(
    backend: Backend,
    n: u64,
    k: usize,
    seed: u64,
    result: &usd_core::stabilization::StabilizationResult,
    elapsed: std::time::Duration,
    histograms: Option<&EventHistograms>,
    telemetry: &EngineTelemetry,
) -> String {
    let outcome = match result.outcome {
        ConsensusOutcome::Winner(w) => format!("winner:{w}"),
        ConsensusOutcome::AllUndecided => "all-undecided".to_string(),
        ConsensusOutcome::Frozen => "frozen".to_string(),
        ConsensusOutcome::Timeout => "timeout".to_string(),
    };
    let histograms = histograms.map_or(String::new(), |h| {
        format!("\"histograms\":{},", h.to_json())
    });
    format!(
        "{{\"backend\":\"{}\",\"n\":{},\"k\":{},\"seed\":{},\
         \"outcome\":\"{}\",\"interactions\":{},\"parallel_time\":{:.6},\
         \"wall_ms\":{:.3},{}\"telemetry\":{}}}",
        backend.name(),
        n,
        k,
        seed,
        outcome,
        result.interactions,
        result.parallel_time(n),
        elapsed.as_secs_f64() * 1e3,
        histograms,
        telemetry.to_json(),
    )
}

/// `usd-sim run`.
pub fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["max-bias", "telemetry", "histograms"])?;
    let mut n: u64 = flags.get("n")?.unwrap_or(100_000);
    let k: usize = flags.get("k")?.unwrap_or_else(|| theory::figure1_k(n));
    let seed: u64 = flags.get("seed")?.unwrap_or(42);
    let topology: Option<TopologyFamily> = flags.get("topology")?;
    let topo_seed: u64 = flags.get("topo-seed")?.unwrap_or(7);
    let topology = match (topology, flags.get::<usize>("degree")?) {
        (_, Some(0)) => {
            return Err(CliError("--degree must be at least 1".to_string()));
        }
        (Some(t), Some(d)) => Some(t.with_degree(d)),
        (t, None) => t,
        (None, Some(_)) => {
            return Err(CliError("--degree requires --topology".to_string()));
        }
    };
    let backend: Backend = flags.get("backend")?.unwrap_or(if topology.is_some() {
        Backend::BatchGraph
    } else {
        Backend::SkipAhead
    });
    let caps = backend.capabilities();
    let lanes: u32 = match flags.get::<u32>("replicas")? {
        Some(0) => {
            return Err(CliError("--replicas must be at least 1".to_string()));
        }
        Some(r) if r > DEFAULT_REPLICAS => {
            return Err(CliError(format!(
                "--replicas {r} exceeds the {DEFAULT_REPLICAS}-lane word width"
            )));
        }
        Some(r) if r > caps.replicas => {
            return Err(CliError(format!(
                "--replicas {r} requires --backend replica (the {backend} \
                 backend runs a single lane)"
            )));
        }
        Some(r) => r,
        None if caps.replicas > 1 => DEFAULT_REPLICAS,
        None => 1,
    };
    let threads: Option<usize> = match flags.get::<usize>("threads")? {
        Some(0) => {
            return Err(CliError("--threads must be at least 1".to_string()));
        }
        Some(t) if !caps.threads => {
            return Err(CliError(format!(
                "--threads {t} has no effect on the {backend} backend \
                 (thread-capable backends: batch, pargraph)"
            )));
        }
        t => t,
    };
    // Backend identity as persisted in checkpoints and echoed on resume:
    // ensemble runs append the lane count so a checkpoint from a 64-lane
    // run can never resume a 32-lane one.
    let backend_id = if lanes > 1 {
        format!("{}:{lanes}", backend.name())
    } else {
        backend.name().to_string()
    };
    let trace_path: Option<String> = flags.get("trace")?;
    let telemetry_format = match flags.get_opt("telemetry") {
        None => None,
        Some(None) | Some(Some("table")) => Some(TelemetryFormat::Table),
        Some(Some("json")) => Some(TelemetryFormat::Json),
        Some(Some(other)) => {
            return Err(CliError(format!(
                "--telemetry: unknown format '{other}' (use table or json)"
            )));
        }
    };
    let heartbeat_period = match flags.get::<f64>("progress-every")? {
        Some(s) if s > 0.0 && s.is_finite() => Some(std::time::Duration::from_secs_f64(s)),
        Some(s) => {
            return Err(CliError(format!(
                "--progress-every needs a positive number of seconds, got {s}"
            )));
        }
        None => None,
    };
    let timeline_path: Option<String> = flags.get("timeline")?;
    let timeline_cadence = match flags.get::<u64>("timeline-cadence")? {
        Some(0) => {
            return Err(CliError(
                "--timeline-cadence must be at least 1 interaction".to_string(),
            ));
        }
        Some(c) if timeline_path.is_none() => {
            return Err(CliError(format!(
                "--timeline-cadence {c} requires --timeline"
            )));
        }
        c => c,
    };
    let checkpoint_path: Option<String> = flags.get("checkpoint")?;
    let checkpoint_every = match flags.get::<u64>("checkpoint-every")? {
        Some(0) => {
            return Err(CliError(
                "--checkpoint-every must be at least 1 interaction".to_string(),
            ));
        }
        Some(c) if checkpoint_path.is_none() => {
            return Err(CliError(format!(
                "--checkpoint-every {c} requires --checkpoint"
            )));
        }
        c => c,
    };
    let resume_path: Option<String> = flags.get("resume")?;
    let want_histograms = flags.has("histograms");
    if let Some(family) = topology {
        if !caps.topologies {
            return Err(CliError(format!(
                "--topology requires a topology-capable backend \
                 (agent, graph, batchgraph, pargraph, or replica), got {backend}"
            )));
        }
        if trace_path.is_some() {
            return Err(CliError(
                "trace recording is clique-only (drop --topology)".to_string(),
            ));
        }
        let snapped = family.snap_n(n as usize) as u64;
        if snapped != n {
            println!("note: n snapped to {snapped} for the {family} family");
            n = snapped;
        }
    }
    if n < 2 || k < 1 || (k as u64) > n {
        return Err(CliError(format!("invalid instance n={n}, k={k}")));
    }
    if trace_path.is_some() && backend != Backend::SkipAhead {
        return Err(CliError(
            "trace recording requires --backend skip".to_string(),
        ));
    }
    if trace_path.is_some() && (timeline_path.is_some() || want_histograms) {
        return Err(CliError(
            "--timeline/--histograms use the generic engine drivers (drop --trace)".to_string(),
        ));
    }
    if trace_path.is_some() && (checkpoint_path.is_some() || resume_path.is_some()) {
        return Err(CliError(
            "--checkpoint/--resume use the generic engine drivers (drop --trace)".to_string(),
        ));
    }
    // Preflight output directories now: a run can take hours, and the
    // final timeline write — or every checkpoint along the way — would
    // otherwise be the first time an unwritable path surfaces.
    if let Some(p) = &timeline_path {
        preflight_writable(p, "--timeline")?;
    }
    if let Some(p) = &checkpoint_path {
        preflight_writable(p, "--checkpoint")?;
    }
    if matches!(
        backend,
        Backend::Graph | Backend::BatchGraph | Backend::ParGraph
    ) && topology.is_none()
        && n > usd_core::backend::COMPLETE_GRAPH_MAX_N
    {
        return Err(CliError(format!(
            "--backend {backend} without --topology runs the complete graph \
             (n(n-1)/2 edges); n={n} exceeds the cap of {} — pass --topology \
             for a sparse graph or use agent/count/batch for the clique",
            usd_core::backend::COMPLETE_GRAPH_MAX_N
        )));
    }

    let builder = InitialConfigBuilder::new(n, k);
    let requested_bias = if flags.has("max-bias") {
        None // max_admissible_bias clamps internally
    } else if let Some(b) = flags.get::<u64>("bias")? {
        Some(b)
    } else {
        Some(theory::sqrt_n_log_n(n)) // the figure1 default
    };
    let config = match requested_bias {
        None => builder.max_admissible_bias(),
        Some(b) => {
            if b.saturating_add(k as u64) > n {
                return Err(CliError(format!(
                    "bias {b} leaves no room for {k} nonempty opinions at n={n} \
                     (need bias + k <= n; try --bias 0 or a larger --n)"
                )));
            }
            builder.equal_minorities(b)
        }
    };
    match topology {
        Some(family) => println!("initial: {config} (backend: {backend}, topology: {family})"),
        None => println!("initial: {config} (backend: {backend})"),
    }

    // Load and validate the resume point up front: header, checksum, and
    // the run-identity echo against the flags (a checkpoint from a
    // different run is rejected before any simulation happens).
    let resumed: Option<(RunCheckpoint, PathBuf)> = match &resume_path {
        Some(p) => {
            let (ckpt, from) = RunCheckpoint::load(Path::new(p))
                .map_err(|e| CliError(format!("--resume {p}: {e}")))?;
            let topo_name = topology.map(|f| f.name()).unwrap_or_default();
            ckpt.check_identity(&backend_id, n, k as u32, seed, &topo_name)
                .map_err(|e| CliError(format!("--resume {p}: {e}")))?;
            Some((ckpt, from))
        }
        None => None,
    };

    let mut rng = SimRng::new(seed);
    let started = std::time::Instant::now();
    let mut trajectory = Trajectory::new(n, k);
    // The flight recorder: fresh from the flags, or — on resume — the
    // checkpoint's restored recorder, mid-samples, so the rewritten JSONL
    // is byte-for-byte the uninterrupted run's. The recorder also bounds
    // driving chunks, so its presence must follow the checkpoint (not the
    // flags) for the resumed trajectory to line up.
    let recorder = match &resumed {
        Some((ckpt, _)) => {
            if ckpt.recorder.is_none() && timeline_path.is_some() {
                return Err(CliError(
                    "--timeline on a resumed run needs a checkpoint carrying the flight \
                     recorder (the original run did not pass --timeline)"
                        .to_string(),
                ));
            }
            if let (Some(rec), Some(c)) = (&ckpt.recorder, timeline_cadence) {
                if rec.cadence() != c {
                    return Err(CliError(format!(
                        "--timeline-cadence {c} conflicts with the checkpoint's recorded \
                         cadence {}",
                        rec.cadence()
                    )));
                }
            }
            ckpt.recorder.clone()
        }
        None => timeline_path.as_ref().map(|_| match timeline_cadence {
            Some(c) => TimelineRecorder::new(c),
            None => TimelineRecorder::with_default_cadence(n),
        }),
    };
    let mut monitor = RunMonitor {
        heartbeat: heartbeat_period.map(|p| Heartbeat::new(p, n)),
        recorder,
        checkpoint: checkpoint_path.as_ref().map(|p| CheckpointSink {
            path: PathBuf::from(p),
            every: checkpoint_every.unwrap_or_else(|| (16 * n).max(1 << 22)),
            next: None,
            backend: backend_id.clone(),
            n,
            k: k as u32,
            seed,
            topology: topology.map(|f| f.name()).unwrap_or_default(),
            written: 0,
        }),
    };
    // Captured when a telemetry report was requested (the engine must
    // outlive the stabilization drive, hence the keeping/in-place paths).
    let mut telemetry: Option<EngineTelemetry> = None;
    let mut histograms: Option<EventHistograms> = None;
    // Per-lane outcomes of an ensemble run, read off the kept engine.
    let mut ensemble: Option<EnsembleOutcome> = None;
    // Whether any chunk-boundary instrumentation is attached: a monitor
    // forces the chunked drive loop; without one a clique run is a single
    // uninterrupted `run_to_silence`, bit-identical to the plain path.
    let monitored =
        monitor.heartbeat.is_some() || monitor.recorder.is_some() || monitor.checkpoint.is_some();
    let result = if trace_path.is_some() {
        // Stabilize with snapshots roughly once per parallel round (the
        // skip backend, so the observer sees every effective event).
        // The raw engine predates the `Simulator` trait, so the skip
        // backend's counters (one geometric skip draw and one effective
        // draw per event) are tallied here at the drive site.
        let mut sim = SkipAheadUsd::new(&config);
        let mut tally = EngineTelemetry::new();
        trajectory.push(0, config.clone());
        let mut next_capture = n;
        loop {
            match sim.step_effective(&mut rng) {
                None => break,
                Some(_) => {
                    tally.effective += 1;
                    tally.skip_draws += 1;
                    tally.pair_draws += 1;
                    if sim.interactions() >= next_capture {
                        trajectory.push(sim.interactions(), sim.config());
                        next_capture = sim.interactions() + n;
                        if let Some(hb) = monitor.heartbeat.as_mut() {
                            tally.scheduled = sim.interactions();
                            hb.tick(sim.interactions(), &tally);
                        }
                    }
                    if sim.is_silent() {
                        break;
                    }
                }
            }
        }
        trajectory.push(sim.interactions(), sim.config());
        tally.scheduled = sim.interactions();
        telemetry = Some(tally);
        usd_core::stabilization::StabilizationResult {
            outcome: match sim.winner() {
                Some(w) => ConsensusOutcome::Winner(w),
                None => ConsensusOutcome::AllUndecided,
            },
            interactions: sim.interactions(),
            initial_plurality: config.plurality(),
        }
    } else if let Some((ckpt, from)) = &resumed {
        // Rebuild the simulator exactly as the original run did (the
        // constructors consume the same RNG draws — e.g. the shuffled
        // initial layout on topologies), restore the engine payload,
        // reposition the RNG at the saved stream position, and drive
        // through the same chunked loops a checkpointed run uses: chunk
        // boundaries are a pure function of the absolute interaction
        // clock, so the resumed trajectory is the uninterrupted one.
        let bad = |e: String| CliError(format!("--resume {}: {e}", from.display()));
        let saved_rng = SimRng::from_state(ckpt.rng)
            .ok_or_else(|| bad("checkpoint RNG state is all-zero".to_string()))?;
        if let (Backend::Agent, Some(family)) = (backend, topology) {
            let mut sim = make_agent_topology_simulator(&config, family, topo_seed, &mut rng);
            let mut r = SnapshotReader::new(&ckpt.engine);
            Simulator::restore_state(&mut sim, &mut r).map_err(|e| bad(e.to_string()))?;
            rng = saved_rng;
            if telemetry_format.is_some() {
                Simulator::set_span_timing(&mut sim, true);
            }
            if want_histograms && Simulator::histograms(&sim).is_none() {
                return Err(bad(
                    "--histograms needs a checkpoint recorded with --histograms".to_string(),
                ));
            }
            println!(
                "resumed from {} at {} interactions",
                from.display(),
                fmt_thousands(Simulator::interactions(&sim)),
            );
            let result = RunSpec::new(&config)
                .backend(backend)
                .ticker(&mut monitor)
                .drive_agent_graph(&mut sim, &mut rng);
            if let Some(rec) = monitor.recorder.as_mut() {
                rec.finish(&sim);
            }
            histograms = Simulator::histograms(&sim);
            telemetry = Some(*Simulator::telemetry(&sim));
            result
        } else {
            let mut build = RunSpec::new(&config).backend(backend).replicas(lanes);
            if let Some(t) = threads {
                build = build.threads(t);
            }
            let build = match topology {
                Some(family) => build.topology(family).topo_seed(topo_seed),
                None => build,
            };
            let mut sim: Box<dyn Simulator> = build.build_simulator(&mut rng);
            let mut r = SnapshotReader::new(&ckpt.engine);
            sim.restore_state(&mut r).map_err(|e| bad(e.to_string()))?;
            rng = saved_rng;
            if telemetry_format.is_some() {
                sim.set_span_timing(true);
            }
            if want_histograms && sim.histograms().is_none() {
                return Err(bad(
                    "--histograms needs a checkpoint recorded with --histograms".to_string(),
                ));
            }
            println!(
                "resumed from {} at {} interactions",
                from.display(),
                fmt_thousands(sim.interactions()),
            );
            let result = RunSpec::new(&config)
                .backend(backend)
                .ticker(&mut monitor)
                .drive(sim.as_mut(), &mut rng);
            if let Some(rec) = monitor.recorder.as_mut() {
                rec.finish(sim.as_ref());
            }
            histograms = sim.histograms();
            telemetry = Some(*sim.telemetry());
            if lanes > 1 {
                ensemble = Some(EnsembleOutcome::from_simulator(
                    sim.as_ref(),
                    k,
                    config.plurality(),
                ));
            }
            result
        }
    } else if let Some(family) = topology {
        if telemetry_format.is_some() || want_histograms || monitored || lanes > 1 {
            let mut spec = RunSpec::new(&config)
                .backend(backend)
                .topology(family)
                .topo_seed(topo_seed)
                .replicas(lanes)
                .span_timing(telemetry_format.is_some())
                .histograms(want_histograms);
            if let Some(t) = threads {
                spec = spec.threads(t);
            }
            if monitored {
                spec = spec.ticker(&mut monitor);
            }
            let (result, sim) = spec.run_keeping(&mut rng);
            if let Some(s) = &sim {
                if let Some(rec) = monitor.recorder.as_mut() {
                    rec.finish(s.as_ref());
                }
                histograms = s.histograms();
                if lanes > 1 {
                    ensemble = Some(EnsembleOutcome::from_simulator(
                        s.as_ref(),
                        k,
                        config.plurality(),
                    ));
                }
            }
            telemetry = Some(sim.map_or(EngineTelemetry::new(), |s| *s.telemetry()));
            result
        } else {
            let mut spec = RunSpec::new(&config)
                .backend(backend)
                .topology(family)
                .topo_seed(topo_seed);
            if let Some(t) = threads {
                spec = spec.threads(t);
            }
            spec.run(&mut rng)
        }
    } else if telemetry_format.is_some() || want_histograms || monitored || lanes > 1 {
        let mut spec = RunSpec::new(&config)
            .backend(backend)
            .replicas(lanes)
            .span_timing(telemetry_format.is_some())
            .histograms(want_histograms);
        if let Some(t) = threads {
            spec = spec.threads(t);
        }
        if monitored {
            // The ticker forces the chunked drive loop; without one the
            // builder issues a single `run_to_silence`, so a telemetry-only
            // run stays interaction-identical to the plain path below for
            // the same seed.
            spec = spec.ticker(&mut monitor);
        }
        let (result, sim) = spec.run_keeping(&mut rng);
        let sim = sim.expect("clique runs always keep an engine");
        if let Some(rec) = monitor.recorder.as_mut() {
            rec.finish(sim.as_ref());
        }
        histograms = sim.histograms();
        telemetry = Some(*sim.telemetry());
        if lanes > 1 {
            ensemble = Some(EnsembleOutcome::from_simulator(
                sim.as_ref(),
                k,
                config.plurality(),
            ));
        }
        result
    } else {
        let mut spec = RunSpec::new(&config).backend(backend);
        if let Some(t) = threads {
            spec = spec.threads(t);
        }
        spec.run(&mut rng)
    };
    let elapsed = started.elapsed();

    match result.outcome {
        ConsensusOutcome::Winner(w) => println!(
            "stabilized on opinion {} after {} interactions ({:.2} parallel time); plurality won: {}; wall clock {:.2?}",
            w + 1,
            fmt_thousands(result.interactions),
            result.parallel_time(n),
            result.plurality_won(),
            elapsed,
        ),
        ConsensusOutcome::AllUndecided => println!(
            "absorbed in the all-undecided state after {} interactions; wall clock {:.2?}",
            fmt_thousands(result.interactions),
            elapsed,
        ),
        ConsensusOutcome::Frozen => {
            // Lane-summed replica counts are a mixture whenever lanes
            // disagree on the winner, even on a connected topology.
            let why = if ensemble.is_some() {
                "lane mixture -- see the ensemble line"
            } else {
                "disconnected topology"
            };
            println!(
                "froze in a mixed configuration ({why}) after {} interactions; \
                 wall clock {:.2?}",
                fmt_thousands(result.interactions),
                elapsed,
            );
        }
        ConsensusOutcome::Timeout => println!("budget exhausted"),
    }

    if let Some(ens) = &ensemble {
        // The aggregate outcome above classifies the lane-summed counts
        // (a mixture unless every lane agreed); the ensemble line is what
        // the run actually measured — one independent replica per lane.
        let times = ens.stabilization_times();
        let lane_line = if times.is_empty() {
            "no lane stabilized within the budget".to_string()
        } else {
            let s = Summary::of(&times);
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = times.iter().cloned().fold(0.0f64, f64::max);
            format!(
                "T parallel mean {} (min {}, max {})",
                fmt_sig(s.mean() / n as f64, 4),
                fmt_sig(min / n as f64, 4),
                fmt_sig(max / n as f64, 4),
            )
        };
        println!(
            "ensemble: {} lanes, {} stabilized, plurality won {}/{}, {lane_line}",
            ens.len(),
            ens.stabilized_lanes(),
            ens.plurality_wins(),
            ens.len(),
        );
    }

    if let Some(format) = telemetry_format {
        let t = telemetry.unwrap_or_default();
        match format {
            TelemetryFormat::Table => {
                println!("telemetry ({backend}):");
                print!("{}", t.table());
            }
            TelemetryFormat::Json => {
                println!(
                    "{}",
                    run_report_json(
                        backend,
                        n,
                        k,
                        seed,
                        &result,
                        elapsed,
                        histograms.as_ref(),
                        &t
                    )
                );
            }
        }
    }

    if want_histograms && telemetry_format != Some(TelemetryFormat::Json) {
        print_histograms(backend, &histograms.clone().unwrap_or_default());
    }

    if let (Some(path), Some(rec)) = (&timeline_path, &monitor.recorder) {
        std::fs::write(path, rec.to_jsonl())
            .map_err(|e| CliError(format!("writing {path}: {e}")))?;
        println!(
            "timeline: {} samples (cadence {}) -> {path}",
            rec.samples().len(),
            fmt_thousands(rec.cadence()),
        );
    }

    if let Some(c) = &monitor.checkpoint {
        println!(
            "checkpoints: {} written (every {} interactions) -> {}",
            c.written,
            fmt_thousands(c.every),
            c.path.display(),
        );
    }

    if let Some(path) = trace_path {
        let blob = trajectory.encode();
        std::fs::write(&path, &blob).map_err(|e| CliError(format!("writing {path}: {e}")))?;
        println!(
            "trace: {} snapshots, {} bytes -> {path}",
            trajectory.snapshots.len(),
            blob.len()
        );
    }
    Ok(())
}

/// `usd-sim sweep`.
pub fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let n: u64 = flags.get("n")?.unwrap_or(50_000);
    let seeds: u64 = flags.get("seeds")?.unwrap_or(5);
    let seed: u64 = flags.get("seed")?.unwrap_or(42);
    let backend: Backend = flags.get("backend")?.unwrap_or(Backend::SkipAhead);
    if n < 16 {
        return Err(CliError("need --n >= 16".into()));
    }
    if matches!(
        backend,
        Backend::Graph | Backend::BatchGraph | Backend::ParGraph
    ) && n > usd_core::backend::COMPLETE_GRAPH_MAX_N
    {
        return Err(CliError(format!(
            "--backend {backend} sweeps the complete graph; n={n} exceeds the \
             cap of {}",
            usd_core::backend::COMPLETE_GRAPH_MAX_N
        )));
    }

    let max_k = ((n as f64).sqrt() / (n as f64).ln()).floor().max(3.0) as usize;
    let mut t = TextTable::new(&["k", "T parallel", "lower", "T/lower", "upper", "T/upper"]);
    let mut k = 3usize;
    while k <= max_k {
        let config = InitialConfigBuilder::new(n, k).max_admissible_bias();
        let mut times = Vec::new();
        for s in 0..seeds {
            let mut rng = SimRng::new(seed ^ (k as u64) << 32 ^ s);
            let result = RunSpec::new(&config).backend(backend).run(&mut rng);
            times.push(result.parallel_time(n));
        }
        let mean = Summary::of(&times).mean();
        let b = Bounds::new(n, k);
        let lower = b.lower_bound_parallel();
        let upper = b.upper_bound_parallel();
        t.row_owned(vec![
            k.to_string(),
            fmt_sig(mean, 4),
            fmt_sig(lower, 4),
            if lower > 0.0 {
                fmt_sig(mean / lower, 3)
            } else {
                "-".into()
            },
            fmt_sig(upper, 4),
            fmt_sig(mean / upper, 3),
        ]);
        k = (k * 3).div_ceil(2);
    }
    println!(
        "stabilization sweep at n={} ({} seeds/cell, backend {backend})",
        fmt_thousands(n),
        seeds
    );
    print!("{t}");
    Ok(())
}

/// `usd-sim bounds`.
pub fn cmd_bounds(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let n: u64 = flags.get("n")?.unwrap_or(1_000_000);
    let k: usize = flags.get("k")?.unwrap_or_else(|| theory::figure1_k(n));
    let b = Bounds::new(n, k);
    let mut t = TextTable::new(&["quantity", "value"]);
    t.row_owned(vec!["n".into(), fmt_thousands(n)]);
    t.row_owned(vec!["k".into(), k.to_string()]);
    t.row_owned(vec![
        "k admissible (<= sqrt n/ln n)".into(),
        theory::k_is_admissible(n, k).to_string(),
    ]);
    t.row_owned(vec![
        "sqrt(n ln n)".into(),
        fmt_thousands(theory::sqrt_n_log_n(n)),
    ]);
    t.row_owned(vec![
        "max admissible bias".into(),
        fmt_thousands(theory::max_admissible_bias(n, k)),
    ]);
    t.row_owned(vec![
        "lower bound (parallel)".into(),
        fmt_sig(b.lower_bound_parallel(), 5),
    ]);
    t.row_owned(vec![
        "upper bound k ln n (parallel)".into(),
        fmt_sig(b.upper_bound_parallel(), 5),
    ]);
    t.row_owned(vec![
        "undecided plateau n/2-n/4k".into(),
        fmt_sig(usd_core::analysis::undecided_plateau(n, k), 6),
    ]);
    t.row_owned(vec![
        "Lemma 3.1 ceiling".into(),
        fmt_sig(b.undecided_ceiling(), 6),
    ]);
    t.row_owned(vec![
        "Lemma 3.3 time kn/25".into(),
        fmt_sig(b.opinion_growth_time(), 5),
    ]);
    t.row_owned(vec![
        "Lemma 3.4 time kn/24".into(),
        fmt_sig(b.gap_doubling_time(), 5),
    ]);
    print!("{t}");
    Ok(())
}

/// `usd-sim trace`.
pub fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[])?;
    let path = flags
        .positional()
        .first()
        .ok_or_else(|| CliError("trace: need a file path".into()))?;
    let blob = std::fs::read(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    let traj = Trajectory::decode(&blob[..]).map_err(|e| CliError(format!("decoding: {e}")))?;
    println!(
        "trajectory: n={}, k={}, {} snapshots",
        fmt_thousands(traj.n),
        traj.k,
        traj.snapshots.len()
    );
    let mut t = TextTable::new(&["parallel time", "x1", "max gap", "u"]);
    // Print at most 20 evenly spaced snapshots.
    let step = (traj.snapshots.len() / 20).max(1);
    for (i, (ticks, cfg)) in traj.snapshots.iter().enumerate() {
        if i % step != 0 && i != traj.snapshots.len() - 1 {
            continue;
        }
        t.row_owned(vec![
            fmt_sig(*ticks as f64 / traj.n as f64, 4),
            cfg.sorted_desc()[0].to_string(),
            cfg.max_gap().to_string(),
            cfg.u().to_string(),
        ]);
    }
    print!("{t}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_bools_positional() {
        let f = Flags::parse(&s(&["--n", "100", "--max-bias", "file.bin"]), &["max-bias"]).unwrap();
        assert_eq!(f.get::<u64>("n").unwrap(), Some(100));
        assert!(f.has("max-bias"));
        assert_eq!(f.positional(), &["file.bin".to_string()]);
        assert_eq!(f.get::<u64>("missing").unwrap(), None);
    }

    #[test]
    fn flags_report_missing_values() {
        assert!(Flags::parse(&s(&["--n"]), &[]).is_err());
    }

    #[test]
    fn flags_split_inline_equals_values() {
        let f = Flags::parse(&s(&["--n=100", "--telemetry=json"]), &["telemetry"]).unwrap();
        assert_eq!(f.get::<u64>("n").unwrap(), Some(100));
        assert_eq!(f.get_opt("telemetry"), Some(Some("json")));
        let f = Flags::parse(&s(&["--telemetry"]), &["telemetry"]).unwrap();
        assert_eq!(f.get_opt("telemetry"), Some(None));
        assert_eq!(f.get_opt("missing"), None);
    }

    #[test]
    fn run_accepts_telemetry_and_heartbeat_on_every_backend() {
        for b in [
            "agent",
            "count",
            "batch",
            "graph",
            "batchgraph",
            "seq",
            "skip",
        ] {
            cmd_run(&s(&[
                "--n",
                "500",
                "--k",
                "2",
                "--seed",
                "3",
                "--backend",
                b,
                "--telemetry=json",
            ]))
            .unwrap_or_else(|e| panic!("backend {b}: {}", e.0));
        }
        // Table form (bare and explicit), topology runs, a heartbeat run,
        // and the trace path all accept the report flags.
        cmd_run(&s(&["--n", "500", "--k", "2", "--telemetry"])).unwrap();
        cmd_run(&s(&["--n", "500", "--k", "2", "--telemetry=table"])).unwrap();
        cmd_run(&s(&[
            "--n",
            "256",
            "--k",
            "2",
            "--topology",
            "torus",
            "--telemetry=json",
        ]))
        .unwrap();
        cmd_run(&s(&[
            "--n",
            "256",
            "--k",
            "2",
            "--topology",
            "cycle",
            "--backend",
            "agent",
            "--telemetry",
        ]))
        .unwrap();
        cmd_run(&s(&["--n", "500", "--k", "2", "--progress-every", "1000"])).unwrap();
    }

    #[test]
    fn run_rejects_bad_telemetry_and_heartbeat_values() {
        assert!(cmd_run(&s(&["--n", "500", "--telemetry=yaml"])).is_err());
        assert!(cmd_run(&s(&["--n", "500", "--progress-every", "0"])).is_err());
        assert!(cmd_run(&s(&["--n", "500", "--progress-every", "-2"])).is_err());
    }

    #[test]
    fn flags_report_bad_parse() {
        let f = Flags::parse(&s(&["--n", "abc"]), &[]).unwrap();
        assert!(f.get::<u64>("n").is_err());
    }

    #[test]
    fn run_and_trace_roundtrip_through_a_file() {
        let dir = std::env::temp_dir().join("usd_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.usdt");
        let path_str = path.to_str().unwrap().to_string();

        cmd_run(&s(&[
            "--n", "2000", "--k", "3", "--seed", "5", "--trace", &path_str,
        ]))
        .unwrap();
        cmd_trace(&s(&[&path_str])).unwrap();
        // And the file decodes through the library too.
        let blob = std::fs::read(&path).unwrap();
        let traj = Trajectory::decode(&blob[..]).unwrap();
        assert_eq!(traj.n, 2000);
        assert_eq!(traj.k, 3);
        assert!(traj.snapshots.len() >= 2);
        // Final snapshot is silent (consensus or all-undecided).
        let (_, last) = traj.snapshots.last().unwrap();
        assert!(last.is_silent());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bounds_command_runs() {
        cmd_bounds(&s(&["--n", "100000", "--k", "8"])).unwrap();
    }

    #[test]
    fn run_accepts_topologies() {
        for t in ["cycle", "torus", "hypercube", "regular:4", "er:6"] {
            cmd_run(&s(&[
                "--n",
                "256",
                "--k",
                "2",
                "--seed",
                "3",
                "--topology",
                t,
            ]))
            .unwrap_or_else(|e| panic!("topology {t}: {}", e.0));
        }
        // Agent backend and --degree also work on topologies.
        cmd_run(&s(&[
            "--n",
            "100",
            "--k",
            "2",
            "--topology",
            "regular",
            "--degree",
            "6",
            "--backend",
            "agent",
        ]))
        .unwrap();
    }

    #[test]
    fn run_rejects_bad_topology_combinations() {
        // Clique-only backend on a topology.
        assert!(cmd_run(&s(&[
            "--n",
            "256",
            "--topology",
            "cycle",
            "--backend",
            "batch"
        ]))
        .is_err());
        // Trace needs the clique.
        assert!(cmd_run(&s(&[
            "--n",
            "256",
            "--topology",
            "cycle",
            "--trace",
            "/tmp/x.usdt"
        ]))
        .is_err());
        // --degree without --topology.
        assert!(cmd_run(&s(&["--n", "256", "--degree", "8"])).is_err());
        // Unknown family.
        assert!(cmd_run(&s(&["--n", "256", "--topology", "moebius"])).is_err());
    }

    #[test]
    fn run_accepts_every_backend() {
        for b in ["agent", "count", "batch", "graph", "seq", "skip"] {
            cmd_run(&s(&[
                "--n",
                "500",
                "--k",
                "2",
                "--seed",
                "3",
                "--backend",
                b,
            ]))
            .unwrap_or_else(|e| panic!("backend {b}: {}", e.0));
        }
    }

    #[test]
    fn run_rejects_unknown_backend_and_trace_combination() {
        assert!(cmd_run(&s(&["--n", "500", "--backend", "warp"])).is_err());
        assert!(cmd_run(&s(&[
            "--n",
            "500",
            "--backend",
            "batch",
            "--trace",
            "/tmp/x.usdt"
        ]))
        .is_err());
    }

    #[test]
    fn sweep_command_runs_small() {
        cmd_sweep(&s(&["--n", "2000", "--seeds", "1"])).unwrap();
    }

    #[test]
    fn run_rejects_bad_instance() {
        assert!(cmd_run(&s(&["--n", "1"])).is_err());
        assert!(cmd_run(&s(&["--n", "10", "--k", "11"])).is_err());
        // Default figure1 bias does not fit tiny populations: clean error,
        // not a panic.
        assert!(cmd_run(&s(&["--n", "2", "--k", "2"])).is_err());
        assert!(cmd_run(&s(&["--n", "10", "--k", "2", "--bias", "9"])).is_err());
    }

    #[test]
    fn trace_rejects_missing_file() {
        assert!(cmd_trace(&s(&["/nonexistent/file.usdt"])).is_err());
        assert!(cmd_trace(&s(&[])).is_err());
    }
}
