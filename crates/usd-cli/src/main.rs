//! `usd-sim` — command-line front end for the plurality-consensus
//! workspace.
//!
//! ```text
//! usd-sim run    --n 100000 --k 8 [--bias B|--max-bias] [--seed S] [--trace out.usdt]
//! usd-sim sweep  --n 100000 [--seeds 5] [--seed S]
//! usd-sim bounds --n 100000 --k 8
//! usd-sim trace  <file.usdt>           # inspect a recorded trajectory
//! usd-sim help
//! ```

mod commands;

use commands::{cmd_bounds, cmd_run, cmd_sweep, cmd_trace, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(CliError(format!(
            "unknown command '{other}'\n{}",
            commands::USAGE
        ))),
    };
    if let Err(CliError(msg)) = result {
        eprintln!("usd-sim: {msg}");
        std::process::exit(2);
    }
}
