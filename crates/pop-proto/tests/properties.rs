//! Property-based tests for the population-protocol substrate.
//!
//! The central property: for any protocol (here: arbitrary random transition
//! tables) and any initial configuration, both simulators conserve the
//! population and agree with each other on reachable support, and the
//! Fenwick sampler agrees with a linear scan on arbitrary weight vectors.

use pop_proto::{AgentSimulator, CliqueScheduler, CountConfig, CountSimulator, Protocol};
use proptest::prelude::*;
use sim_stats::rng::SimRng;

/// A protocol defined by an arbitrary transition table over `m` states —
/// proptest generates the table, giving us "for all protocols" coverage.
#[derive(Debug, Clone)]
struct TableProtocol {
    m: usize,
    /// table[a * m + b] = (a', b')
    table: Vec<(usize, usize)>,
}

impl Protocol for TableProtocol {
    type State = usize;
    type Output = usize;

    fn num_states(&self) -> usize {
        self.m
    }
    fn index_of(&self, s: usize) -> usize {
        s
    }
    fn state_of(&self, i: usize) -> usize {
        assert!(i < self.m);
        i
    }
    fn transition(&self, a: usize, b: usize) -> (usize, usize) {
        self.table[a * self.m + b]
    }
    fn output(&self, s: usize) -> usize {
        s
    }
}

fn table_protocol(m: usize) -> impl Strategy<Value = TableProtocol> {
    proptest::collection::vec((0..m, 0..m), m * m).prop_map(move |table| TableProtocol { m, table })
}

fn config_counts(m: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..30, m)
        .prop_filter("need n >= 2", |c| c.iter().sum::<u64>() >= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both simulators conserve the population under any protocol.
    #[test]
    fn simulators_conserve_population(
        (proto, counts) in (2usize..5).prop_flat_map(|m| (table_protocol(m), config_counts(m))),
        seed in any::<u64>(),
    ) {
        let n: u64 = counts.iter().sum();
        let cfg = CountConfig::from_counts(counts);

        let mut count_sim = CountSimulator::new(proto.clone(), &cfg);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            count_sim.step(&mut rng);
            prop_assert_eq!(count_sim.counts().iter().sum::<u64>(), n);
        }

        let mut agent_sim = AgentSimulator::from_config(
            proto,
            CliqueScheduler::new(n as usize),
            &cfg,
        );
        let mut rng2 = SimRng::new(seed ^ 0xABCD);
        for _ in 0..200 {
            agent_sim.step(&mut rng2);
            prop_assert_eq!(agent_sim.counts().iter().sum::<u64>(), n);
        }
        // Derived counts always match the per-agent ground truth.
        let mut derived = vec![0u64; agent_sim.protocol().num_states()];
        for &s in agent_sim.states() {
            derived[s] += 1;
        }
        prop_assert_eq!(derived.as_slice(), agent_sim.counts());
    }

    /// A silent configuration stays fixed forever in both simulators.
    #[test]
    fn silent_configurations_are_fixed_points(
        (proto, counts) in (2usize..5).prop_flat_map(|m| (table_protocol(m), config_counts(m))),
        seed in any::<u64>(),
    ) {
        let cfg = CountConfig::from_counts(counts);
        if !proto.is_silent(cfg.counts()) {
            return Ok(());
        }
        let before = cfg.counts().to_vec();
        let mut sim = CountSimulator::new(proto, &cfg);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let changed = sim.step(&mut rng);
            prop_assert!(!changed);
        }
        prop_assert_eq!(sim.counts(), before.as_slice());
        prop_assert_eq!(sim.effective_interactions(), 0);
    }

    /// Fenwick `find` agrees with a linear prefix-sum scan on any weights.
    #[test]
    fn fenwick_find_matches_linear(
        weights in proptest::collection::vec(0u64..100, 1..40),
    ) {
        use pop_proto::FenwickSampler;
        let total: u64 = weights.iter().sum();
        prop_assume!(total > 0);
        let f = FenwickSampler::new(&weights);
        // Check every boundary target plus interior points.
        let mut acc = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            if w == 0 { continue; }
            prop_assert_eq!(f.find(acc), i, "first target of category {}", i);
            prop_assert_eq!(f.find(acc + w - 1), i, "last target of category {}", i);
            acc += w;
        }
    }

    /// Fenwick updates keep totals and `find` consistent.
    #[test]
    fn fenwick_updates_consistent(
        weights in proptest::collection::vec(1u64..50, 2..20),
        updates in proptest::collection::vec((0usize..20, 0u64..60), 1..30),
    ) {
        use pop_proto::FenwickSampler;
        let mut f = FenwickSampler::new(&weights);
        let mut reference = weights.clone();
        for (i, w) in updates {
            let i = i % reference.len();
            f.set(i, w);
            reference[i] = w;
        }
        prop_assert_eq!(f.total(), reference.iter().sum::<u64>());
        prop_assert_eq!(f.weights(), reference.as_slice());
        if f.total() > 0 {
            let mut acc = 0u64;
            for (i, &w) in reference.iter().enumerate() {
                if w == 0 { continue; }
                prop_assert_eq!(f.find(acc), i);
                acc += w;
            }
        }
    }

    /// The output tally of a configuration partitions the population.
    #[test]
    fn output_tally_partitions(
        (proto, counts) in (2usize..5).prop_flat_map(|m| (table_protocol(m), config_counts(m))),
    ) {
        let cfg = CountConfig::from_counts(counts);
        let tally = cfg.output_tally(&proto);
        let total: u64 = tally.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, cfg.n());
    }

    /// Every topology family builds a simple graph with the promised
    /// degree structure: no self-loops, no multi-edges, handshake identity
    /// (Σ deg = 2m), exact degrees for the structured families and the
    /// configuration model, and deterministic seeded construction.
    #[test]
    fn topology_families_build_simple_graphs(
        n in 8usize..120,
        d in 2usize..6,
        seed in any::<u64>(),
    ) {
        use pop_proto::TopologyFamily;
        use std::collections::HashSet;
        let families = [
            TopologyFamily::Complete,
            TopologyFamily::Cycle,
            TopologyFamily::Torus,
            TopologyFamily::Hypercube,
            TopologyFamily::Regular { d },
            TopologyFamily::ErdosRenyi { avg_degree: d as f64 },
        ];
        for fam in families {
            let n = fam.snap_n(n);
            let g = fam.build(n, seed);
            prop_assert_eq!(g.n(), n, "{} changed n", fam);

            // Simplicity: no self-loops, no multi-edges.
            let mut seen = HashSet::new();
            for &(a, b) in g.edges() {
                prop_assert_ne!(a, b, "{}: self-loop", fam);
                let key = ((a.min(b) as u64) << 32) | a.max(b) as u64;
                prop_assert!(seen.insert(key), "{}: duplicate edge ({},{})", fam, a, b);
            }

            // Handshake: Σ deg = 2m.
            let degrees = g.degrees();
            prop_assert_eq!(
                degrees.iter().sum::<usize>(),
                2 * g.num_edges(),
                "{}: handshake sum broken", fam
            );

            // Exact degree sequences where the family promises one.
            match fam {
                TopologyFamily::Complete =>
                    prop_assert!(degrees.iter().all(|&x| x == n - 1)),
                TopologyFamily::Cycle =>
                    prop_assert!(degrees.iter().all(|&x| x == 2)),
                TopologyFamily::Torus =>
                    prop_assert!(degrees.iter().all(|&x| x == 4)),
                TopologyFamily::Hypercube => {
                    let dim = n.trailing_zeros() as usize;
                    prop_assert!(degrees.iter().all(|&x| x == dim));
                }
                TopologyFamily::Regular { d } =>
                    prop_assert!(degrees.iter().all(|&x| x == d), "{}: not {}-regular", fam, d),
                TopologyFamily::ErdosRenyi { .. } => {}
            }

            // Seeded determinism.
            prop_assert_eq!(g, fam.build(n, seed), "{} not deterministic", fam);
        }
    }

    /// The graphwise engine conserves the population and keeps its silence
    /// flag consistent under arbitrary protocols on arbitrary sparse
    /// random graphs (both the dense stepping and, via tiny populations
    /// with frozen stretches, the sparse escalation path).
    #[test]
    fn graphwise_conserves_population_on_random_graphs(
        (proto, counts) in (2usize..5).prop_flat_map(|m| (table_protocol(m), config_counts(m))),
        seed in any::<u64>(),
    ) {
        use pop_proto::{GraphSimulator, TopologyFamily};
        let n: u64 = counts.iter().sum();
        let cfg = CountConfig::from_counts(counts);
        let fam = TopologyFamily::Cycle;
        let graph = fam.build(fam.snap_n(n as usize), 1);
        prop_assume!(graph.n() as u64 == n);
        let mut rng = SimRng::new(seed);
        let mut sim = GraphSimulator::from_config_shuffled(proto, &graph, &cfg, &mut rng);
        for _ in 0..100 {
            let before = sim.interactions();
            let (advanced, _) = sim.advance_changed(&mut rng, 50);
            // The clock only stalls once silence is certified (advance
            // returns 0 and the silence flag is exact from then on).
            if advanced == 0 {
                prop_assert!(sim.is_silent());
                prop_assert_eq!(sim.interactions(), before);
            } else {
                prop_assert!(sim.interactions() > before);
            }
            prop_assert_eq!(sim.counts().iter().sum::<u64>(), n);
        }
        // active_weight and is_silent agree (sparse phase is exact; the
        // dense count criterion may under-report silence but never
        // over-report it).
        if sim.is_silent() {
            prop_assert_eq!(sim.active_weight(), 0);
        }
    }
}

/// Deterministic cross-simulator distributional check for the epidemic
/// protocol: mean completion interactions of the two simulators agree
/// within noise. (Exact per-step equality is not expected — they consume
/// randomness differently — but the induced chain is identical.)
#[test]
fn agentwise_and_countwise_epidemic_distributions_agree() {
    use pop_proto::OneWayEpidemic;
    let n = 100u64;
    let reps = 200;
    let mut agent_mean = 0.0;
    let mut count_mean = 0.0;
    for seed in 0..reps {
        let cfg = CountConfig::from_counts(vec![1, n - 1]);
        let mut a =
            AgentSimulator::from_config(OneWayEpidemic, CliqueScheduler::new(n as usize), &cfg);
        let mut rng = SimRng::new(seed);
        a.run(&mut rng, 10_000_000, |s| s.counts()[1] == 0);
        agent_mean += a.interactions() as f64;

        let mut c = CountSimulator::new(OneWayEpidemic, &cfg);
        let mut rng = SimRng::new(seed + 10_000);
        c.run(&mut rng, 10_000_000, |s| s.counts()[1] == 0);
        count_mean += c.interactions() as f64;
    }
    agent_mean /= reps as f64;
    count_mean /= reps as f64;
    let rel = (agent_mean - count_mean).abs() / agent_mean;
    assert!(
        rel < 0.08,
        "distribution mismatch: agent {agent_mean} vs count {count_mean} (rel {rel})"
    );
}
