//! Time-unit conversions.
//!
//! The population-protocol literature (and the paper throughout) reports
//! **parallel time** = interactions / n, so that one unit corresponds to
//! each agent participating in Θ(1) interactions in expectation. These
//! helpers keep the conversion explicit at call sites.

/// Parallel time corresponding to `interactions` in a population of `n`.
#[inline]
pub fn parallel_time(interactions: u64, n: u64) -> f64 {
    assert!(n > 0, "population must be positive");
    interactions as f64 / n as f64
}

/// Number of interactions corresponding to `parallel` units of parallel
/// time in a population of `n` (rounded to nearest).
#[inline]
pub fn interactions_for_parallel_time(parallel: f64, n: u64) -> u64 {
    assert!(parallel >= 0.0, "parallel time must be non-negative");
    (parallel * n as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(parallel_time(5_000, 1_000), 5.0);
        assert_eq!(interactions_for_parallel_time(5.0, 1_000), 5_000);
        assert_eq!(interactions_for_parallel_time(2.5, 10), 25);
    }

    #[test]
    fn fractional_interactions_round() {
        assert_eq!(interactions_for_parallel_time(0.33, 10), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_population_rejected() {
        parallel_time(1, 0);
    }
}
