//! Flight recorder: time-resolved telemetry and per-event histograms.
//!
//! A cumulative [`EngineTelemetry`] snapshot shows
//! *what* an engine did over a whole run but not *when* — exactly the
//! dense→sparse hysteresis transitions, frontier collapse, and endgame
//! behavior the parallel-time framing is about. This module adds the two
//! missing time-resolved views:
//!
//! * [`TimelineRecorder`] — samples telemetry **deltas** at a deterministic
//!   scheduled-clock cadence (never wall clock, so a timeline is
//!   bit-reproducible under a fixed seed), each sample tagged with the
//!   engine phase and the window's rates. Renders as schema-stable JSONL
//!   (the `usd-sim run --timeline` surface) or as a
//!   [`TimeSeries`] for plotting.
//! * [`EventHistograms`] — log-bucketed distributions of per-event engine
//!   quantities (geometric skip lengths, sparse block totals, sidecar
//!   flush sizes and occupancy, dense block sizes, literal-fallback runs),
//!   harvested at the engines' existing telemetry increment sites and
//!   summarized by p50/p90/p99 quantiles. Recording is opt-in
//!   ([`Simulator::set_histograms`]);
//!   with it off the harvest sites cost one branch on a `None`.
//!
//! The histograms double as correctness checks: at constant active weight
//! the skipper's skip lengths are geometric and its per-block scheduled
//! totals negative-binomial, and the KS tests in `simulator::sparse` pin
//! the recorded distributions against those closed forms.
//!
//! # Sampling cadence
//!
//! The recorder does not drive the simulation; drivers call
//! [`TimelineRecorder::record_if_due`] at their advancement boundaries and
//! may bound each advancement with [`TimelineRecorder::horizon`] so
//! samples land exactly on the cadence marks. The default cadence
//! ([`TimelineRecorder::default_cadence`]) is `max(n, 65 536)` scheduled
//! interactions — one sample per parallel-time unit, floored so tiny
//! populations do not sample per-interaction — which keeps recorder
//! overhead within the ≤ 2% acceptance envelope on the pinned grid.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::simulator::Simulator;
use crate::telemetry::EngineTelemetry;
use sim_stats::histogram::LogHistogram;
use sim_stats::timeseries::{Series, TimeSeries};
use std::fmt::Write as _;

/// Logarithmic base of every event histogram (powers of two).
pub const EVENT_HISTOGRAM_BASE: f64 = 2.0;
/// Scale of every event histogram (bin `i` covers `[2^i, 2^{i+1})`).
pub const EVENT_HISTOGRAM_SCALE: f64 = 1.0;
/// Bin count: 48 power-of-two bins cover every u64 quantity the engines
/// record (values past `2^47` clamp into the last bin).
pub const EVENT_HISTOGRAM_BINS: usize = 48;

fn event_histogram() -> LogHistogram {
    LogHistogram::new(
        EVENT_HISTOGRAM_BASE,
        EVENT_HISTOGRAM_SCALE,
        EVENT_HISTOGRAM_BINS,
    )
}

/// Log-bucketed distributions of per-event engine quantities, one
/// histogram per quantity. All histograms share the power-of-two binning
/// (`EVENT_HISTOGRAM_*`), so instances merge freely — the graph engines
/// merge the sparse skipper's histograms into their own at phase
/// boundaries, and [`Simulator::histograms`]
/// returns the merged view.
///
/// Which fields are live mirrors the telemetry counter availability: a
/// per-event engine records only `skip_len` (its no-op run lengths), the
/// clique batch engine adds `block_size`/`fallback_run`, and the graph
/// engines add the sparse sidecar fields. An empty histogram means "not
/// applicable", never "measured empty".
#[derive(Debug, Clone, PartialEq)]
pub struct EventHistograms {
    /// No-op run lengths before an effective interaction: the geometric
    /// skip lengths drawn by the leaping engines (`skip`, `batch`, the
    /// sparse skipper), or the literally-counted no-op runs of the
    /// per-event engines. At constant active weight this is geometric —
    /// KS-pinned in `simulator::sparse`.
    pub skip_len: LogHistogram,
    /// Sparse-phase per-block scheduled totals (no-ops skipped + events
    /// over one `FLUSH_EVENTS` block). Negative-binomial at constant
    /// weight — KS-pinned in `simulator::sparse`.
    pub block_total: LogHistogram,
    /// Dense block sizes: clean applications per batch/matching block.
    pub block_size: LogHistogram,
    /// Sidecar flush sizes: divergent entries applied to the Fenwick tree
    /// per flush.
    pub flush_size: LogHistogram,
    /// Sidecar occupancy at flush time: entries pending (applied or
    /// cancelled) when the flush ran.
    pub flush_occupancy: LogHistogram,
    /// Literal-fallback run lengths: fallback applications per dense
    /// block (dirty-endpoint re-reads, batch collisions).
    pub fallback_run: LogHistogram,
}

impl EventHistograms {
    /// Empty histograms with the shared power-of-two binning.
    pub fn new() -> Self {
        EventHistograms {
            skip_len: event_histogram(),
            block_total: event_histogram(),
            block_size: event_histogram(),
            flush_size: event_histogram(),
            flush_occupancy: event_histogram(),
            fallback_run: event_histogram(),
        }
    }

    /// The fields in schema order, with their JSON names.
    pub fn fields(&self) -> [(&'static str, &LogHistogram); 6] {
        [
            ("skip_len", &self.skip_len),
            ("block_total", &self.block_total),
            ("block_size", &self.block_size),
            ("flush_size", &self.flush_size),
            ("flush_occupancy", &self.flush_occupancy),
            ("fallback_run", &self.fallback_run),
        ]
    }

    /// Merge another instance's counts into this one (same binning by
    /// construction).
    pub fn merge(&mut self, other: &EventHistograms) {
        self.skip_len.merge(&other.skip_len);
        self.block_total.merge(&other.block_total);
        self.block_size.merge(&other.block_size);
        self.flush_size.merge(&other.flush_size);
        self.flush_occupancy.merge(&other.flush_occupancy);
        self.fallback_run.merge(&other.fallback_run);
    }

    /// Total observations across all fields (0 iff nothing was recorded).
    pub fn total(&self) -> u64 {
        self.fields().iter().map(|(_, h)| h.total()).sum()
    }

    /// Serialize every histogram's bucket counts into a checkpoint body
    /// (schema field order; binning parameters are implied by the shared
    /// `EVENT_HISTOGRAM_*` constants and validated on read).
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        for (_, h) in self.fields() {
            w.put_u64_slice(h.counts());
            w.put_u64(h.non_positive());
        }
    }

    /// Deserialize histograms written by
    /// [`EventHistograms::write_snapshot`], rejecting bucket vectors that
    /// do not match the shared binning.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<EventHistograms, CheckpointError> {
        let mut out = EventHistograms::new();
        let names: [&'static str; 6] = out.fields().map(|(name, _)| name);
        for name in names {
            let bins = r.get_u64_vec()?;
            let non_positive = r.get_u64()?;
            if bins.len() != EVENT_HISTOGRAM_BINS {
                return Err(CheckpointError::Corrupt(format!(
                    "histogram {name}: {} bins (expected {EVENT_HISTOGRAM_BINS})",
                    bins.len()
                )));
            }
            let h = LogHistogram::from_parts(
                EVENT_HISTOGRAM_BASE,
                EVENT_HISTOGRAM_SCALE,
                bins,
                non_positive,
            )
            .ok_or_else(|| CheckpointError::Corrupt(format!("histogram {name}: invalid parts")))?;
            match name {
                "skip_len" => out.skip_len = h,
                "block_total" => out.block_total = h,
                "block_size" => out.block_size = h,
                "flush_size" => out.flush_size = h,
                "flush_occupancy" => out.flush_occupancy = h,
                _ => out.fallback_run = h,
            }
        }
        Ok(out)
    }

    /// Schema-stable JSON object: every field in [`EventHistograms::fields`]
    /// order as `{"p50":…,"p90":…,"p99":…,"n":…}`. Quantiles are bin
    /// lower edges (exact powers of two), so they print as integers and
    /// diff cleanly across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, h)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"n\":{}}}",
                h.p50(),
                h.p90(),
                h.p99(),
                h.total()
            );
        }
        out.push('}');
        out
    }
}

impl Default for EventHistograms {
    fn default() -> Self {
        EventHistograms::new()
    }
}

/// The phase tag of a telemetry snapshot: `"sparse"` while the engine
/// holds a live sparse skipper (strictly more phase entries than exits),
/// `"dense"` otherwise — which is also correct for engines without phases.
pub fn phase_tag(t: &EngineTelemetry) -> &'static str {
    if t.sparse_enters > t.sparse_exits {
        "sparse"
    } else {
        "dense"
    }
}

/// One flight-recorder sample: the cumulative clocks at the sample point,
/// the engine phase, and the telemetry **delta** since the previous
/// sample (rates computed on the delta describe the window).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// Zero-based sample index.
    pub index: u64,
    /// Cumulative scheduled interactions at the sample point.
    pub scheduled: u64,
    /// Cumulative effective interactions at the sample point.
    pub effective: u64,
    /// Engine phase at the sample point (`"dense"` / `"sparse"`).
    pub phase: &'static str,
    /// Counter deltas over the window since the previous sample.
    pub delta: EngineTelemetry,
}

impl TimelineSample {
    /// One schema-stable JSONL record (fixed key order: cumulative
    /// clocks, phase, windowed counter deltas, then the window's rates).
    pub fn to_json(&self) -> String {
        let d = &self.delta;
        format!(
            "{{\"sample\":{},\"scheduled\":{},\"effective\":{},\
             \"phase\":\"{}\",\"d_scheduled\":{},\"d_effective\":{},\
             \"d_dense_steps\":{},\"d_blocks\":{},\"d_block_applied\":{},\
             \"d_fallback_literal\":{},\"d_sparse_enters\":{},\
             \"d_sparse_exits\":{},\"d_sparse_events\":{},\
             \"d_sparse_flushes\":{},\
             \"rates\":{{\"effective_fraction\":{:.6},\"cancel_rate\":{:.6},\
             \"fallback_rate\":{:.6}}}}}",
            self.index,
            self.scheduled,
            self.effective,
            self.phase,
            d.scheduled,
            d.effective,
            d.dense_steps,
            d.blocks,
            d.block_applied,
            d.fallback_literal,
            d.sparse_enters,
            d.sparse_exits,
            d.sparse.events,
            d.sparse.flushes,
            d.effective_fraction(),
            d.cancel_rate(),
            d.fallback_rate(),
        )
    }
}

/// Samples [`EngineTelemetry`] deltas at a fixed scheduled-clock cadence.
///
/// The recorder is passive: a driver calls
/// [`record_if_due`](TimelineRecorder::record_if_due) at each advancement
/// boundary (and [`finish`](TimelineRecorder::finish) at run end), and may
/// bound its advancements with [`horizon`](TimelineRecorder::horizon) so
/// the scheduled clock lands exactly on the cadence marks. Because the
/// cadence is measured on the simulation's own clock, two runs with the
/// same seed and driver produce byte-identical timelines.
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    cadence: u64,
    next_mark: u64,
    last: EngineTelemetry,
    samples: Vec<TimelineSample>,
}

impl TimelineRecorder {
    /// A recorder sampling every `cadence` scheduled interactions
    /// (`cadence > 0`).
    pub fn new(cadence: u64) -> Self {
        assert!(cadence > 0, "timeline cadence must be positive");
        TimelineRecorder {
            cadence,
            next_mark: cadence,
            last: EngineTelemetry::new(),
            samples: Vec::new(),
        }
    }

    /// The default cadence for a population of `n`: one sample per
    /// parallel-time unit, floored at 65 536 scheduled interactions so
    /// small populations do not sample per-interaction.
    pub fn default_cadence(n: u64) -> u64 {
        n.max(65_536)
    }

    /// A recorder at the default cadence for population `n`.
    pub fn with_default_cadence(n: u64) -> Self {
        Self::new(Self::default_cadence(n))
    }

    /// The sampling cadence (scheduled interactions per sample).
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Interactions remaining until the next cadence mark, given the
    /// current scheduled clock — the advancement bound that makes samples
    /// land exactly on marks. Never 0 (a clock sitting on a mark is due
    /// for sampling, after which the mark moves).
    pub fn horizon(&self, scheduled: u64) -> u64 {
        self.next_mark.saturating_sub(scheduled).max(1)
    }

    /// Take a sample if the scheduled clock has reached the next cadence
    /// mark; returns whether one was taken. When a driver overshoots
    /// several marks in one advancement, one sample summarizes the whole
    /// window (the delta absorbs it) and the mark realigns to the grid.
    pub fn record_if_due(&mut self, sim: &dyn Simulator) -> bool {
        if sim.telemetry().scheduled < self.next_mark {
            return false;
        }
        self.sample_now(sim);
        true
    }

    /// Take a sample unconditionally and realign the next mark to the
    /// cadence grid past the current clock.
    pub fn sample_now(&mut self, sim: &dyn Simulator) {
        let t = *sim.telemetry();
        let delta = t.delta(&self.last);
        self.samples.push(TimelineSample {
            index: self.samples.len() as u64,
            scheduled: t.scheduled,
            effective: t.effective,
            phase: phase_tag(&t),
            delta,
        });
        self.last = t;
        self.next_mark = (t.scheduled / self.cadence + 1) * self.cadence;
    }

    /// Record the final partial window (if the clock advanced past the
    /// last sample). Call once at run end so the sample deltas always sum
    /// to the engine's cumulative counters.
    pub fn finish(&mut self, sim: &dyn Simulator) {
        if *sim.telemetry() != self.last {
            self.sample_now(sim);
        }
    }

    /// The samples taken so far.
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// The next cadence mark (absolute scheduled clock) a sample is due at.
    pub fn next_mark(&self) -> u64 {
        self.next_mark
    }

    /// Serialize the full recorder state — cadence, mark, last-sampled
    /// telemetry, and every sample taken so far — into a checkpoint body.
    /// A restored recorder continues producing byte-identical JSONL.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cadence);
        w.put_u64(self.next_mark);
        self.last.write_snapshot(w);
        w.put_u64(self.samples.len() as u64);
        for s in &self.samples {
            w.put_u64(s.index);
            w.put_u64(s.scheduled);
            w.put_u64(s.effective);
            w.put_u8((s.phase == "sparse") as u8);
            s.delta.write_snapshot(w);
        }
    }

    /// Deserialize a recorder written by
    /// [`TimelineRecorder::write_snapshot`].
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<TimelineRecorder, CheckpointError> {
        let cadence = r.get_u64()?;
        if cadence == 0 {
            return Err(CheckpointError::Corrupt("timeline cadence is 0".into()));
        }
        let next_mark = r.get_u64()?;
        let last = EngineTelemetry::read_snapshot(r)?;
        let count = r.get_u64()?;
        let mut samples = Vec::new();
        for i in 0..count {
            let index = r.get_u64()?;
            if index != i {
                return Err(CheckpointError::Corrupt(format!(
                    "timeline sample index {index} at position {i}"
                )));
            }
            let scheduled = r.get_u64()?;
            let effective = r.get_u64()?;
            let phase = match r.get_u8()? {
                0 => "dense",
                1 => "sparse",
                b => {
                    return Err(CheckpointError::Corrupt(format!(
                        "timeline sample phase byte {b}"
                    )))
                }
            };
            let delta = EngineTelemetry::read_snapshot(r)?;
            samples.push(TimelineSample {
                index,
                scheduled,
                effective,
                phase,
                delta,
            });
        }
        Ok(TimelineRecorder {
            cadence,
            next_mark,
            last,
            samples,
        })
    }

    /// The cumulative telemetry at the last sample point.
    pub fn last_sampled(&self) -> &EngineTelemetry {
        &self.last
    }

    /// Render as JSONL: one schema-stable record per sample, each on its
    /// own line (see [`TimelineSample::to_json`]), trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Convert to a [`TimeSeries`] over parallel time (`scheduled / n`):
    /// windowed effective fraction, cancel rate, fallback rate, and the
    /// phase as 0 (dense) / 1 (sparse) — the plot-ready view of the run's
    /// regime structure.
    pub fn to_timeseries(&self, n: u64) -> TimeSeries {
        assert!(n > 0, "population must be positive");
        let time: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.scheduled as f64 / n as f64)
            .collect();
        let mut ts = TimeSeries::with_time(time);
        let pull = |f: &dyn Fn(&TimelineSample) -> f64| -> Vec<f64> {
            self.samples.iter().map(f).collect()
        };
        ts.push_series(Series::new(
            "effective_fraction",
            pull(&|s| s.delta.effective_fraction()),
        ));
        ts.push_series(Series::new("cancel_rate", pull(&|s| s.delta.cancel_rate())));
        ts.push_series(Series::new(
            "fallback_rate",
            pull(&|s| s.delta.fallback_rate()),
        ));
        ts.push_series(Series::new(
            "sparse_phase",
            pull(&|s| (s.phase == "sparse") as u64 as f64),
        ));
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;
    use crate::simulator::GraphSimulator;
    use crate::Graph;
    use sim_stats::rng::SimRng;

    fn frontier_sim(n: usize) -> GraphSimulator<OneWayEpidemic> {
        let g = Graph::cycle(n);
        let mut states = vec![1usize; n];
        states[0] = 0;
        GraphSimulator::new(OneWayEpidemic, &g, states)
    }

    /// Drive a run with the recorder, bounding each advancement with the
    /// recorder's horizon so samples land on marks.
    fn record_run(n: usize, cadence: u64, seed: u64) -> (TimelineRecorder, EngineTelemetry) {
        let mut sim = frontier_sim(n);
        let mut rec = TimelineRecorder::new(cadence);
        let mut rng = SimRng::new(seed);
        while !Simulator::is_silent(&sim) {
            let horizon = rec.horizon(Simulator::interactions(&sim));
            Simulator::advance(&mut sim, &mut rng, horizon);
            rec.record_if_due(&sim);
        }
        rec.finish(&sim);
        let t = *Simulator::telemetry(&sim);
        (rec, t)
    }

    #[test]
    fn deltas_sum_to_cumulative_counters() {
        let (rec, t) = record_run(512, 1_000, 3);
        let sum_sched: u64 = rec.samples().iter().map(|s| s.delta.scheduled).sum();
        let sum_eff: u64 = rec.samples().iter().map(|s| s.delta.effective).sum();
        let sum_sparse: u64 = rec.samples().iter().map(|s| s.delta.sparse.events).sum();
        assert_eq!(sum_sched, t.scheduled);
        assert_eq!(sum_eff, t.effective);
        assert_eq!(sum_sparse, t.sparse.events);
        let last = rec.samples().last().expect("nonempty timeline");
        assert_eq!(last.scheduled, t.scheduled);
        assert_eq!(last.effective, t.effective);
    }

    #[test]
    fn samples_land_on_cadence_marks() {
        let (rec, _) = record_run(512, 1_000, 4);
        assert!(rec.samples().len() > 2, "run too short to sample");
        // Every sample except the final partial one sits on a mark.
        for s in &rec.samples()[..rec.samples().len() - 1] {
            assert_eq!(
                s.scheduled % 1_000,
                0,
                "sample {} off the cadence grid at {}",
                s.index,
                s.scheduled
            );
        }
        // Indices are dense.
        for (i, s) in rec.samples().iter().enumerate() {
            assert_eq!(s.index, i as u64);
        }
    }

    #[test]
    fn timelines_are_bit_reproducible() {
        let (a, _) = record_run(512, 1_000, 7);
        let (b, _) = record_run(512, 1_000, 7);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        let (c, _) = record_run(512, 1_000, 8);
        assert_ne!(a.to_jsonl(), c.to_jsonl(), "seed must matter");
    }

    #[test]
    fn jsonl_records_are_schema_stable() {
        let (rec, _) = record_run(512, 1_000, 5);
        let jsonl = rec.to_jsonl();
        assert!(jsonl.ends_with('\n'));
        for line in jsonl.lines() {
            for key in [
                "\"sample\":",
                "\"scheduled\":",
                "\"effective\":",
                "\"phase\":\"",
                "\"d_scheduled\":",
                "\"d_effective\":",
                "\"d_sparse_events\":",
                "\"rates\":{\"effective_fraction\":",
            ] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
            assert!(line.starts_with('{') && line.ends_with('}'));
            // Phase tag is one of the two values.
            assert!(
                line.contains("\"phase\":\"dense\"") || line.contains("\"phase\":\"sparse\""),
                "bad phase in {line}"
            );
        }
    }

    #[test]
    fn cycle_frontier_shows_the_sparse_phase() {
        // An epidemic frontier on a large cycle lives in the sparse
        // skipper: the timeline must tag sparse samples.
        let (rec, t) = record_run(2_048, 4_096, 11);
        assert!(t.sparse_enters > 0, "run never escalated");
        assert!(
            rec.samples().iter().any(|s| s.phase == "sparse"),
            "no sparse-tagged sample in a skipper-dominated run"
        );
    }

    #[test]
    fn timeseries_carries_the_expected_series() {
        let (rec, _) = record_run(512, 1_000, 6);
        let ts = rec.to_timeseries(512);
        assert_eq!(ts.len(), rec.samples().len());
        for name in [
            "effective_fraction",
            "cancel_rate",
            "fallback_rate",
            "sparse_phase",
        ] {
            let s = ts.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.values.len(), ts.len());
        }
        // Parallel-time axis is monotone.
        for w in ts.time.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn event_histograms_merge_and_serialize() {
        let mut a = EventHistograms::new();
        let mut b = EventHistograms::new();
        for i in 1..=100u64 {
            a.skip_len.add_u64(i);
            b.flush_size.add_u64(i % 7);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total());
        let j = merged.to_json();
        for key in [
            "\"skip_len\":{\"p50\":",
            "\"block_total\":",
            "\"block_size\":",
            "\"flush_size\":",
            "\"flush_occupancy\":",
            "\"fallback_run\":",
            "\"n\":100",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Quantiles are bin lower edges: powers of two, printed as
        // integers.
        assert!(j.contains("\"skip_len\":{\"p50\":32,"), "{j}");
    }

    #[test]
    fn phase_tag_tracks_enter_exit_balance() {
        let mut t = EngineTelemetry::new();
        assert_eq!(phase_tag(&t), "dense");
        t.sparse_enters = 1;
        assert_eq!(phase_tag(&t), "sparse");
        t.sparse_exits = 1;
        assert_eq!(phase_tag(&t), "dense");
    }

    #[test]
    fn finish_is_idempotent_and_records_partial_windows() {
        let mut sim = frontier_sim(128);
        let mut rec = TimelineRecorder::new(1 << 30);
        let mut rng = SimRng::new(9);
        Simulator::advance(&mut sim, &mut rng, 500);
        assert!(!rec.record_if_due(&sim), "mark not reached yet");
        rec.finish(&sim);
        assert_eq!(rec.samples().len(), 1, "partial window recorded");
        rec.finish(&sim);
        assert_eq!(rec.samples().len(), 1, "idempotent when clock is still");
    }
}
