//! Per-agent exact simulator.

use crate::checkpoint::{CheckpointError, SnapshotReader, SnapshotWriter};
use crate::config::CountConfig;
use crate::protocol::Protocol;
use crate::scheduler::Scheduler;
use crate::simulator::snapshot_tags;
use crate::telemetry::timeline::EventHistograms;
use crate::telemetry::EngineTelemetry;
use sim_stats::rng::SimRng;

/// Full account of one interaction: who was scheduled and the dense state
/// indices of both agents before and after the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteractionRecord {
    /// Scheduled initiator agent index.
    pub initiator: usize,
    /// Scheduled responder agent index.
    pub responder: usize,
    /// `(initiator_state, responder_state)` before the transition.
    pub before: (usize, usize),
    /// `(initiator_state, responder_state)` after the transition.
    pub after: (usize, usize),
}

impl InteractionRecord {
    /// Whether the interaction changed any agent's state.
    pub fn changed(&self) -> bool {
        self.before != self.after
    }

    /// Whether the initiator's state changed.
    pub fn initiator_changed(&self) -> bool {
        self.before.0 != self.after.0
    }

    /// Whether the responder's state changed.
    pub fn responder_changed(&self) -> bool {
        self.before.1 != self.after.1
    }
}

/// Exact per-agent simulator: the literal population-protocol model.
///
/// Keeps a state index per agent; each step asks the scheduler for an
/// ordered pair and applies the protocol's transition. Works with any
/// [`Scheduler`], including graph-restricted ones — this is the only
/// simulator in the workspace that supports non-clique topologies.
///
/// Observation granularity
/// ([`advance_observed`](crate::Simulator::advance_observed)): **exact** —
/// every advancement is one scheduled interaction, so observers see every
/// effective event individually.
#[derive(Debug, Clone)]
pub struct AgentSimulator<P: Protocol, S: Scheduler> {
    protocol: P,
    scheduler: S,
    /// Dense state index per agent.
    states: Vec<usize>,
    /// Per-state counts, kept in sync with `states`.
    counts: Vec<u64>,
    interactions: u64,
    /// Interactions that changed at least one agent's state.
    effective_interactions: u64,
    /// Engine telemetry. A per-event engine: the live counters are
    /// `scheduled`/`effective` (mirroring the clocks), `dense_steps`, and
    /// `pair_draws` — one per scheduled interaction. No phases, no spans.
    telemetry: EngineTelemetry,
    /// Per-event histograms (opt-in): the literally-counted no-op run
    /// before each effective interaction lands in `skip_len`.
    hist: Option<Box<EventHistograms>>,
    /// Consecutive no-op interactions (histogram recording only).
    noop_run: u64,
}

impl<P: Protocol, S: Scheduler> AgentSimulator<P, S> {
    /// Create a simulator with explicit initial per-agent states (dense
    /// indices). The scheduler's population must match.
    pub fn new(protocol: P, scheduler: S, states: Vec<usize>) -> Self {
        assert_eq!(
            states.len(),
            scheduler.population(),
            "agent count does not match scheduler population"
        );
        let mut counts = vec![0u64; protocol.num_states()];
        for &s in &states {
            assert!(s < protocol.num_states(), "state index {s} out of range");
            counts[s] += 1;
        }
        AgentSimulator {
            protocol,
            scheduler,
            states,
            counts,
            interactions: 0,
            effective_interactions: 0,
            telemetry: EngineTelemetry::new(),
            hist: None,
            noop_run: 0,
        }
    }

    /// Create from a count configuration, assigning agents to states in
    /// blocks (agent order is irrelevant to the dynamics on a clique; for
    /// graph schedulers callers may prefer [`AgentSimulator::new`] with a
    /// shuffled layout).
    pub fn from_config(protocol: P, scheduler: S, config: &CountConfig) -> Self {
        assert_eq!(config.num_states(), protocol.num_states());
        let mut states = Vec::with_capacity(config.n() as usize);
        for (idx, &c) in config.counts().iter().enumerate() {
            states.extend(std::iter::repeat_n(idx, c as usize));
        }
        Self::new(protocol, scheduler, states)
    }

    /// The protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Number of agents.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// Per-agent state indices.
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// Per-state counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current count configuration (copies the counts).
    pub fn config(&self) -> CountConfig {
        CountConfig::from_counts(self.counts.clone())
    }

    /// Total interactions simulated.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Interactions that changed some agent's state.
    pub fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    /// Parallel time elapsed (= interactions / n).
    pub fn parallel_time(&self) -> f64 {
        self.interactions as f64 / self.states.len() as f64
    }

    /// Run one interaction; returns `true` if it changed any state.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        self.step_recorded(rng).changed()
    }

    /// Run one interaction and report exactly what happened (which agents
    /// were scheduled and their state indices before/after). Used by
    /// experiments that track per-agent statistics such as opinion-flip
    /// counts per parallel round.
    pub fn step_recorded(&mut self, rng: &mut SimRng) -> InteractionRecord {
        let (i, j) = self.scheduler.next_pair(rng);
        debug_assert_ne!(i, j);
        self.interactions += 1;
        self.telemetry.scheduled += 1;
        self.telemetry.dense_steps += 1;
        self.telemetry.pair_draws += 1;
        let (si, sj) = (self.states[i], self.states[j]);
        let (ti, tj) = self.protocol.transition_indices(si, sj);
        if (ti, tj) != (si, sj) {
            self.counts[si] -= 1;
            self.counts[sj] -= 1;
            self.counts[ti] += 1;
            self.counts[tj] += 1;
            self.states[i] = ti;
            self.states[j] = tj;
            self.effective_interactions += 1;
            self.telemetry.effective += 1;
            if let Some(h) = &mut self.hist {
                // The completed no-op run before this effective event —
                // the quantity the leaping engines sample geometrically.
                h.skip_len.add_u64(self.noop_run);
            }
            self.noop_run = 0;
        } else if self.hist.is_some() {
            self.noop_run += 1;
        }
        InteractionRecord {
            initiator: i,
            responder: j,
            before: (si, sj),
            after: (ti, tj),
        }
    }

    /// Run `budget` interactions (or until `stop` returns true, checked
    /// after every interaction). Returns the number of interactions run.
    pub fn run(
        &mut self,
        rng: &mut SimRng,
        budget: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> u64 {
        let start = self.interactions;
        while self.interactions - start < budget {
            self.step(rng);
            if stop(self) {
                break;
            }
        }
        self.interactions - start
    }

    /// Whether the current configuration is silent (no interaction can
    /// change it).
    pub fn is_silent(&self) -> bool {
        self.protocol.is_silent(&self.counts)
    }
}

impl<P: Protocol, S: Scheduler> crate::simulator::Simulator for AgentSimulator<P, S> {
    fn population(&self) -> u64 {
        self.states.len() as u64
    }

    fn num_states(&self) -> usize {
        self.counts.len()
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn effective_interactions(&self) -> u64 {
        self.effective_interactions
    }

    fn step(&mut self, rng: &mut SimRng) -> bool {
        AgentSimulator::step(self, rng)
    }

    fn is_silent(&self) -> bool {
        AgentSimulator::is_silent(self)
    }

    fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    fn set_histograms(&mut self, enabled: bool) {
        self.hist = if enabled {
            Some(Box::new(EventHistograms::new()))
        } else {
            None
        };
        self.noop_run = 0;
    }

    fn histograms(&self) -> Option<EventHistograms> {
        self.hist.as_deref().cloned()
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) -> Result<(), CheckpointError> {
        w.put_u8(snapshot_tags::AGENT);
        snapshot_tags::write_config(w, self.states.len() as u64, self.counts.len());
        w.put_u64(self.states.len() as u64);
        for &s in &self.states {
            w.put_u32(s as u32);
        }
        w.put_u64(self.interactions);
        w.put_u64(self.effective_interactions);
        self.telemetry.write_snapshot(w);
        match &self.hist {
            Some(h) => {
                w.put_bool(true);
                h.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.noop_run);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), CheckpointError> {
        snapshot_tags::expect(r, snapshot_tags::AGENT, "agent")?;
        snapshot_tags::expect_config(r, self.states.len() as u64, self.counts.len())?;
        let count = r.get_u64()? as usize;
        if count != self.states.len() {
            return Err(CheckpointError::Corrupt(format!(
                "agent snapshot has {count} agents (engine has {})",
                self.states.len()
            )));
        }
        let k = self.counts.len();
        let mut states = Vec::with_capacity(count);
        let mut counts = vec![0u64; k];
        for _ in 0..count {
            let s = r.get_u32()? as usize;
            if s >= k {
                return Err(CheckpointError::Corrupt(format!(
                    "agent state index {s} out of range ({k} states)"
                )));
            }
            counts[s] += 1;
            states.push(s);
        }
        let interactions = r.get_u64()?;
        let effective_interactions = r.get_u64()?;
        let telemetry = EngineTelemetry::read_snapshot(r)?;
        let hist = if r.get_bool()? {
            Some(Box::new(EventHistograms::read_snapshot(r)?))
        } else {
            None
        };
        let noop_run = r.get_u64()?;
        self.states = states;
        self.counts = counts;
        self.interactions = interactions;
        self.effective_interactions = effective_interactions;
        self.telemetry = telemetry;
        self.hist = hist;
        self.noop_run = noop_run;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OneWayEpidemic;
    use crate::scheduler::CliqueScheduler;

    fn epidemic_sim(n: usize, infected: usize) -> AgentSimulator<OneWayEpidemic, CliqueScheduler> {
        let mut states = vec![1usize; n];
        for s in states.iter_mut().take(infected) {
            *s = 0;
        }
        AgentSimulator::new(OneWayEpidemic, CliqueScheduler::new(n), states)
    }

    #[test]
    fn counts_track_states() {
        let sim = epidemic_sim(10, 3);
        assert_eq!(sim.counts(), &[3, 7]);
        assert_eq!(sim.population(), 10);
    }

    #[test]
    fn epidemic_is_monotone_and_completes() {
        let mut sim = epidemic_sim(50, 1);
        let mut rng = SimRng::new(42);
        let mut last_infected = 1u64;
        for _ in 0..200_000 {
            sim.step(&mut rng);
            let infected = sim.counts()[0];
            assert!(infected >= last_infected, "epidemic went backwards");
            last_infected = infected;
            if infected == 50 {
                break;
            }
        }
        assert_eq!(sim.counts(), &[50, 0]);
        assert!(sim.is_silent());
        assert_eq!(sim.config().consensus_state(), Some(0));
    }

    #[test]
    fn effective_interactions_counted() {
        let mut sim = epidemic_sim(10, 5);
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            sim.step(&mut rng);
        }
        assert_eq!(sim.interactions(), 1000);
        // Exactly 5 infections can ever happen.
        assert_eq!(sim.effective_interactions(), 5);
    }

    #[test]
    fn run_with_stop_condition() {
        let mut sim = epidemic_sim(20, 1);
        let mut rng = SimRng::new(3);
        let ran = sim.run(&mut rng, 1_000_000, |s| s.counts()[0] >= 10);
        assert!(sim.counts()[0] >= 10);
        assert!(ran < 1_000_000);
    }

    #[test]
    fn parallel_time_is_interactions_over_n() {
        let mut sim = epidemic_sim(10, 0);
        let mut rng = SimRng::new(5);
        for _ in 0..25 {
            sim.step(&mut rng);
        }
        assert!((sim.parallel_time() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn step_recorded_reports_exact_changes() {
        let mut sim = epidemic_sim(10, 5);
        let mut rng = SimRng::new(11);
        for _ in 0..500 {
            let before: Vec<usize> = sim.states().to_vec();
            let rec = sim.step_recorded(&mut rng);
            assert_ne!(rec.initiator, rec.responder);
            assert_eq!(rec.before.0, before[rec.initiator]);
            assert_eq!(rec.before.1, before[rec.responder]);
            assert_eq!(rec.after.0, sim.states()[rec.initiator]);
            assert_eq!(rec.after.1, sim.states()[rec.responder]);
            for (idx, (&b, &a)) in before.iter().zip(sim.states()).enumerate() {
                if idx != rec.initiator && idx != rec.responder {
                    assert_eq!(b, a, "agent {idx} changed without interacting");
                }
            }
            assert_eq!(
                rec.changed(),
                rec.initiator_changed() || rec.responder_changed()
            );
        }
    }

    #[test]
    fn from_config_matches_counts() {
        let cfg = CountConfig::from_counts(vec![4, 6]);
        let sim = AgentSimulator::from_config(OneWayEpidemic, CliqueScheduler::new(10), &cfg);
        assert_eq!(sim.counts(), &[4, 6]);
    }

    #[test]
    #[should_panic(expected = "scheduler population")]
    fn population_mismatch_panics() {
        AgentSimulator::new(OneWayEpidemic, CliqueScheduler::new(3), vec![0, 1]);
    }
}
